//! Full-system run at MNIST scale: executes the complete CapsuleNet on
//! the **cycle-accurate** engine (every PE register ticked — several
//! hundred million PE updates), validates bit-exactness against the
//! reference model, and cross-checks the engine's cycle counts against
//! the analytical model with tile pipelining disabled.
//!
//! This is the heavyweight counterpart of `cycle_accurate_validation`
//! (which uses the tiny network). Build in release mode:
//!
//! ```sh
//! cargo run --release --example mnist_full_system
//! ```

use std::time::Instant;

use capsacc::capsnet::{
    infer_q8_traced, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::core::{timing, Accelerator, AcceleratorConfig, MemoryKind};
use capsacc::mnist::SyntheticMnist;

fn main() {
    let net = CapsNetConfig::mnist();
    let mut cfg = AcceleratorConfig::paper();
    // The engine executes tiles serially; use the matching timing mode.
    cfg.dataflow.pipelined_tiles = false;

    println!(
        "Generating pseudo-trained parameters ({} weights)…",
        net.total_parameters()
    );
    let params = CapsNetParams::generate(&net, 2019);
    let qparams = params.quantize(cfg.numeric);
    let pipeline = QuantPipeline::new(cfg.numeric);
    let sample = SyntheticMnist::new(1).sample(5);

    println!("Running the software fixed-point reference…");
    let t0 = Instant::now();
    let reference = infer_q8_traced(
        &net,
        &qparams,
        &pipeline,
        &sample.image,
        RoutingVariant::SkipFirstSoftmax,
    );
    println!(
        "  reference done in {:.1?} ({} MACs)",
        t0.elapsed(),
        reference.output.stats.macs
    );

    println!("Running the cycle-accurate engine (16×16 array, every PE ticked)…");
    let t0 = Instant::now();
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &sample.image);
    println!("  engine done in {:.1?}", t0.elapsed());

    // Bit-exactness at full scale.
    assert_eq!(run.trace, reference, "engine diverged from the reference");
    println!(
        "\nBit-exact at MNIST scale ✓ (predicted class {})",
        run.trace.output.predicted
    );

    // Engine cycles vs the serial analytical model, layer by layer.
    let analytic = timing::full_inference(&cfg, &net);
    println!("\nLayer cycle counts (engine array cycles vs serial analytical compute):");
    for layer in &run.layers {
        let model = match layer.name {
            "Conv1" => analytic.conv1.compute_cycles,
            "PrimaryCaps" => analytic.primary_caps.compute_cycles,
            _ => continue,
        };
        println!(
            "  {:<12} engine {:>9}  model {:>9}  ({})",
            layer.name,
            layer.array_cycles,
            model,
            if layer.array_cycles == model {
                "exact"
            } else {
                "≠"
            }
        );
        assert_eq!(layer.array_cycles, model, "{} cycle mismatch", layer.name);
    }

    println!("\nRouting step cycles (engine):");
    for (step, cycles) in &run.steps {
        println!(
            "  {:<9} {:>8} cycles = {:>10.3} µs",
            step.to_string(),
            cycles,
            cfg.cycles_to_us(*cycles)
        );
    }

    println!("\nTraffic:");
    for kind in MemoryKind::ALL {
        let c = run.traffic.counter(kind);
        println!(
            "  {kind}: {} B read, {} B written",
            c.read_bytes, c.write_bytes
        );
    }
    println!(
        "\nAccumulator saturations: {} (must be 0)",
        run.accumulator_saturations
    );
    assert_eq!(run.accumulator_saturations, 0);
}
