//! Design-space exploration: sweep the systolic-array size and buffer
//! capacities around the paper's 16×16 design point and report
//! performance (analytical cycle model), area, power, and energy
//! efficiency — the scaling study the paper's component models enable.
//!
//! Run with: `cargo run --example design_space`

use capsacc::capsnet::CapsNetConfig;
use capsacc::core::{timing, AcceleratorConfig};
use capsacc::power::PowerModel;

fn main() {
    let net = CapsNetConfig::mnist();
    let model = PowerModel::cmos_32nm();

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "array", "cycles", "time", "area", "power", "inf/s", "inf/s/W"
    );
    for size in [4usize, 8, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        let t = timing::full_inference(&cfg, &net);
        let report = model.estimate(&cfg);
        let time_s = t.total_time_us(&cfg) / 1e6;
        let inf_per_s = 1.0 / time_s;
        let watts = report.total_power_mw() / 1000.0;
        println!(
            "{:<10} {:>12} {:>9.2}ms {:>8.2}mm² {:>8.0}mW {:>12.0} {:>14.0}",
            format!("{size}x{size}"),
            t.total_cycles(),
            t.total_time_us(&cfg) / 1000.0,
            report.total_area_mm2(),
            report.total_power_mw(),
            inf_per_s,
            inf_per_s / watts
        );
    }

    println!("\nBuffer sizing at the 16×16 point (Data Buffer share of area):");
    for kb in [64usize, 128, 256, 512] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.data_buffer_bytes = kb * 1024;
        let report = model.estimate(&cfg);
        let share = report
            .area_breakdown()
            .into_iter()
            .find(|(n, _)| *n == "Data Buffer")
            .map(|(_, f)| f)
            .unwrap_or(0.0);
        println!(
            "  data buffer {kb:>4} KiB → {:.2} mm² total, Data Buffer = {:.0}% of area",
            report.total_area_mm2(),
            share * 100.0
        );
    }

    println!(
        "\nThe paper's 16×16 / 256 KiB point balances the array (~1/4 of area)\n\
         against the buffers (Fig. 18); larger arrays help the compute-bound\n\
         layers but PrimaryCaps stays pinned by its 5.3 MB weight stream."
    );
}
