//! Quickstart: the CapsAcc reproduction in five minutes.
//!
//! Builds the MNIST CapsuleNet description, runs a float and a bit-exact
//! 8-bit inference on a synthetic digit (scaled-down network so this is
//! fast even in debug builds), and prints the accelerator's predicted
//! performance and synthesis summary at the paper's design point.
//!
//! Run with: `cargo run --example quickstart`

use capsacc::capsnet::{
    infer_f32, infer_q8, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::core::{timing, AcceleratorConfig};
use capsacc::fixed::NumericConfig;
use capsacc::gpu::GpuModel;
use capsacc::mnist::SyntheticMnist;
use capsacc::power::PowerModel;
use capsacc::tensor::Tensor;

fn main() {
    // ---- 1. The workload: the paper's MNIST CapsuleNet (Table I).
    let mnist_net = CapsNetConfig::mnist();
    println!(
        "CapsuleNet (MNIST): {} trainable parameters",
        mnist_net.total_parameters()
    );
    for row in mnist_net.table1() {
        println!(
            "  {:<16} inputs {:>7}  params {:>8}  outputs {:>7}",
            row.name, row.inputs, row.parameters, row.outputs
        );
    }

    // ---- 2. Inference on a synthetic digit (small network for speed).
    let net = CapsNetConfig::small();
    let params = CapsNetParams::generate(&net, 42);
    let ncfg = NumericConfig::default();
    let qparams = params.quantize(ncfg);
    let pipeline = QuantPipeline::new(ncfg);

    // Take a synthetic "3", centre-cropped to the small network's input.
    let sample = SyntheticMnist::new(7).sample(3);
    let off = (28 - net.input_side) / 2;
    let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        sample.image[[0, i[1] + off, i[2] + off]]
    });

    let float_out = infer_f32(&net, &params, &image, RoutingVariant::SkipFirstSoftmax);
    let quant_out = infer_q8(
        &net,
        &qparams,
        &pipeline,
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    println!("\nFloat class norms:  {:?}", float_out.class_norms());
    println!(
        "8-bit class norms:  {:?}",
        quant_out
            .class_norms
            .iter()
            .map(|&n| n as f32 / 16.0)
            .collect::<Vec<_>>()
    );
    println!(
        "Predicted class: float = {}, 8-bit = {} ({} MACs, {} accumulator saturations)",
        float_out.predicted(),
        quant_out.predicted,
        quant_out.stats.macs,
        quant_out.stats.saturations
    );

    // ---- 3. The accelerator at the paper's design point.
    let acc = AcceleratorConfig::paper();
    let t = timing::full_inference(&acc, &mnist_net);
    let gpu = GpuModel::gtx1070().layer_times_us(&mnist_net);
    println!("\nCapsAcc (16×16 @ 250 MHz) on the MNIST CapsuleNet:");
    println!(
        "  total inference: {:.3} ms  (GPU baseline: {:.3} ms → {:.1}× faster)",
        t.total_time_us(&acc) / 1000.0,
        gpu.total() / 1000.0,
        gpu.total() / t.total_time_us(&acc)
    );

    let t2 = PowerModel::cmos_32nm().table2(&acc);
    println!(
        "  synthesis summary: {}nm, {:.2} mm², {:.0} mW @ {} MHz",
        t2.tech_node_nm, t2.area_mm2, t2.power_mw, t2.clock_mhz
    );
}
