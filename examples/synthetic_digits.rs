//! Synthetic-MNIST showcase: render the procedural digit dataset as
//! ASCII art and push a batch through the bit-exact quantized
//! CapsuleNet, reporting class-norm profiles — the data path the
//! accelerator runs, end to end.
//!
//! Run with: `cargo run --example synthetic_digits`

use capsacc::capsnet::{infer_q8, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant};
use capsacc::fixed::NumericConfig;
use capsacc::mnist::{Sample, SyntheticMnist, IMAGE_SIDE};
use capsacc::tensor::Tensor;

fn ascii_art(sample: &Sample) -> String {
    let shades = [' ', '.', ':', 'o', '#', '@'];
    let mut out = String::new();
    for y in 0..IMAGE_SIDE {
        for x in 0..IMAGE_SIDE {
            let v = sample.image[[0, y, x]];
            let idx = ((v * (shades.len() - 1) as f32).round() as usize).min(shades.len() - 1);
            out.push(shades[idx]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let ds = SyntheticMnist::new(2024);

    // Render one digit of each class side by side (first five).
    for d in 0..5 {
        let s = ds.sample(d);
        println!("--- digit {} ---", s.label);
        print!("{}", ascii_art(&s));
    }

    // Quantized inference over a batch with the small network
    // (centre-cropped input).
    let net = CapsNetConfig::small();
    let ncfg = NumericConfig::default();
    let qparams = CapsNetParams::generate(&net, 5).quantize(ncfg);
    let pipeline = QuantPipeline::new(ncfg);
    let off = (IMAGE_SIDE - net.input_side) / 2;

    println!("\nBit-exact 8-bit inference over 10 synthetic digits:");
    for (i, sample) in ds.iter().take(10).enumerate() {
        let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |ix| {
            sample.image[[0, ix[1] + off, ix[2] + off]]
        });
        let out = infer_q8(
            &net,
            &qparams,
            &pipeline,
            &image,
            RoutingVariant::SkipFirstSoftmax,
        );
        println!(
            "  sample {i} (label {}): predicted {}  norms {:?}",
            sample.label, out.predicted, out.class_norms
        );
    }
    println!(
        "\n(Weights are pseudo-trained — the paper reports no accuracy numbers\n\
         either; what matters is that this exact datapath is what the\n\
         cycle-accurate simulator reproduces bit-for-bit.)"
    );
}
