//! Cycle-accurate validation — the Rust analogue of the paper's
//! gate-level verification flow (Fig. 15): run the same inference on the
//! register-transfer-level simulator and on the software fixed-point
//! reference, and check that every intermediate tensor — conv
//! activations, squashed capsules, prediction vectors, every routing
//! iteration's couplings/sums/logits — is **bit-identical**.
//!
//! Run with: `cargo run --example cycle_accurate_validation`

use capsacc::capsnet::{
    infer_q8_traced, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::core::{Accelerator, AcceleratorConfig, MemoryKind};
use capsacc::tensor::Tensor;

fn main() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let pipeline = QuantPipeline::new(cfg.numeric);

    let mut checked = 0u32;
    for seed in [3u64, 17, 99] {
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
            ((i[1] * seed as usize + i[2] * 3) % 9) as f32 / 9.0
        });

        // Software prediction (the "pyTorch" side of Fig. 15).
        let reference = infer_q8_traced(
            &net,
            &qparams,
            &pipeline,
            &image,
            RoutingVariant::SkipFirstSoftmax,
        );

        // Hardware prediction (the "gate-level simulation" side).
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);

        assert_eq!(
            run.trace, reference,
            "seed {seed}: simulator diverged from the reference"
        );
        checked += 1;

        println!(
            "seed {seed:>3}: bit-exact ✓  predicted class {}",
            run.trace.output.predicted
        );
        println!(
            "          layer cycles: {}",
            run.layers
                .iter()
                .map(|l| format!("{} = {}", l.name, l.cycles()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "          routing steps: {}",
            run.steps
                .iter()
                .map(|(s, c)| format!("{s}:{c}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!(
            "          traffic: DataMem {} B read, WeightBuf {} B read, RoutingBuf {} B moved",
            run.traffic.counter(MemoryKind::DataMemory).read_bytes,
            run.traffic.counter(MemoryKind::WeightBuffer).read_bytes,
            run.traffic.counter(MemoryKind::RoutingBuffer).total(),
        );
    }
    println!("\nValidation complete: {checked}/3 inferences bit-exact against the reference.");
}
