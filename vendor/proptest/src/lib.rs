//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! `proptest 1.x` surface its tests use is implemented here:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` inner attribute and `arg in strategy`
//!   parameter syntax),
//! - range strategies over the primitive integers and [`any`],
//! - [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name), so failures reproduce across runs. **Shrinking is not
//! implemented** — a failing case reports the inputs it failed on and
//! stops. Swap this crate for the real one via
//! `[workspace.dependencies]` once a registry is reachable; the test
//! sources need no changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; try another input.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection error.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic RNG driving input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next raw `u64` (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of generated values (the tiny core of proptest's
/// `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "strategy range is empty");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float_strategy {
    ($($t:ty => $unit:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let unit = $unit(rng.next_u64());
                let v = self.start + unit * (self.end - self.start);
                // Keep the draw inside the half-open range even when the
                // affine map rounds up to the excluded bound.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_range_float_strategy!(
    f32 => |bits: u64| (bits >> 40) as f32 / (1u64 << 24) as f32,
    f64 => |bits: u64| (bits >> 11) as f64 / (1u64 << 53) as f64
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::fmt::Debug;
    use core::ops::Range;

    /// Number of elements a collection strategy may produce.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "size range is empty");
            Self {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s — see [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// The strategy of vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Values generatable by [`any`] (proptest's `Arbitrary`).
pub trait Arbitrary: Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T` — see [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The strategy of all values of `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Derives the deterministic per-test seed from the test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything the `proptest!` tests need in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Rejects the current case (without failing the test) unless `cond`
/// holds; the runner draws a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(200).max(1000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} accepted of {} wanted in {} attempts)",
                    stringify!($name), accepted, config.cases, attempts
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Rendered before the case body, which may move the inputs.
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let case = (|| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            message,
                            inputs
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y), "y = {}", y);
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_and_any(x in any::<u64>()) {
            let y = x;
            prop_assert_eq!(x, y, "copies are equal");
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }
}
