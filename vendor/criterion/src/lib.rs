//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds without crates.io access, so the subset of the
//! `criterion 0.5` surface the benches use is implemented here:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain calibrated timing loop (one warm-up call sizes
//! the iteration count to ~200 ms of work, capped at 100k iterations)
//! reporting mean wall time per iteration — no statistics, outlier
//! analysis, or HTML reports. Swap this crate for the real one via
//! `[workspace.dependencies]` once a registry is reachable; the bench
//! sources need no changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` in a calibrated loop and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(label: &str, b: &Bencher) {
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<48} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// The benchmark driver (a much-reduced `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        f(&mut b);
        report(&label, &b);
        self
    }

    /// Runs a benchmark parameterized by `input`, labelled `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&label, &b);
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main()` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a `--test`
            // invocation only wants to know the binary runs.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("square", 16).to_string(), "square/16");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
