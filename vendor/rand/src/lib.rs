//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in an environment without crates.io access, so
//! the small slice of the `rand 0.8` API the workspace uses is
//! implemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over floating-point ranges.
//!
//! The generator is a deterministic splitmix64 stream. It does **not**
//! match the byte stream of the real `rand::rngs::StdRng` — only the
//! properties the workspace relies on (seed-determinism, uniformity,
//! stream independence per seed) are preserved. Swap this crate for the
//! real one by editing `[workspace.dependencies]` once a registry is
//! reachable; regenerated weights/datasets will differ but every test in
//! the workspace is written against properties, not stored values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Seedable random number generators (the `rand 0.8` trait surface the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value from `[low, high)` given a uniform `u64`.
    fn from_uniform_u64(bits: u64, range: &Range<Self>) -> Self;
}

impl SampleUniform for f32 {
    fn from_uniform_u64(bits: u64, range: &Range<Self>) -> Self {
        // 24 explicit mantissa-ish bits are plenty for a [0, 1) grid.
        let unit = (bits >> 40) as f32 / (1u64 << 24) as f32;
        let v = range.start + unit * (range.end - range.start);
        // Rounding in the affine map can land exactly on the excluded
        // upper bound when |start| dwarfs the width; keep [low, high).
        if v < range.end {
            v
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

impl SampleUniform for f64 {
    fn from_uniform_u64(bits: u64, range: &Range<Self>) -> Self {
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let v = range.start + unit * (range.end - range.start);
        if v < range.end {
            v
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

/// Core RNG interface: raw `u64` output plus uniform range sampling.
pub trait Rng {
    /// Returns the next raw `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range: empty range");
        T::from_uniform_u64(self.next_u64(), &range)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic stand-in for `rand::rngs::StdRng` (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds give unrelated streams.
            let mut rng = StdRng { state: seed };
            let _ = super::Rng::next_u64(&mut rng);
            rng
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        // Uniformity sanity: the lower half gets roughly half the mass.
        assert!((4000..6000).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    fn narrow_range_far_from_zero_stays_half_open() {
        // |start| ≫ width makes the affine map round toward the excluded
        // bound; every draw must still land strictly below it.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(1000.0f32..1000.0001);
            assert!((1000.0..1000.0001).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn f64_ranges_work() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(1.0f32..1.0);
    }
}
