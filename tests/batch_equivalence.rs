//! Differential tests for the batched weight-resident engine: for any
//! network shape, array geometry and batch size, `run_batch(N)` must
//! produce traces **bit-identical** to `N` independent `run_inference`
//! calls on fresh accelerators — including the per-image `MacStats` —
//! while strictly amortizing the weight-side traffic. Saturation edge
//! cases are exercised explicitly, because a 25-bit clip is exactly the
//! kind of state the layer-major reordering could mis-attribute.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{Accelerator, AcceleratorConfig, ActivationKind, BatchScheduler, MemoryKind};
use capsacc::tensor::{qops, Tensor};
use proptest::prelude::*;

mod common;
use common::image_for;

/// Checks the batched engine against per-image sequential runs and
/// returns (batched weight-buffer bytes, summed sequential ones).
fn assert_batch_equivalent(
    net: &CapsNetConfig,
    cfg: AcceleratorConfig,
    seed: u64,
    batch: usize,
) -> (u64, u64) {
    let qparams = CapsNetParams::generate(net, seed).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..batch)
        .map(|s| image_for(net, s + seed as usize))
        .collect();

    let mut sched = BatchScheduler::new(cfg);
    let run = sched.run(net, &qparams, &images).expect("valid batch");
    assert_eq!(run.traces.len(), batch);
    assert_eq!(run.batch, batch);

    let mut sequential_wb = 0u64;
    for (i, image) in images.iter().enumerate() {
        let mut acc = Accelerator::new(cfg);
        let single = acc.run_inference(net, &qparams, image);
        assert_eq!(
            run.traces[i], single.trace,
            "batched trace diverged for image {i} (seed {seed}, batch {batch})"
        );
        sequential_wb += single.traffic.counter(MemoryKind::WeightBuffer).read_bytes;
    }
    let batched_wb = run.traffic.counter(MemoryKind::WeightBuffer).read_bytes;
    (batched_wb, sequential_wb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline differential property: random network shapes, array
    /// geometries and batch sizes, bit-identical traces throughout.
    #[test]
    fn run_batch_is_bit_identical_to_sequential_runs(
        input_side in 8usize..13,
        conv1_channels in 4usize..9,
        pc_channels in 1usize..3,
        num_classes in 2usize..5,
        routing_iterations in 2usize..4,
        size in 2usize..6,
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let net = CapsNetConfig {
            input_side,
            conv1_channels,
            conv1_kernel: 3,
            conv1_stride: 1,
            pc_channels,
            pc_caps_dim: 4,
            pc_kernel: 3,
            pc_stride: 2,
            num_classes,
            class_caps_dim: 4,
            routing_iterations,
        };
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        let (batched_wb, sequential_wb) = assert_batch_equivalent(&net, cfg, seed, batch);
        if batch > 1 {
            prop_assert!(
                batched_wb < sequential_wb,
                "no weight-buffer amortization: {batched_wb} vs {sequential_wb}"
            );
        } else {
            prop_assert_eq!(batched_wb, sequential_wb);
        }
    }
}

#[test]
fn batch_of_16_amortizes_weights_and_cycles() {
    // The acceptance anchor: at batch 16, measurably fewer weight-buffer
    // bytes/image and cycles/image than batch 1, with every trace still
    // bit-identical (asserted inside the helper).
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let (wb16, wb_seq) = assert_batch_equivalent(&net, cfg, 42, 16);
    assert!(
        (wb16 as f64) < 0.6 * wb_seq as f64,
        "weight-buffer bytes/image should drop substantially: {wb16} vs {wb_seq}"
    );

    let qparams = CapsNetParams::generate(&net, 42).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..16).map(|s| image_for(&net, s + 42)).collect();
    let mut sched = BatchScheduler::new(cfg);
    let run = sched.run(&net, &qparams, &images).expect("valid batch");
    let mut acc = Accelerator::new(cfg);
    let single = acc.run_inference(&net, &qparams, &images[0]);
    let single_cycles: u64 = single.layers.iter().map(|l| l.cycles()).sum();
    assert!(
        run.cycles_per_image() < single_cycles as f64,
        "cycles/image should fall: {} vs {single_cycles}",
        run.cycles_per_image()
    );
}

#[test]
fn onchip_weight_traffic_covers_offchip_at_batch() {
    // The reuse story end to end: every parameter byte crosses DRAM once
    // per batch, while the on-chip Weight Buffer also serves the routing
    // operands per image — so on-chip weight traffic must be at least
    // the off-chip weight traffic (strictly greater here), and the
    // per-image views cover both sides of the split.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 3).quantize(cfg.numeric);
    for batch in [2usize, 4, 8] {
        let images: Vec<Tensor<f32>> = (0..batch).map(|s| image_for(&net, s)).collect();
        let mut sched = BatchScheduler::new(cfg);
        let run = sched.run(&net, &qparams, &images).expect("valid batch");
        let onchip = run.traffic.counter(MemoryKind::WeightBuffer).read_bytes;
        let offchip = run.memory.dram_weight_bytes;
        assert!(offchip > 0, "weights must cross the off-chip channel");
        assert!(
            onchip >= offchip,
            "on-chip weight traffic ({onchip}) below off-chip ({offchip}) at batch {batch}"
        );
        // Off-chip weight bytes are paid once per batch: per-image they
        // shrink as the batch grows, and the TrafficReport's per-image
        // views cover the DRAM side like any on-chip structure.
        assert_eq!(
            run.traffic.counter(MemoryKind::Dram).read_bytes,
            offchip + run.memory.dram_data_bytes
        );
        assert!(run.traffic.offchip_bytes_per_image(batch as u64) > 0.0);
        assert!(
            run.traffic.bytes_per_image(MemoryKind::Dram, batch as u64)
                < run
                    .traffic
                    .bytes_per_image(MemoryKind::WeightBuffer, batch as u64)
                    + run
                        .traffic
                        .bytes_per_image(MemoryKind::DataBuffer, batch as u64)
        );
    }
}

#[test]
fn both_routing_variants_batch_equivalently() {
    let net = CapsNetConfig::tiny();
    let mut cfg = AcceleratorConfig::test_4x4();
    assert_batch_equivalent(&net, cfg, 7, 3);
    cfg.dataflow.skip_first_softmax = false;
    assert_batch_equivalent(&net, cfg, 7, 3);
}

#[test]
fn single_image_batch_matches_run_inference_accounting() {
    // Batch of one: not just the trace — the whole cycle/traffic
    // accounting must coincide with the sequential entry point.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 5).quantize(cfg.numeric);
    let image = image_for(&net, 5);

    let mut sched = BatchScheduler::new(cfg);
    let run = sched
        .run(&net, &qparams, std::slice::from_ref(&image))
        .expect("valid batch");
    let mut acc = Accelerator::new(cfg);
    let single = acc.run_inference(&net, &qparams, &image);

    assert_eq!(run.traces[0], single.trace);
    assert_eq!(run.layers, single.layers);
    assert_eq!(run.steps, single.steps);
    assert_eq!(run.traffic, single.traffic);
    assert_eq!(run.accumulator_saturations, single.accumulator_saturations);
}

#[test]
fn reused_scheduler_reports_per_batch_deltas() {
    // A long-lived scheduler accumulates internal counters across runs,
    // but each BatchRun must report only its own batch — otherwise the
    // per-image amortization metrics inflate with serving uptime.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 11).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..3).map(|s| image_for(&net, s)).collect();

    let mut sched = BatchScheduler::new(cfg);
    let run1 = sched.run(&net, &qparams, &images).expect("valid batch");
    let run2 = sched.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(run1.traces, run2.traces);
    assert_eq!(run1.traffic, run2.traffic, "traffic must be batch-scoped");
    assert_eq!(run1.accumulator_saturations, run2.accumulator_saturations);
    assert_eq!(
        run1.weight_buffer_bytes_per_image(),
        run2.weight_buffer_bytes_per_image()
    );
}

// ---------------------------------------------------------------- Acc25
// Saturation edges: operands crafted so the 25-bit accumulator clips.
// 2048 MACs of 127·127 ≈ 3.3e7 overflow the ±2^24 range mid-reduction,
// so every K-tile fold touches saturated state.

#[test]
fn saturating_matmul_is_identical_batched_and_sequential() {
    let k = 2048usize;
    let (m, n, batch) = (2usize, 3usize, 4usize);
    // Per-image operands differ so saturation counts differ per image.
    let data = |img: usize, mi: usize, ki: usize| -> i8 {
        if (ki + mi + img).is_multiple_of(img + 2) {
            127
        } else {
            64
        }
    };
    let weight = |_ki: usize, _ni: usize| -> i8 { 127 };
    let cfg = AcceleratorConfig::test_4x4();

    let mut acc = Accelerator::new(cfg);
    let (batched_outs, batched_sats) = acc.matmul_batch(
        batch,
        &data,
        &weight,
        m,
        k,
        n,
        None,
        6,
        ActivationKind::Identity,
    );

    let mut any = 0u64;
    for img in 0..batch {
        // The quantized reference saturates too — this is a genuine
        // 25-bit overflow workload, not an engine artifact.
        let a = Tensor::from_fn(&[m, k], |i| data(img, i[0], i[1]));
        let b = Tensor::from_fn(&[k, n], |i| weight(i[0], i[1]));
        let (_, ref_stats) = qops::matmul_q8(&a, &b, 6);
        assert!(ref_stats.saturations > 0, "image {img} should saturate");

        // A fresh sequential engine run of the same image: identical
        // output *and* identical per-image saturation count.
        let mut seq = Accelerator::new(cfg);
        let (seq_outs, seq_sats) = seq.matmul_batch(
            1,
            &|_, mi, ki| data(img, mi, ki),
            &weight,
            m,
            k,
            n,
            None,
            6,
            ActivationKind::Identity,
        );
        assert_eq!(batched_outs[img], seq_outs[0], "image {img} output");
        assert_eq!(batched_sats[img], seq_sats[0], "image {img} saturations");
        assert!(batched_sats[img] > 0, "image {img} should saturate");
        any += batched_sats[img];
    }
    // The engine's global counter is the sum of the per-image counts.
    let total: u64 = batched_sats.iter().sum();
    assert_eq!(any, total);
}

#[test]
fn saturation_counters_flow_into_batch_traces() {
    // End-to-end: run_batch's per-image MacStats (MAC and saturation
    // counters) must equal fresh sequential runs', and the aggregate
    // saturation counter must be the sum of the per-image ones. The
    // crafted-overflow coverage lives in
    // `saturating_matmul_is_identical_batched_and_sequential`; this
    // pins the reporting path through the full network.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 9).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..5).map(|s| image_for(&net, s)).collect();

    let mut sched = BatchScheduler::new(cfg);
    let run = sched.run(&net, &qparams, &images).expect("valid batch");
    let batch_total = run.accumulator_saturations;
    let mut seq_total = 0u64;
    for (i, image) in images.iter().enumerate() {
        let mut acc = Accelerator::new(cfg);
        let single = acc.run_inference(&net, &qparams, image);
        assert_eq!(
            run.traces[i].output.stats, single.trace.output.stats,
            "per-image MacStats diverged for image {i}"
        );
        seq_total += single.accumulator_saturations;
    }
    assert_eq!(batch_total, seq_total, "aggregate saturation count");
}
