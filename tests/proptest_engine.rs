//! Property-based integration tests: the cycle-accurate engine's matmul
//! agrees bit-for-bit with the quantized reference operators over random
//! shapes, operands, shifts and array geometries.

use capsacc::core::{Accelerator, AcceleratorConfig, ActivationKind};
use capsacc::tensor::{qops, Tensor};
use proptest::prelude::*;

fn random_tensor(shape: &[usize], seed: u64) -> Tensor<i8> {
    let mut s = seed | 1;
    Tensor::from_fn(shape, move |_| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 56) as i8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matmul_matches_qops(
        m in 1usize..7,
        k in 1usize..20,
        n in 1usize..10,
        rows in 1usize..6,
        cols in 1usize..6,
        shift in 4u32..9,
        seed in any::<u64>(),
    ) {
        let a = random_tensor(&[m, k], seed);
        let b = random_tensor(&[k, n], seed.rotate_left(17));
        let (want, stats) = qops::matmul_q8(&a, &b, shift);
        prop_assume!(stats.saturations == 0);

        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.activation_units = cols;
        let mut acc = Accelerator::new(cfg);
        let got = acc.matmul(
            &|mi, ki| a[[mi, ki]],
            &|ki, ni| b[[ki, ni]],
            m, k, n, None, shift, ActivationKind::Identity,
        );
        prop_assert_eq!(got, want);
        prop_assert_eq!(
            acc.traffic().counter(capsacc::core::MemoryKind::WeightBuffer).read_bytes,
            engine_expected_weight_bytes(m, k, n, rows, cols)
        );
    }

    #[test]
    fn engine_relu_matches_reference(
        m in 1usize..5,
        k in 1usize..10,
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let a = random_tensor(&[m, k], seed);
        let b = random_tensor(&[k, n], seed ^ 0xABCD);
        let mut acc = Accelerator::new(AcceleratorConfig::test_4x4());
        let got = acc.matmul(
            &|mi, ki| a[[mi, ki]],
            &|ki, ni| b[[ki, ni]],
            m, k, n, None, 6, ActivationKind::Relu,
        );
        let (ident, stats) = qops::matmul_q8(&a, &b, 6);
        prop_assume!(stats.saturations == 0);
        for (g, w) in got.data().iter().zip(ident.data()) {
            prop_assert_eq!(*g, (*w).max(0));
        }
    }

    #[test]
    fn engine_bias_is_additive_before_requantization(
        k in 1usize..8,
        bias in -2048i32..2048,
        seed in any::<u64>(),
    ) {
        let a = random_tensor(&[1, k], seed);
        let b = random_tensor(&[k, 1], seed ^ 0x1234);
        let mut acc = Accelerator::new(AcceleratorConfig::test_4x4());
        let with_bias = acc.matmul(
            &|mi, ki| a[[mi, ki]],
            &|ki, ni| b[[ki, ni]],
            1, k, 1, Some(&[bias]), 6, ActivationKind::Identity,
        );
        let raw: i64 = (0..k).map(|i| a[[0, i]] as i64 * b[[i, 0]] as i64).sum();
        prop_assert_eq!(
            with_bias.data()[0],
            capsacc::fixed::requantize(raw + bias as i64, 6)
        );
    }
}

/// Weight-buffer bytes the engine reads for an `m × k × n` matmul on an
/// `rows × cols` array: one tile read per (K, N) tile pair, `kt · nt`
/// bytes each (the reuse-on accounting).
fn engine_expected_weight_bytes(_m: usize, k: usize, n: usize, rows: usize, cols: usize) -> u64 {
    let mut total = 0u64;
    let mut k0 = 0;
    while k0 < k {
        let kt = rows.min(k - k0);
        let mut n0 = 0;
        while n0 < n {
            let nt = cols.min(n - n0);
            total += (kt * nt) as u64;
            n0 += cols;
        }
        k0 += rows;
    }
    total
}
