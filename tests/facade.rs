//! Facade-crate surface test: every `capsacc::<module>` re-export path
//! must resolve, and the headline invariant documented in the crate-root
//! doctest (the Table I parameter count) must hold through the facade.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{timing, Accelerator, AcceleratorConfig, BatchRun, BatchScheduler};
use capsacc::fixed::{requantize, Fx8, NumericConfig};
use capsacc::gpu::GpuModel;
use capsacc::memory::{MemoryConfig, MemoryMode, MemorySubsystem, PrefetchPipeline, SpmKind};
use capsacc::mnist::{SyntheticMnist, WeightGen};
use capsacc::power::PowerModel;
use capsacc::serve::{simulate_serve, BatcherConfig, ServeConfig, ShardPool, TraceConfig};
use capsacc::tensor::{ConvGeometry, Tensor};

#[test]
fn reexport_paths_resolve_and_interoperate() {
    // fixed
    let x: Fx8<5> = Fx8::from_f32(0.5);
    assert_eq!(x.to_f32(), 0.5);
    assert_eq!(requantize(64, 6), 1);
    let ncfg = NumericConfig::default();

    // tensor
    let t = Tensor::from_fn(&[2, 2], |i| (i[0] + i[1]) as f32);
    assert_eq!(t.shape(), &[2, 2]);
    let _: &ConvGeometry = &CapsNetConfig::mnist().conv1_geometry();

    // mnist
    assert!(SyntheticMnist::new(1).sample(0).label < 10);
    assert_eq!(WeightGen::new(1).biases(4).len(), 4);

    // capsnet ← fixed (types from one re-export feed another)
    let net = CapsNetConfig::tiny();
    let qparams = CapsNetParams::generate(&net, 7).quantize(ncfg);
    assert_eq!(qparams.conv1_w.shape().len(), 4);

    // core ← capsnet
    let acc_cfg = AcceleratorConfig::test_4x4();
    let _ = Accelerator::new(acc_cfg);
    let report = timing::full_inference(&AcceleratorConfig::paper(), &CapsNetConfig::mnist());
    assert!(report.total_cycles() > 0);

    // core batch subsystem ← capsnet + tensor
    let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        (i[1] + i[2]) as f32 / 24.0
    });
    let mut sched = BatchScheduler::new(acc_cfg);
    let run: BatchRun = sched
        .run(&net, &qparams, &[image.clone(), image])
        .expect("valid batch");
    assert_eq!(run.traces.len(), 2);
    assert_eq!(run.traces[0], run.traces[1]);
    assert!(run.cycles_per_image() > 0.0);
    let batched =
        timing::full_inference_batch(&AcceleratorConfig::paper(), &CapsNetConfig::mnist(), 16);
    assert!(batched.cycles_per_image() < report.total_cycles() as f64);
    let _ =
        timing::batch_traffic_estimate(&AcceleratorConfig::paper(), &CapsNetConfig::mnist(), 16);

    // memory ← (standalone), and core ← memory
    assert_eq!(MemoryConfig::ideal().mode, MemoryMode::Ideal);
    let _ = MemorySubsystem::new(MemoryConfig::paper());
    let _ = PrefetchPipeline::new(2);
    assert_eq!(SpmKind::ALL.len(), 3);
    let mut mem_cfg = AcceleratorConfig::paper();
    mem_cfg.memory = MemoryConfig::paper();
    let mem_t = timing::full_inference_batch_mem(&mem_cfg, &CapsNetConfig::mnist(), 16);
    assert!(mem_t.report.stall_cycles > 0);
    assert!(mem_t.total_cycles() > mem_t.base.total_cycles());
    assert_eq!(
        timing::full_inference_mem(&AcceleratorConfig::paper(), &CapsNetConfig::mnist())
            .report
            .stall_cycles,
        0
    );

    // serve ← core + capsnet + tensor
    let serve_cfg = ServeConfig {
        workers: 2,
        batcher: BatcherConfig {
            max_batch: 8,
            max_wait_cycles: 50_000,
        },
        trace: TraceConfig {
            seed: 3,
            requests: 32,
            mean_gap_cycles: 5_000.0,
            mean_burst: 2.0,
        },
    };
    let outcome = simulate_serve(
        &AcceleratorConfig::paper(),
        &CapsNetConfig::mnist(),
        &serve_cfg,
    );
    assert_eq!(outcome.requests.len(), 32);
    let [p50, p95, p99] = outcome.latency_percentiles();
    assert!(p50 <= p95 && p95 <= p99);
    assert_eq!(ShardPool::new(acc_cfg, 2).workers(), 2);

    // gpu ← capsnet
    assert!(
        GpuModel::gtx1070()
            .layer_times_us(&CapsNetConfig::mnist())
            .total()
            > 0.0
    );

    // power ← core
    let table2 = PowerModel::cmos_32nm().table2(&AcceleratorConfig::paper());
    assert_eq!(table2.tech_node_nm, 32);
}

#[test]
fn table1_parameter_count_holds_through_facade() {
    // The invariant stated in the `capsacc` crate-root doctest.
    let cfg = CapsNetConfig::mnist();
    assert_eq!(cfg.total_parameters(), 6_804_224);
    // And its Table I decomposition (conv1 + primary + class caps).
    assert_eq!(
        cfg.conv1_parameters() + cfg.primary_caps_parameters() + cfg.class_caps_parameters(),
        cfg.total_parameters()
    );
}
