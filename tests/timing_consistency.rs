//! Integration tests for the timing models: the analytical formulas and
//! the cycle-accurate engine must agree wherever their domains overlap,
//! and every dataflow optimization must help (or at least not hurt).

use capsacc::capsnet::CapsNetConfig;
use capsacc::core::{timing, Accelerator, AcceleratorConfig, ActivationKind};

#[test]
fn engine_matches_serial_formula_across_shapes() {
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.dataflow.pipelined_tiles = false;
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (1, 4, 4),
        (5, 4, 4),
        (3, 9, 7),
        (10, 5, 13),
        (2, 17, 2),
    ] {
        let mut acc = Accelerator::new(cfg);
        let before = acc.array_cycles();
        acc.matmul(
            &|mi, ki| ((mi * 3 + ki) % 50) as i8,
            &|ki, ni| ((ki + ni * 5) % 60) as i8,
            m,
            k,
            n,
            None,
            6,
            ActivationKind::Identity,
        );
        let got = acc.array_cycles() - before;
        let want = timing::matmul_cycles(
            timing::MatmulShape {
                m: m as u64,
                k: k as u64,
                n: n as u64,
            },
            &cfg,
        );
        assert_eq!(got, want, "cycle mismatch for ({m},{k},{n})");
    }
}

#[test]
fn every_optimization_reduces_or_preserves_total_cycles() {
    let net = CapsNetConfig::mnist();
    let base = AcceleratorConfig::paper();
    let total = |cfg: &AcceleratorConfig| timing::full_inference(cfg, &net).total_cycles();
    let baseline = total(&base);

    let mut c = base;
    c.dataflow.skip_first_softmax = false;
    assert!(total(&c) >= baseline, "skip-first-softmax should help");
    let mut c = base;
    c.dataflow.routing_feedback = false;
    assert!(total(&c) >= baseline, "feedback reuse should help");
    let mut c = base;
    c.dataflow.pipelined_tiles = false;
    assert!(total(&c) > baseline, "tile pipelining should help");
    let mut c = base;
    c.dataflow.weight_reuse = false;
    assert!(total(&c) > baseline, "weight reuse should help");
}

#[test]
fn routing_step_sequence_consistent_between_models() {
    // The analytical model and the engine must report the same step
    // sequence (Fig. 17 x-axis).
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let analytical: Vec<String> = timing::routing_steps(&net, &cfg)
        .iter()
        .map(|s| s.step.to_string())
        .collect();

    let qparams = capsacc::capsnet::CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let image = capsacc::tensor::Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &image);
    let simulated: Vec<String> = run.steps.iter().map(|(s, _)| s.to_string()).collect();
    assert_eq!(analytical, simulated);
}

#[test]
fn clock_frequency_scales_wall_time_not_cycles() {
    let net = CapsNetConfig::mnist();
    let base = AcceleratorConfig::paper();
    let mut fast = base;
    fast.clock_mhz = 500;
    let t_base = timing::full_inference(&base, &net);
    let t_fast = timing::full_inference(&fast, &net);
    assert_eq!(t_base.total_cycles(), t_fast.total_cycles());
    let ratio = t_base.total_time_us(&base) / t_fast.total_time_us(&fast);
    assert!((ratio - 2.0).abs() < 1e-9);
}

#[test]
fn wider_memory_helps_primarycaps_only_up_to_compute() {
    let net = CapsNetConfig::mnist();
    let mut narrow = AcceleratorConfig::paper();
    narrow.weight_mem_bw = 4;
    let mut wide = AcceleratorConfig::paper();
    wide.weight_mem_bw = 64;
    let t_narrow = timing::full_inference(&narrow, &net);
    let t_wide = timing::full_inference(&wide, &net);
    assert!(t_narrow.primary_caps.cycles > t_wide.primary_caps.cycles);
    // Once memory is fast enough, compute is the floor.
    assert_eq!(
        t_wide.primary_caps.cycles,
        t_wide.primary_caps.compute_cycles + t_wide.primary_caps.activation_cycles
    );
}

#[test]
fn mnist_inference_in_milliseconds_regime() {
    let cfg = AcceleratorConfig::paper();
    let t = timing::full_inference(&cfg, &CapsNetConfig::mnist());
    let ms = t.total_time_us(&cfg) / 1000.0;
    assert!((1.0..10.0).contains(&ms), "{ms} ms");
    // Layer ordering sanity: PrimaryCaps > ClassCaps > Conv1.
    assert!(t.primary_caps.cycles > t.class_caps_cycles());
    assert!(t.class_caps_cycles() > t.conv1.cycles);
}
