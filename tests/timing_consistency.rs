//! Integration tests for the timing models: the analytical formulas and
//! the cycle-accurate engine must agree wherever their domains overlap,
//! and every dataflow optimization must help (or at least not hurt).

use capsacc::capsnet::CapsNetConfig;
use capsacc::core::{timing, Accelerator, AcceleratorConfig, ActivationKind};

#[test]
fn engine_matches_serial_formula_across_shapes() {
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.dataflow.pipelined_tiles = false;
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (1, 4, 4),
        (5, 4, 4),
        (3, 9, 7),
        (10, 5, 13),
        (2, 17, 2),
    ] {
        let mut acc = Accelerator::new(cfg);
        let before = acc.array_cycles();
        acc.matmul(
            &|mi, ki| ((mi * 3 + ki) % 50) as i8,
            &|ki, ni| ((ki + ni * 5) % 60) as i8,
            m,
            k,
            n,
            None,
            6,
            ActivationKind::Identity,
        );
        let got = acc.array_cycles() - before;
        let want = timing::matmul_cycles(
            timing::MatmulShape {
                m: m as u64,
                k: k as u64,
                n: n as u64,
            },
            &cfg,
        );
        assert_eq!(got, want, "cycle mismatch for ({m},{k},{n})");
    }
}

#[test]
fn batched_engine_matches_batched_serial_formula() {
    // The batched closed-form model must agree with the ticked engine
    // *exactly* wherever their domains overlap: serial tiles, resident
    // weights, any shape × batch size.
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.dataflow.pipelined_tiles = false;
    for (m, k, n) in [(1usize, 4usize, 4usize), (3, 9, 7), (5, 17, 3), (2, 5, 13)] {
        for batch in [1usize, 2, 3, 5, 8] {
            let mut acc = Accelerator::new(cfg);
            let before = acc.array_cycles();
            acc.matmul_batch(
                batch,
                &|img, mi, ki| ((img * 11 + mi * 3 + ki) % 50) as i8,
                &|ki, ni| ((ki + ni * 5) % 60) as i8,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let got = acc.array_cycles() - before;
            let want = timing::batch_matmul_cycles(
                timing::MatmulShape {
                    m: m as u64,
                    k: k as u64,
                    n: n as u64,
                },
                batch as u64,
                &cfg,
            );
            assert_eq!(
                got, want,
                "cycle mismatch for ({m},{k},{n}) × batch {batch}"
            );
        }
    }
}

#[test]
fn batched_cycles_per_image_decrease_monotonically_at_mnist_scale() {
    let net = CapsNetConfig::mnist();
    let cfg = AcceleratorConfig::paper();
    let mut prev = f64::INFINITY;
    for batch in [1u64, 2, 4, 8, 16, 32, 64] {
        let t = timing::full_inference_batch(&cfg, &net, batch);
        let per_image = t.cycles_per_image();
        assert!(
            per_image < prev,
            "cycles/image must fall with batch size: {per_image} at batch {batch} \
             vs {prev} before"
        );
        prev = per_image;
    }
    // And the amortization is material, not marginal: batch 16 beats
    // batch 1 by more than 15% on cycles and ~16x on weight bytes.
    let b1 = timing::full_inference_batch(&cfg, &net, 1);
    let b16 = timing::full_inference_batch(&cfg, &net, 16);
    assert!(b16.cycles_per_image() < 0.85 * b1.cycles_per_image());
    assert!(b16.weight_bytes_per_image() * 15.9 < b1.weight_bytes_per_image());
    assert!((b16.weight_bytes_per_image() - b1.weight_bytes_per_image() / 16.0).abs() < 1.0);
}

#[test]
fn batched_engine_and_model_agree_on_amortization_direction() {
    // Cycle-accurate cross-check at the tiny scale: engine run_batch and
    // the closed-form batched model must both report falling per-image
    // cost, and the engine's weight-buffer bytes must amortize exactly
    // (conv + FC tiles once per batch, routing per image).
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = capsacc::capsnet::CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let images: Vec<capsacc::tensor::Tensor<f32>> = (0..8)
        .map(|s| {
            capsacc::tensor::Tensor::from_fn(&[1, 12, 12], |i| {
                ((i[1] * (s + 2) + i[2]) % 9) as f32 / 9.0
            })
        })
        .collect();
    let run_at = |b: usize| {
        let mut sched = capsacc::core::BatchScheduler::new(cfg);
        sched
            .run(&net, &qparams, &images[..b])
            .expect("valid batch")
    };
    let b1 = run_at(1);
    let b8 = run_at(8);
    assert!(b8.cycles_per_image() < b1.cycles_per_image());
    assert!(b8.weight_buffer_bytes_per_image() < b1.weight_buffer_bytes_per_image());
    let m1 = timing::full_inference_batch(&cfg, &net, 1);
    let m8 = timing::full_inference_batch(&cfg, &net, 8);
    assert!(m8.cycles_per_image() < m1.cycles_per_image());
}

#[test]
fn every_optimization_reduces_or_preserves_total_cycles() {
    let net = CapsNetConfig::mnist();
    let base = AcceleratorConfig::paper();
    let total = |cfg: &AcceleratorConfig| timing::full_inference(cfg, &net).total_cycles();
    let baseline = total(&base);

    let mut c = base;
    c.dataflow.skip_first_softmax = false;
    assert!(total(&c) >= baseline, "skip-first-softmax should help");
    let mut c = base;
    c.dataflow.routing_feedback = false;
    assert!(total(&c) >= baseline, "feedback reuse should help");
    let mut c = base;
    c.dataflow.pipelined_tiles = false;
    assert!(total(&c) > baseline, "tile pipelining should help");
    let mut c = base;
    c.dataflow.weight_reuse = false;
    assert!(total(&c) > baseline, "weight reuse should help");
}

#[test]
fn routing_step_sequence_consistent_between_models() {
    // The analytical model and the engine must report the same step
    // sequence (Fig. 17 x-axis).
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let analytical: Vec<String> = timing::routing_steps(&net, &cfg)
        .iter()
        .map(|s| s.step.to_string())
        .collect();

    let qparams = capsacc::capsnet::CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let image = capsacc::tensor::Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &image);
    let simulated: Vec<String> = run.steps.iter().map(|(s, _)| s.to_string()).collect();
    assert_eq!(analytical, simulated);
}

#[test]
fn clock_frequency_scales_wall_time_not_cycles() {
    let net = CapsNetConfig::mnist();
    let base = AcceleratorConfig::paper();
    let mut fast = base;
    fast.clock_mhz = 500;
    let t_base = timing::full_inference(&base, &net);
    let t_fast = timing::full_inference(&fast, &net);
    assert_eq!(t_base.total_cycles(), t_fast.total_cycles());
    let ratio = t_base.total_time_us(&base) / t_fast.total_time_us(&fast);
    assert!((ratio - 2.0).abs() < 1e-9);
}

#[test]
fn wider_memory_helps_primarycaps_only_up_to_compute() {
    let net = CapsNetConfig::mnist();
    let mut narrow = AcceleratorConfig::paper();
    narrow.weight_mem_bw = 4;
    let mut wide = AcceleratorConfig::paper();
    wide.weight_mem_bw = 64;
    let t_narrow = timing::full_inference(&narrow, &net);
    let t_wide = timing::full_inference(&wide, &net);
    assert!(t_narrow.primary_caps.cycles > t_wide.primary_caps.cycles);
    // Once memory is fast enough, compute is the floor.
    assert_eq!(
        t_wide.primary_caps.cycles,
        t_wide.primary_caps.compute_cycles + t_wide.primary_caps.activation_cycles
    );
}

#[test]
fn mnist_inference_in_milliseconds_regime() {
    let cfg = AcceleratorConfig::paper();
    let t = timing::full_inference(&cfg, &CapsNetConfig::mnist());
    let ms = t.total_time_us(&cfg) / 1000.0;
    assert!((1.0..10.0).contains(&ms), "{ms} ms");
    // Layer ordering sanity: PrimaryCaps > ClassCaps > Conv1.
    assert!(t.primary_caps.cycles > t.class_caps_cycles());
    assert!(t.class_caps_cycles() > t.conv1.cycles);
}
