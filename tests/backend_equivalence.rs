//! Differential tests for the engine's execution backends: for any
//! matmul shape, array geometry, batch size and operand distribution —
//! including workloads crafted to clip the 25-bit partial-sum datapath —
//! `EngineBackend::Functional` must be **bit-identical** to
//! `EngineBackend::Ticked`: same outputs, same per-image saturation
//! attribution, same cycle counts, same traffic. Saturation is
//! order-sensitive (`sat(sat(a+b)+c) != sat(a+b+c)` in general), so
//! these tests are what pins the functional fold to the PE datapath's
//! fixed north→south order rather than to "a matmul with a clamp".

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{
    Accelerator, AcceleratorConfig, ActivationKind, BatchScheduler, EngineBackend, MemoryConfig,
    TraceLevel,
};
use proptest::prelude::*;

mod common;
use common::image_for;

fn functional(mut cfg: AcceleratorConfig) -> AcceleratorConfig {
    cfg.backend = EngineBackend::Functional;
    cfg
}

/// Runs one batched matmul on both backends and asserts every
/// observable is equal: outputs, per-image saturations, array cycles,
/// activation cycles, traffic counters and memory stalls.
#[allow(clippy::too_many_arguments)]
fn assert_matmul_backends_agree(
    cfg: AcceleratorConfig,
    batch: usize,
    data: &dyn Fn(usize, usize, usize) -> i8,
    weight: &dyn Fn(usize, usize) -> i8,
    m: usize,
    k: usize,
    n: usize,
    shift: u32,
) -> u64 {
    let mut ticked = Accelerator::new(cfg);
    let (want_outs, want_sats) = ticked.matmul_batch(
        batch,
        data,
        weight,
        m,
        k,
        n,
        None,
        shift,
        ActivationKind::Identity,
    );
    let mut fast = Accelerator::new(functional(cfg));
    let (got_outs, got_sats) = fast.matmul_batch(
        batch,
        data,
        weight,
        m,
        k,
        n,
        None,
        shift,
        ActivationKind::Identity,
    );
    assert_eq!(got_outs, want_outs, "outputs diverged at ({m},{k},{n})");
    assert_eq!(got_sats, want_sats, "saturation attribution diverged");
    assert_eq!(fast.array_cycles(), ticked.array_cycles(), "cycle charge");
    assert_eq!(
        fast.activation_cycles(),
        ticked.activation_cycles(),
        "activation cycles"
    );
    assert_eq!(fast.traffic(), ticked.traffic(), "traffic counters");
    assert_eq!(
        fast.memory_stall_cycles(),
        ticked.memory_stall_cycles(),
        "memory stalls"
    );
    want_sats.iter().sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline differential property: random shapes × array sizes
    /// × batch sizes, every observable bit-identical.
    #[test]
    fn functional_matmul_equals_ticked(
        m in 1usize..7,
        k in 1usize..40,
        n in 1usize..10,
        rows in 1usize..6,
        cols in 1usize..6,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.activation_units = rows;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 56) as i8
        };
        let d: Vec<i8> = (0..batch * m * k).map(|_| next()).collect();
        let w: Vec<i8> = (0..k * n).map(|_| next()).collect();
        assert_matmul_backends_agree(
            cfg,
            batch,
            &|img, mi, ki| d[(img * m + mi) * k + ki],
            &|ki, ni| w[ki * n + ni],
            m, k, n, 6,
        );
    }

    /// Saturation-adversarial generator: near-maximal operands over
    /// reductions deep enough that the running sum is guaranteed to
    /// cross +2^24 (which takes ≥1040 consecutive 127·127 products),
    /// with one seeded negative block per (image, row) dragging it back
    /// down — the regime where a fold in the wrong order (or a clamp
    /// applied at the end instead of per step) produces different
    /// numbers and different saturation counts.
    #[test]
    fn functional_matmul_equals_ticked_under_saturation(
        m in 1usize..3,
        k in 1300usize..2200,
        n in 1usize..5,
        rows in 2usize..6,
        batch in 1usize..3,
        block in 20usize..100,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = 4;
        // ≥ (k − block) positive products of ≥ 125·127 each: the climb
        // crosses the clip no matter where the negative block lands.
        let start = seed as usize % (k - block);
        let data = move |img: usize, mi: usize, ki: usize| -> i8 {
            let s = (start + 17 * (img + mi)) % (k - block);
            if (s..s + block).contains(&ki) { -127 } else { 127 }
        };
        let weight = move |ki: usize, ni: usize| -> i8 {
            if (ki + ni).is_multiple_of(2) { 127 } else { 125 }
        };
        // Shift 18 keeps distinct 25-bit sums distinct after the output
        // requantization (shift 6 would clamp everything to ±127 and
        // mask a divergence).
        let sats = assert_matmul_backends_agree(cfg, batch, &data, &weight, m, k, n, 18);
        // The generator must actually reach the 25-bit clip, otherwise
        // this proptest degenerates to the plain differential one.
        prop_assert!(sats > 0, "adversarial workload failed to saturate");
    }

    /// Full tiny-network inferences across random seeds and both
    /// routing variants: entire `InferenceRun`s equal.
    #[test]
    fn functional_inference_equals_ticked(
        seed in 0u64..1000,
        skip_first_softmax in any::<bool>(),
    ) {
        let net = CapsNetConfig::tiny();
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.skip_first_softmax = skip_first_softmax;
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let image = image_for(&net, seed as usize);
        let mut ticked = Accelerator::new(cfg);
        let want = ticked.run_inference(&net, &qparams, &image);
        let mut fast = Accelerator::new(functional(cfg));
        let got = fast.run_inference(&net, &qparams, &image);
        prop_assert_eq!(got, want, "seed {}", seed);
    }
}

#[test]
fn in_array_saturation_pins_the_north_south_fold() {
    // The Pe-level clip only fires once a single K-tile's running psum
    // exceeds ±2^24, which needs >1040 consecutive 127·127 products —
    // taller than any realistic array, so the proptests above exercise
    // the *accumulator* fold. This case builds a 1100-row array so the
    // saturation happens **inside** the tile fold: the sum climbs to
    // the positive clip, then negative products drag it back down.
    // An end-clamped exact sum gives a different answer, which is what
    // proves the test distinguishes fold orders at all.
    let (m, k, n) = (2usize, 1100usize, 2usize);
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.rows = k; // single K-tile: all the folding happens in-array
    cfg.cols = 2;
    cfg.weight_buffer_bytes = 2 * k * 2; // keep the tile-fits invariant
    let data = |_img: usize, _mi: usize, ki: usize| -> i8 {
        if ki < 1060 {
            127
        } else {
            -127
        }
    };
    let weight = |_ki: usize, _ni: usize| -> i8 { 127 };

    // The order-sensitivity witness: per-step saturation != end clamp,
    // and the difference survives the shift-18 output requantization.
    let exact: i64 = (0..k).map(|ki| data(0, 0, ki) as i64 * 127).sum();
    let end_clamped = exact.clamp(-(1 << 24), (1 << 24) - 1);
    let mut stepped = 0i64;
    for ki in 0..k {
        stepped = (stepped + data(0, 0, ki) as i64 * 127).clamp(-(1 << 24), (1 << 24) - 1);
    }
    assert_ne!(
        capsacc::fixed::requantize(stepped, 18),
        capsacc::fixed::requantize(end_clamped, 18),
        "workload does not distinguish fold orders"
    );

    assert_matmul_backends_agree(cfg, 1, &data, &weight, m, k, n, 18);
}

#[test]
fn functional_batch_runs_agree_under_finite_memory() {
    // The backend choice composes with the memory hierarchy: under the
    // finite paper MemoryConfig the stall replay is charged identically
    // (it never touches the array), so whole BatchRuns stay equal.
    let net = CapsNetConfig::tiny();
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.memory = MemoryConfig::paper();
    let qparams = CapsNetParams::generate(&net, 17).quantize(cfg.numeric);
    let images: Vec<_> = (0..4).map(|s| image_for(&net, s)).collect();
    let mut ticked = BatchScheduler::new(cfg);
    let want = ticked.run(&net, &qparams, &images).expect("valid batch");
    let mut fast = BatchScheduler::new(functional(cfg));
    let got = fast.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(got, want);
    assert!(
        got.memory.stall_cycles > 0,
        "finite memory should stall — otherwise this tests nothing"
    );
}

#[test]
fn functional_untraced_serving_config_keeps_outputs() {
    // The serving configuration (Functional + TraceLevel::Outputs)
    // against the fully-traced ticked reference: final outputs and all
    // accounting equal; only the iteration snapshots are absent.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 31).quantize(cfg.numeric);
    let image = image_for(&net, 31);
    let mut reference = Accelerator::new(cfg);
    let want = reference.run_inference(&net, &qparams, &image);
    let mut serving_cfg = functional(cfg);
    serving_cfg.trace_level = TraceLevel::Outputs;
    let mut serving = Accelerator::new(serving_cfg);
    let got = serving.run_inference(&net, &qparams, &image);
    assert!(got.trace.iterations.is_empty());
    assert_eq!(got.trace.output, want.trace.output);
    assert_eq!(got.trace.u_hat, want.trace.u_hat);
    assert_eq!(got.layers, want.layers);
    assert_eq!(got.steps, want.steps);
    assert_eq!(got.traffic, want.traffic);
}
