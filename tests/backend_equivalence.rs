//! Differential tests for the engine's execution backends: for any
//! matmul shape, array geometry, batch size and operand distribution —
//! including workloads crafted to clip the 25-bit partial-sum datapath —
//! `EngineBackend::Functional` must be **bit-identical** to
//! `EngineBackend::Ticked`: same outputs, same per-image saturation
//! attribution, same cycle counts, same traffic. Saturation is
//! order-sensitive (`sat(sat(a+b)+c) != sat(a+b+c)` in general), so
//! these tests are what pins the functional fold to the PE datapath's
//! fixed north→south order rather than to "a matmul with a clamp".
//!
//! The functional backend's host-execution knobs are additional axes
//! of the same invariant: every thread count (1/2/4/7, including the
//! ragged-chunk case), every SIMD mode (explicit-vector vs scalar) and
//! every forced kernel (dense vs zero-skip, overriding the zero-
//! fraction heuristic) must be byte-invisible — same outputs, same
//! saturation attribution, same cycles and traffic, same golden trace
//! digests.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{
    Accelerator, AcceleratorConfig, ActivationKind, BatchScheduler, EngineBackend,
    FunctionalOptions, KernelSelect, MemoryConfig, SimdMode, TraceLevel,
};
use proptest::prelude::*;

mod common;
use common::{image_for, trace_digests};

fn functional(mut cfg: AcceleratorConfig) -> AcceleratorConfig {
    cfg.backend = EngineBackend::Functional;
    cfg
}

/// Runs one batched matmul on both backends and asserts every
/// observable is equal: outputs, per-image saturations, array cycles,
/// activation cycles, traffic counters and memory stalls.
#[allow(clippy::too_many_arguments)]
fn assert_matmul_backends_agree(
    cfg: AcceleratorConfig,
    batch: usize,
    data: &dyn Fn(usize, usize, usize) -> i8,
    weight: &dyn Fn(usize, usize) -> i8,
    m: usize,
    k: usize,
    n: usize,
    shift: u32,
) -> u64 {
    let mut ticked = Accelerator::new(cfg);
    let (want_outs, want_sats) = ticked.matmul_batch(
        batch,
        data,
        weight,
        m,
        k,
        n,
        None,
        shift,
        ActivationKind::Identity,
    );
    let mut fast = Accelerator::new(functional(cfg));
    let (got_outs, got_sats) = fast.matmul_batch(
        batch,
        data,
        weight,
        m,
        k,
        n,
        None,
        shift,
        ActivationKind::Identity,
    );
    assert_eq!(got_outs, want_outs, "outputs diverged at ({m},{k},{n})");
    assert_eq!(got_sats, want_sats, "saturation attribution diverged");
    assert_eq!(fast.array_cycles(), ticked.array_cycles(), "cycle charge");
    assert_eq!(
        fast.activation_cycles(),
        ticked.activation_cycles(),
        "activation cycles"
    );
    assert_eq!(fast.traffic(), ticked.traffic(), "traffic counters");
    assert_eq!(
        fast.memory_stall_cycles(),
        ticked.memory_stall_cycles(),
        "memory stalls"
    );
    want_sats.iter().sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline differential property: random shapes × array sizes
    /// × batch sizes, every observable bit-identical.
    #[test]
    fn functional_matmul_equals_ticked(
        m in 1usize..7,
        k in 1usize..40,
        n in 1usize..10,
        rows in 1usize..6,
        cols in 1usize..6,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.activation_units = rows;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 56) as i8
        };
        let d: Vec<i8> = (0..batch * m * k).map(|_| next()).collect();
        let w: Vec<i8> = (0..k * n).map(|_| next()).collect();
        assert_matmul_backends_agree(
            cfg,
            batch,
            &|img, mi, ki| d[(img * m + mi) * k + ki],
            &|ki, ni| w[ki * n + ni],
            m, k, n, 6,
        );
    }

    /// Saturation-adversarial generator: near-maximal operands over
    /// reductions deep enough that the running sum is guaranteed to
    /// cross +2^24 (which takes ≥1040 consecutive 127·127 products),
    /// with one seeded negative block per (image, row) dragging it back
    /// down — the regime where a fold in the wrong order (or a clamp
    /// applied at the end instead of per step) produces different
    /// numbers and different saturation counts.
    #[test]
    fn functional_matmul_equals_ticked_under_saturation(
        m in 1usize..3,
        k in 1300usize..2200,
        n in 1usize..5,
        rows in 2usize..6,
        batch in 1usize..3,
        block in 20usize..100,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = 4;
        // ≥ (k − block) positive products of ≥ 125·127 each: the climb
        // crosses the clip no matter where the negative block lands.
        let start = seed as usize % (k - block);
        let data = move |img: usize, mi: usize, ki: usize| -> i8 {
            let s = (start + 17 * (img + mi)) % (k - block);
            if (s..s + block).contains(&ki) { -127 } else { 127 }
        };
        let weight = move |ki: usize, ni: usize| -> i8 {
            if (ki + ni).is_multiple_of(2) { 127 } else { 125 }
        };
        // Shift 18 keeps distinct 25-bit sums distinct after the output
        // requantization (shift 6 would clamp everything to ±127 and
        // mask a divergence).
        let sats = assert_matmul_backends_agree(cfg, batch, &data, &weight, m, k, n, 18);
        // The generator must actually reach the 25-bit clip, otherwise
        // this proptest degenerates to the plain differential one.
        prop_assert!(sats > 0, "adversarial workload failed to saturate");
    }

    /// Full tiny-network inferences across random seeds and both
    /// routing variants: entire `InferenceRun`s equal.
    #[test]
    fn functional_inference_equals_ticked(
        seed in 0u64..1000,
        skip_first_softmax in any::<bool>(),
    ) {
        let net = CapsNetConfig::tiny();
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.skip_first_softmax = skip_first_softmax;
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let image = image_for(&net, seed as usize);
        let mut ticked = Accelerator::new(cfg);
        let want = ticked.run_inference(&net, &qparams, &image);
        let mut fast = Accelerator::new(functional(cfg));
        let got = fast.run_inference(&net, &qparams, &image);
        prop_assert_eq!(got, want, "seed {}", seed);
    }
}

#[test]
fn in_array_saturation_pins_the_north_south_fold() {
    // The Pe-level clip only fires once a single K-tile's running psum
    // exceeds ±2^24, which needs >1040 consecutive 127·127 products —
    // taller than any realistic array, so the proptests above exercise
    // the *accumulator* fold. This case builds a 1100-row array so the
    // saturation happens **inside** the tile fold: the sum climbs to
    // the positive clip, then negative products drag it back down.
    // An end-clamped exact sum gives a different answer, which is what
    // proves the test distinguishes fold orders at all.
    let (m, k, n) = (2usize, 1100usize, 2usize);
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.rows = k; // single K-tile: all the folding happens in-array
    cfg.cols = 2;
    cfg.weight_buffer_bytes = 2 * k * 2; // keep the tile-fits invariant
    let data = |_img: usize, _mi: usize, ki: usize| -> i8 {
        if ki < 1060 {
            127
        } else {
            -127
        }
    };
    let weight = |_ki: usize, _ni: usize| -> i8 { 127 };

    // The order-sensitivity witness: per-step saturation != end clamp,
    // and the difference survives the shift-18 output requantization.
    let exact: i64 = (0..k).map(|ki| data(0, 0, ki) as i64 * 127).sum();
    let end_clamped = exact.clamp(-(1 << 24), (1 << 24) - 1);
    let mut stepped = 0i64;
    for ki in 0..k {
        stepped = (stepped + data(0, 0, ki) as i64 * 127).clamp(-(1 << 24), (1 << 24) - 1);
    }
    assert_ne!(
        capsacc::fixed::requantize(stepped, 18),
        capsacc::fixed::requantize(end_clamped, 18),
        "workload does not distinguish fold orders"
    );

    assert_matmul_backends_agree(cfg, 1, &data, &weight, m, k, n, 18);
}

#[test]
fn functional_batch_runs_agree_under_finite_memory() {
    // The backend choice composes with the memory hierarchy: under the
    // finite paper MemoryConfig the stall replay is charged identically
    // (it never touches the array), so whole BatchRuns stay equal.
    let net = CapsNetConfig::tiny();
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.memory = MemoryConfig::paper();
    let qparams = CapsNetParams::generate(&net, 17).quantize(cfg.numeric);
    let images: Vec<_> = (0..4).map(|s| image_for(&net, s)).collect();
    let mut ticked = BatchScheduler::new(cfg);
    let want = ticked.run(&net, &qparams, &images).expect("valid batch");
    let mut fast = BatchScheduler::new(functional(cfg));
    let got = fast.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(got, want);
    assert!(
        got.memory.stall_cycles > 0,
        "finite memory should stall — otherwise this tests nothing"
    );
}

/// The host-execution axes the functional backend must be invariant
/// over. 7 is deliberately coprime with the row counts in play, so the
/// per-thread row chunks land unevenly and the last chunk is ragged.
const THREAD_AXIS: [usize; 4] = [1, 2, 4, 7];
const SIMD_AXIS: [SimdMode; 2] = [SimdMode::Auto, SimdMode::Scalar];

fn functional_with(mut cfg: AcceleratorConfig, opts: FunctionalOptions) -> AcceleratorConfig {
    cfg.backend = EngineBackend::Functional;
    cfg.functional = opts;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel equivalence on random shapes: every thread count ×
    /// SIMD mode produces observables bit-identical to the ticked
    /// reference (and therefore to each other). This is the host-knob
    /// generalization of `functional_matmul_equals_ticked`.
    #[test]
    fn threaded_simd_matmuls_equal_ticked(
        m in 1usize..7,
        k in 1usize..40,
        n in 1usize..10,
        rows in 1usize..6,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.activation_units = rows;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 56) as i8
        };
        let d: Vec<i8> = (0..batch * m * k).map(|_| next()).collect();
        let w: Vec<i8> = (0..k * n).map(|_| next()).collect();
        for threads in THREAD_AXIS {
            for simd in SIMD_AXIS {
                let mut v = cfg;
                v.functional = FunctionalOptions { threads, simd, ..FunctionalOptions::default() };
                assert_matmul_backends_agree(
                    v,
                    batch,
                    &|img, mi, ki| d[(img * m + mi) * k + ki],
                    &|ki, ni| w[ki * n + ni],
                    m, k, n, 6,
                );
            }
        }
    }

    /// The saturation-adversarial workload across the same host axes:
    /// a row split or lane width that perturbed the fold order would
    /// change the clipped values, and this generator is built so such
    /// a change survives requantization.
    #[test]
    fn threaded_simd_matmuls_equal_ticked_under_saturation(
        k in 1300usize..1800,
        rows in 2usize..6,
        block in 20usize..100,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.cols = 4;
        let start = seed as usize % (k - block);
        let data = move |img: usize, mi: usize, ki: usize| -> i8 {
            let s = (start + 17 * (img + mi)) % (k - block);
            if (s..s + block).contains(&ki) { -127 } else { 127 }
        };
        let weight = move |ki: usize, ni: usize| -> i8 {
            if (ki + ni).is_multiple_of(2) { 127 } else { 125 }
        };
        for threads in THREAD_AXIS {
            for simd in SIMD_AXIS {
                let mut v = cfg;
                v.functional = FunctionalOptions { threads, simd, ..FunctionalOptions::default() };
                let sats = assert_matmul_backends_agree(v, 2, &data, &weight, 2, k, 3, 18);
                prop_assert!(sats > 0, "adversarial workload failed to saturate");
            }
        }
    }

    /// Forcing either fixed-width kernel onto the *same* tile must be
    /// invisible: the zero-skip kernel and the dense kernel (scalar and
    /// SIMD alike) are bit-equal to the ticked reference even on panels
    /// the auto heuristic would route to the other kernel. The
    /// generator mixes zero-heavy and dense panels so both forcings run
    /// against both panel kinds.
    #[test]
    fn forced_kernels_are_bit_equal(
        m in 1usize..6,
        k in 1usize..40,
        n in 1usize..8,
        rows in 1usize..6,
        zero_pct in 0u8..100,
        seed in any::<u64>(),
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = rows;
        cfg.activation_units = rows;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 56) as i8
        };
        let d: Vec<i8> = (0..2 * m * k)
            .map(|_| {
                let v = next();
                if (next() as u8) % 100 < zero_pct { 0 } else { v }
            })
            .collect();
        let w: Vec<i8> = (0..k * n).map(|_| next()).collect();
        for kernel in [KernelSelect::Auto, KernelSelect::ForceDense, KernelSelect::ForceZeroSkip] {
            for simd in SIMD_AXIS {
                let mut v = cfg;
                v.functional = FunctionalOptions { kernel, simd, ..FunctionalOptions::default() };
                assert_matmul_backends_agree(
                    v,
                    2,
                    &|img, mi, ki| d[(img * m + mi) * k + ki],
                    &|ki, ni| w[ki * n + ni],
                    m, k, n, 6,
                );
            }
        }
    }

    /// Whole `BatchRun`s across the host axes: outputs, per-layer
    /// cycles, routing steps, traffic, memory report and the per-image
    /// golden trace digests all byte-identical to the ticked run.
    #[test]
    fn threaded_batch_runs_are_byte_identical(
        seed in 0u64..500,
        batch in 1usize..4,
    ) {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let images: Vec<_> = (0..batch)
            .map(|s| image_for(&net, s + seed as usize))
            .collect();
        let want = BatchScheduler::new(cfg)
            .run(&net, &qparams, &images)
            .expect("valid batch");
        let want_digests: Vec<_> = want.traces.iter().map(trace_digests).collect();
        for threads in THREAD_AXIS {
            for simd in SIMD_AXIS {
                let opts = FunctionalOptions { threads, simd, ..FunctionalOptions::default() };
                let got = BatchScheduler::new(functional_with(cfg, opts))
                    .run(&net, &qparams, &images)
                    .expect("valid batch");
                prop_assert_eq!(&got, &want, "threads {} simd {:?}", threads, simd);
                let got_digests: Vec<_> = got.traces.iter().map(trace_digests).collect();
                prop_assert_eq!(&got_digests, &want_digests);
            }
        }
    }
}

#[test]
fn functional_untraced_serving_config_keeps_outputs() {
    // The serving configuration (Functional + TraceLevel::Outputs)
    // against the fully-traced ticked reference: final outputs and all
    // accounting equal; only the iteration snapshots are absent.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 31).quantize(cfg.numeric);
    let image = image_for(&net, 31);
    let mut reference = Accelerator::new(cfg);
    let want = reference.run_inference(&net, &qparams, &image);
    let mut serving_cfg = functional(cfg);
    serving_cfg.trace_level = TraceLevel::Outputs;
    let mut serving = Accelerator::new(serving_cfg);
    let got = serving.run_inference(&net, &qparams, &image);
    assert!(got.trace.iterations.is_empty());
    assert_eq!(got.trace.output, want.trace.output);
    assert_eq!(got.trace.u_hat, want.trace.u_hat);
    assert_eq!(got.layers, want.layers);
    assert_eq!(got.steps, want.steps);
    assert_eq!(got.traffic, want.traffic);
}
