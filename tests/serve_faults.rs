//! Fault-tolerance invariants of the serving runtime (PR 10).
//!
//! Under any seeded [`capsacc::faults::FaultPlan`] the runtime must
//! keep its books: no request is ever lost (served XOR rejected XOR
//! retry-exhausted, exactly once), retries stay within budget, hedged
//! duplicates never double-count a completion, and every run — faulted
//! or not — is byte-identical on rerun. With
//! [`ResilienceConfig::none`] the runtime must be indistinguishable
//! from the pre-fault engine: same events, same digest, same outcome.

use capsacc::faults::FaultPlan;
use capsacc::serve::{
    run_runtime, workload_trace, ArrivalRegime, AutoscalerConfig, BatcherConfig, ClassConfig,
    DegradeConfig, HedgeConfig, LoggedEvent, Rejection, Request, ResilienceConfig, RetryConfig,
    RuntimeConfig, RuntimeOutcome, WorkloadConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn flat_service(n: usize) -> u64 {
    400 + 60 * n as u64
}

fn workload(seed: u64, requests: usize, gap: u64) -> Vec<Request> {
    workload_trace(&WorkloadConfig {
        seed,
        requests,
        regime: ArrivalRegime::Bursty {
            mean_gap_cycles: gap as f64,
            mean_burst: 3.0,
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: Some(30_000),
            },
            ClassConfig {
                weight: 1,
                slo_cycles: None,
            },
        ],
    })
}

/// A runtime config with fault injection armed at the given serve-layer
/// rates, plus optional hedging and degradation.
fn faulted_cfg(
    fault_seed: u64,
    crash: f64,
    stall: f64,
    straggle: f64,
    hedge: bool,
    degrade: bool,
) -> RuntimeConfig {
    let mut faults = FaultPlan::seeded(fault_seed);
    faults.serve.crash_per_dispatch = crash;
    faults.serve.stall_per_dispatch = stall;
    faults.serve.stall_cycles = 500;
    faults.serve.straggler_per_dispatch = straggle;
    faults.serve.straggler_factor = 4;
    RuntimeConfig {
        workers: 3,
        batcher: BatcherConfig {
            max_batch: 4,
            max_wait_cycles: 800,
        },
        queue_capacity: Some(64),
        deadline_aware: false,
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 6,
            scale_up_queue_per_worker: 8,
            scale_down_idle_cycles: 50_000,
            eval_period_cycles: 5_000,
        }),
        record_events: true,
        resilience: ResilienceConfig {
            faults,
            retry: RetryConfig {
                max_attempts: 3,
                backoff_base_cycles: 200,
            },
            hedge: hedge.then(HedgeConfig::standard),
            degrade: degrade.then_some(DegradeConfig {
                high_occupancy: 24,
                low_occupancy: 8,
                eval_period_cycles: 2_000,
                max_level: 2,
            }),
        },
    }
}

/// Conservation: every offered request is served, shed, refused as
/// infeasible, or retry-exhausted — exactly one of them, exactly once —
/// and the per-class ledgers sum to the same books.
fn assert_no_request_lost(out: &RuntimeOutcome, requests: &[Request]) {
    let n = requests.len();
    let mut seen = vec![0usize; n];
    for &r in &out.served {
        seen[r] += 1;
    }
    for rej in &out.rejections {
        seen[rej.request] += 1;
    }
    for (r, &count) in seen.iter().enumerate() {
        assert_eq!(count, 1, "request {r} resolved {count} times, want 1");
    }
    assert_eq!(out.total_requests, n);
    for (class, c) in out.class_stats.iter().enumerate() {
        assert_eq!(
            c.offered,
            c.served + c.shed + c.infeasible + c.retry_exhausted,
            "class {class} ledger out of balance: {c:?}"
        );
    }
    let offered: usize = out.class_stats.iter().map(|c| c.offered).sum();
    assert_eq!(offered, n);
}

/// Retry bound: no batch is requeued more than `max_attempts - 1`
/// times, and every requeue carries an in-budget attempt number.
fn assert_retry_bounded(out: &RuntimeOutcome, max_attempts: u32) {
    let mut requeues: BTreeMap<usize, u32> = BTreeMap::new();
    for e in &out.events {
        if let LoggedEvent::Requeued { batch, attempt, .. } = *e {
            let c = requeues.entry(batch).or_insert(0);
            *c += 1;
            assert!(
                attempt < max_attempts,
                "batch {batch} requeued after attempt {attempt} with budget {max_attempts}"
            );
        }
    }
    for (batch, count) in requeues {
        assert!(
            count < max_attempts,
            "batch {batch} requeued {count} times with budget {max_attempts}"
        );
    }
}

/// Hedged duplicates never double-count: one completion per batch,
/// every cancelled hedge accounted, wins bounded by hedges.
fn assert_hedges_single_count(out: &RuntimeOutcome) {
    let mut completions: BTreeMap<usize, usize> = BTreeMap::new();
    let mut cancelled = 0usize;
    for e in &out.events {
        match *e {
            LoggedEvent::Completed { batch, .. } => *completions.entry(batch).or_insert(0) += 1,
            LoggedEvent::HedgeCancelled { .. } => cancelled += 1,
            _ => {}
        }
    }
    for (batch, count) in &completions {
        assert_eq!(*count, 1, "batch {batch} completed {count} times");
    }
    assert_eq!(completions.len(), out.sim.batches.len());
    assert!(out.faults.hedge_wins <= out.faults.hedges);
    assert!(cancelled <= out.faults.hedges, "more cancels than hedges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Faults-off is byte-invisible: a resilience block with no fault
    /// plan, hedging or degradation produces the identical outcome —
    /// digest included — regardless of its retry parameters.
    #[test]
    fn faults_off_is_byte_identical(
        seed in 0u64..500,
        n in 20usize..80,
        gap in 300u64..3_000,
        max_attempts in 1u32..6,
        backoff in 1u64..10_000,
    ) {
        let requests = workload(seed, n, gap);
        let mut base = faulted_cfg(0, 0.0, 0.0, 0.0, false, false);
        base.resilience = ResilienceConfig::none();
        let golden = run_runtime(&base, &requests, &flat_service, 900);
        let mut tweaked = base;
        tweaked.resilience.retry = RetryConfig { max_attempts, backoff_base_cycles: backoff };
        prop_assert!(tweaked.resilience.is_none());
        let out = run_runtime(&tweaked, &requests, &flat_service, 900);
        prop_assert_eq!(&out, &golden);
        prop_assert_eq!(out.event_digest, golden.event_digest);
        prop_assert_eq!(out.faults, capsacc::serve::FaultStats::default());
        assert_no_request_lost(&golden, &requests);
    }

    /// Seeded fault schedules are deterministic: the same plan rerun
    /// is byte-identical, and every bookkeeping invariant holds under
    /// crashes, stalls, stragglers, hedging and degradation at once.
    #[test]
    fn faulted_runs_hold_invariants_and_rerun_identically(
        seed in 0u64..300,
        fault_seed in 0u64..300,
        n in 20usize..80,
        gap in 200u64..2_000,
        crash in 0.0f64..0.25,
        stall in 0.0f64..0.2,
        straggle in 0.0f64..0.2,
        hedge in any::<bool>(),
        degrade in any::<bool>(),
    ) {
        let requests = workload(seed, n, gap);
        let cfg = faulted_cfg(fault_seed, crash, stall, straggle, hedge, degrade);
        let out = run_runtime(&cfg, &requests, &flat_service, 900);
        let again = run_runtime(&cfg, &requests, &flat_service, 900);
        prop_assert_eq!(&out, &again);
        prop_assert_eq!(out.event_digest, again.event_digest);
        assert_no_request_lost(&out, &requests);
        assert_retry_bounded(&out, cfg.resilience.retry.max_attempts);
        assert_hedges_single_count(&out);
        // A crash with a surviving hedged copy neither requeues nor
        // exhausts — the race partner is still running — so the exact
        // crash identity holds only hedge-free.
        prop_assert!(out.faults.requeues + out.faults.exhausted_batches <= out.faults.crashes);
        if !hedge {
            prop_assert_eq!(out.faults.hedges, 0);
            prop_assert_eq!(out.faults.requeues + out.faults.exhausted_batches,
                out.faults.crashes, "every crash either requeues its batch or exhausts it");
        }
        if !degrade {
            prop_assert_eq!(out.faults.degrade_shifts, 0);
        }
    }
}

#[test]
fn certain_crashes_exhaust_every_batch_without_losing_requests() {
    // crash_per_dispatch = 1.0: every dispatch dies, every batch burns
    // its whole retry budget, and every admitted request must come back
    // as RetryExhausted — the runtime terminates with its books intact.
    let requests = workload(5, 40, 800);
    let cfg = faulted_cfg(9, 1.0, 0.0, 0.0, false, false);
    let out = run_runtime(&cfg, &requests, &flat_service, 900);
    assert_no_request_lost(&out, &requests);
    assert!(out.served.is_empty(), "no dispatch can ever complete");
    assert!(out.faults.exhausted_batches > 0);
    assert!(
        out.retry_exhausted_count() > 0,
        "exhausted batches must refuse their members"
    );
    assert_eq!(
        out.faults.crashes,
        out.faults.requeues + out.faults.exhausted_batches
    );
    // Deterministic even at the pathological edge.
    assert_eq!(out, run_runtime(&cfg, &requests, &flat_service, 900));
}

#[test]
fn moderate_crash_rate_keeps_goodput_with_retries() {
    // The tentpole's serving claim at test scale: with 1% crashes and
    // the standard retry budget, ≥90% of offered requests are served.
    let requests = workload(11, 300, 900);
    let cfg = faulted_cfg(3, 0.01, 0.0, 0.0, false, false);
    let out = run_runtime(&cfg, &requests, &flat_service, 900);
    assert_no_request_lost(&out, &requests);
    assert!(
        out.served_fraction() >= 0.90,
        "goodput {} below 0.90 at 1% crash rate",
        out.served_fraction()
    );
}

#[test]
fn stragglers_trigger_hedges_and_first_completion_wins() {
    // A high straggler rate with hedging armed must actually dispatch
    // duplicates, let some win, and still count every batch once.
    let requests = workload(21, 200, 600);
    let cfg = faulted_cfg(7, 0.0, 0.0, 0.5, true, false);
    let out = run_runtime(&cfg, &requests, &flat_service, 900);
    assert_no_request_lost(&out, &requests);
    assert!(out.faults.stragglers > 0, "50% straggler rate must fire");
    assert!(out.faults.hedges > 0, "stragglers must trigger hedges");
    assert_hedges_single_count(&out);
    assert_eq!(out, run_runtime(&cfg, &requests, &flat_service, 900));
}

#[test]
fn sustained_overload_degrades_and_recovers() {
    // A long saturating burst pushes occupancy over the watermark: the
    // controller must shed quality (level > 0), mark the degraded
    // servings, and step back down as the queue drains.
    let requests = workload(31, 400, 60);
    let cfg = faulted_cfg(1, 0.0, 0.0, 0.0, false, true);
    let out = run_runtime(&cfg, &requests, &flat_service, 900);
    assert_no_request_lost(&out, &requests);
    assert!(out.faults.degrade_shifts > 0, "watermark must trip");
    let degraded: usize = out.class_stats.iter().map(|c| c.degraded).sum();
    assert!(degraded > 0, "some servings must run degraded");
    let mut level = 0u32;
    let mut saw_up = false;
    let mut saw_down = false;
    for e in &out.events {
        if let LoggedEvent::Degraded { level: l, .. } = *e {
            assert!(l.abs_diff(level) == 1, "level moves one step at a time");
            if l > level {
                saw_up = true;
            } else {
                saw_down = true;
            }
            level = l;
        }
    }
    assert!(saw_up && saw_down, "level must rise under load and recover");
    assert_eq!(level, 0, "quality restored once the burst drains");
}

#[test]
fn rejection_reasons_partition_the_rejected_set() {
    let requests = workload(41, 200, 100);
    let mut cfg = faulted_cfg(13, 0.2, 0.0, 0.0, false, false);
    cfg.queue_capacity = Some(12);
    let out = run_runtime(&cfg, &requests, &flat_service, 900);
    assert_no_request_lost(&out, &requests);
    let by_kind = |k: Rejection| out.rejections.iter().filter(|r| r.rejection == k).count();
    assert_eq!(
        out.rejections.len(),
        by_kind(Rejection::QueueFull)
            + by_kind(Rejection::ShedLowPriority)
            + by_kind(Rejection::DeadlineInfeasible)
            + by_kind(Rejection::RetryExhausted)
    );
    assert_eq!(
        by_kind(Rejection::RetryExhausted),
        out.retry_exhausted_count()
    );
}
