//! Integration tests pinning the reproduced paper numbers: Table I,
//! Table II, Table III, Fig. 5, Fig. 18 exactly or within model
//! tolerance, and the qualitative shapes of Figs. 8, 9, 16, 17.

use capsacc::capsnet::CapsNetConfig;
use capsacc::core::{timing, AcceleratorConfig};
use capsacc::gpu::GpuModel;
use capsacc::power::PowerModel;

#[test]
fn table1_exact() {
    let rows = CapsNetConfig::mnist().table1();
    let expect = [
        ("Conv1", 784, 20_992, 102_400),
        ("PrimaryCaps", 102_400, 5_308_672, 9216), // outputs: documented erratum
        ("ClassCaps", 9216, 1_474_560, 160),
        ("Coupling Coeff", 160, 11_520, 160),
    ];
    for (row, (name, inputs, params, outputs)) in rows.iter().zip(expect) {
        assert_eq!(row.name, name);
        assert_eq!(row.inputs, inputs, "{name} inputs");
        assert_eq!(row.parameters, params, "{name} parameters");
        assert_eq!(row.outputs, outputs, "{name} outputs");
    }
}

#[test]
fn fig5_distribution() {
    let cfg = CapsNetConfig::mnist();
    let total = (cfg.total_parameters() + cfg.coupling_coefficient_count()) as f64;
    assert!(cfg.conv1_parameters() as f64 / total < 0.01);
    assert!((cfg.primary_caps_parameters() as f64 / total - 0.78).abs() < 0.01);
    assert!((cfg.class_caps_parameters() as f64 / total - 0.22).abs() < 0.01);
    assert!(cfg.coupling_coefficient_count() as f64 / total < 0.01);
}

#[test]
fn table2_summary() {
    let t2 = PowerModel::cmos_32nm().table2(&AcceleratorConfig::paper());
    assert_eq!(t2.tech_node_nm, 32);
    assert!((t2.area_mm2 - 2.90).abs() < 0.02);
    assert!((t2.power_mw - 202.0).abs() < 2.0);
    assert_eq!(t2.clock_mhz, 250);
    assert_eq!(t2.bit_width, 8);
    assert_eq!(t2.onchip_memory_mb, 8.0);
}

#[test]
fn table3_components_within_half_percent() {
    let report = PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper());
    for (name, area, power) in [
        ("Accumulator", 311_961.0, 22.80),
        ("Activation", 143_045.0, 5.94),
        ("Data Buffer", 1_332_349.0, 95.96),
        ("Routing Buffer", 316_226.0, 22.78),
        ("Weight Buffer", 115_643.0, 8.34),
        ("Systolic Array", 680_525.0, 46.09),
        ("Other", 4_330.0, 0.13),
    ] {
        let c = report.component(name).expect(name);
        assert!((c.area_um2 - area).abs() / area < 0.005, "{name} area");
        assert!((c.power_mw - power).abs() / power < 0.005, "{name} power");
    }
}

#[test]
fn fig8_gpu_shape() {
    let t = GpuModel::gtx1070().layer_times_us(&CapsNetConfig::mnist());
    // ClassCaps dominates by roughly an order of magnitude.
    assert!(t.class_caps > 5.0 * t.conv1);
    assert!(t.class_caps > 5.0 * t.primary_caps);
    assert!(t.total() / 1000.0 > 10.0 && t.total() / 1000.0 < 20.0);
}

#[test]
fn fig9_squash_dominates_gpu_routing() {
    let steps = GpuModel::gtx1070().routing_steps_us(&CapsNetConfig::mnist());
    let squash: f64 = steps
        .iter()
        .filter(|s| s.label.starts_with("Squash"))
        .map(|s| s.time_us)
        .sum();
    let total: f64 = steps.iter().map(|s| s.time_us).sum();
    assert!(squash / total > 0.5);
}

#[test]
fn fig16_layer_comparison_shapes() {
    let net = CapsNetConfig::mnist();
    let acc_cfg = AcceleratorConfig::paper();
    let acc = timing::full_inference(&acc_cfg, &net);
    let gpu = GpuModel::gtx1070().layer_times_us(&net);

    // Conv1: CapsAcc wins big (paper: 6×).
    let conv1_ratio = gpu.conv1 / acc_cfg.cycles_to_us(acc.conv1.cycles);
    assert!(
        (3.0..12.0).contains(&conv1_ratio),
        "Conv1 ratio {conv1_ratio}"
    );

    // PrimaryCaps: the GPU wins (paper: CapsAcc 46% slower).
    let pc_acc = acc_cfg.cycles_to_us(acc.primary_caps.cycles);
    assert!(
        pc_acc > gpu.primary_caps,
        "PrimaryCaps should favour the GPU"
    );
    assert!(pc_acc < 2.5 * gpu.primary_caps, "but not by more than ~2×");

    // ClassCaps: CapsAcc wins by an order of magnitude (paper: 12×).
    let cc_ratio = gpu.class_caps / acc_cfg.cycles_to_us(acc.class_caps_cycles());
    assert!(
        (6.0..20.0).contains(&cc_ratio),
        "ClassCaps ratio {cc_ratio}"
    );

    // Overall: CapsAcc clearly faster (paper: 6×; our PrimaryCaps
    // weight-stream bound keeps us nearer 3×, recorded in
    // EXPERIMENTS.md).
    let total_ratio = gpu.total() / acc.total_time_us(&acc_cfg);
    assert!(
        (2.0..10.0).contains(&total_ratio),
        "total ratio {total_ratio}"
    );
}

#[test]
fn fig17_step_comparison_shapes() {
    let net = CapsNetConfig::mnist();
    let acc_cfg = AcceleratorConfig::paper();
    let acc_steps = timing::routing_steps(&net, &acc_cfg);
    let gpu_steps = GpuModel::gtx1070().routing_steps_us(&net);
    let find = |label: &str| -> (f64, f64) {
        let a = acc_steps
            .iter()
            .find(|s| s.step.to_string() == label)
            .expect("acc step")
            .time_us(&acc_cfg);
        let g = gpu_steps
            .iter()
            .find(|s| s.label == label)
            .expect("gpu step")
            .time_us;
        (a, g)
    };

    // Load: close to parity (paper: 9% faster).
    let (a, g) = find("Load");
    assert!((0.7..1.3).contains(&(g / a)), "Load ratio {}", g / a);
    // FC: slightly slower on CapsAcc (paper: 14% slower).
    let (a, g) = find("FC");
    assert!(a > g && a < 1.6 * g, "FC acc {a} gpu {g}");
    // Softmax2 and Sum2: CapsAcc a few times faster (paper: 3×).
    let (a, g) = find("Softmax2");
    assert!((2.0..12.0).contains(&(g / a)));
    let (a, g) = find("Sum2");
    assert!((1.5..6.0).contains(&(g / a)));
    // Squash: enormous speedup (paper: 172×; ours is larger — the squash
    // unit is fully parallel per column).
    let (a, g) = find("Squash1");
    assert!(g / a > 100.0, "Squash ratio {}", g / a);
    // Update: ~6× (paper: 6×).
    let (a, g) = find("Update1");
    assert!((3.0..12.0).contains(&(g / a)), "Update ratio {}", g / a);
}

#[test]
fn fig18_breakdown_shape() {
    let report = PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper());
    let area: std::collections::HashMap<_, _> = report.area_breakdown().into_iter().collect();
    assert!((area["Data Buffer"] - 0.46).abs() < 0.02);
    assert!((area["Systolic Array"] - 0.23).abs() < 0.02);
}
