//! Cross-crate integration tests: the cycle-accurate simulator must be
//! bit-exact against the quantized reference model — the reproduction of
//! the paper's functional-validation flow (Fig. 15) — across seeds,
//! routing variants, array sizes and network configurations.

use capsacc::capsnet::{
    infer_q8_traced, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::core::{Accelerator, AcceleratorConfig};
use capsacc::mnist::SyntheticMnist;
use capsacc::tensor::Tensor;

mod common;
use common::image_for;

fn variant_of(cfg: &AcceleratorConfig) -> RoutingVariant {
    if cfg.dataflow.skip_first_softmax {
        RoutingVariant::SkipFirstSoftmax
    } else {
        RoutingVariant::Original
    }
}

fn assert_bit_exact(net: &CapsNetConfig, cfg: AcceleratorConfig, seed: u64) {
    let qparams = CapsNetParams::generate(net, seed).quantize(cfg.numeric);
    let pipeline = QuantPipeline::new(cfg.numeric);
    let image = image_for(net, seed as usize);
    let reference = infer_q8_traced(net, &qparams, &pipeline, &image, variant_of(&cfg));
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(net, &qparams, &image);
    assert_eq!(
        run.accumulator_saturations, 0,
        "saturation voids bit-exactness"
    );
    assert_eq!(run.trace, reference, "seed {seed}");
}

// ----------------------------------------------------------- golden trace
// A pinned layer-by-layer digest of one canonical inference. The
// bit-exactness tests above prove engine ≡ reference, but both models
// could drift *together* (a LUT edit, a rounding change) without any of
// them noticing. The digest (shared with `tests/memory_equivalence.rs`
// via `tests/common/mod.rs`, where the regeneration instructions live)
// fails loudly on any numeric change.

use common::{trace_digests, GOLDEN_DIGESTS};

/// The canonical inference: `CapsNetConfig::tiny`, parameter seed 0, the
/// seed-0 deterministic image, on the 4×4 test array.
fn golden_trace() -> capsacc::capsnet::QuantTrace {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let image = image_for(&net, 0);
    let mut acc = Accelerator::new(cfg);
    acc.run_inference(&net, &qparams, &image).trace
}

#[test]
fn golden_trace_digests_are_stable() {
    let got = trace_digests(&golden_trace());
    for ((name, want), (got_name, got_hash)) in GOLDEN_DIGESTS.iter().zip(&got) {
        assert_eq!(name, got_name, "digest order changed");
        assert_eq!(
            want, got_hash,
            "silent numeric drift in stage `{name}` — if intentional, \
             regenerate GOLDEN_DIGESTS (see the comment above it)"
        );
    }
    assert_eq!(GOLDEN_DIGESTS.len(), got.len());
}

#[test]
fn golden_batched_trace_matches_same_digests() {
    // The batched path must reproduce the identical pinned trace.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let images = [image_for(&net, 0), image_for(&net, 1)];
    let mut sched = capsacc::core::BatchScheduler::new(cfg);
    let run = sched.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(
        trace_digests(&run.traces[0]),
        trace_digests(&golden_trace())
    );
}

#[test]
fn golden_functional_backend_matches_same_digests() {
    // Both execution backends must reproduce the identical pinned trace
    // — sequential and batched — so the fast path can never drift away
    // from the RTL reference without this failing.
    let net = CapsNetConfig::tiny();
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.backend = capsacc::core::EngineBackend::Functional;
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &image_for(&net, 0));
    let got = trace_digests(&run.trace);
    for ((name, want), (_, got_hash)) in GOLDEN_DIGESTS.iter().zip(&got) {
        assert_eq!(
            want, got_hash,
            "functional backend diverged from the pinned digest at `{name}`"
        );
    }
    let images = [image_for(&net, 0), image_for(&net, 1)];
    let mut sched = capsacc::core::BatchScheduler::new(cfg);
    let run = sched.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(trace_digests(&run.traces[0]), got);
}

#[test]
#[ignore = "regeneration helper: prints the digest table for GOLDEN_DIGESTS"]
fn print_golden_digests() {
    for (name, hash) in trace_digests(&golden_trace()) {
        println!("    (\"{name}\", 0x{hash:016x}),");
    }
}

#[test]
fn tiny_network_across_seeds() {
    for seed in [1u64, 2, 3, 42, 1234] {
        assert_bit_exact(&CapsNetConfig::tiny(), AcceleratorConfig::test_4x4(), seed);
    }
}

#[test]
fn both_routing_variants() {
    let mut cfg = AcceleratorConfig::test_4x4();
    assert_bit_exact(&CapsNetConfig::tiny(), cfg, 7);
    cfg.dataflow.skip_first_softmax = false;
    assert_bit_exact(&CapsNetConfig::tiny(), cfg, 7);
}

#[test]
fn array_size_does_not_change_results() {
    // The tiling is a pure re-association of the same 25-bit arithmetic:
    // any array size must produce identical outputs (absent saturation).
    let net = CapsNetConfig::tiny();
    let qparams = CapsNetParams::generate(&net, 5).quantize(AcceleratorConfig::paper().numeric);
    let image = image_for(&net, 5);

    let mut runs = Vec::new();
    for size in [2usize, 4, 8, 16] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        let mut acc = Accelerator::new(cfg);
        runs.push(acc.run_inference(&net, &qparams, &image));
    }
    for pair in runs.windows(2) {
        assert_eq!(pair[0].trace, pair[1].trace);
    }
    // But cycle counts differ: bigger arrays finish sooner overall.
    let cycles: Vec<u64> = runs
        .iter()
        .map(|r| r.layers.iter().map(|l| l.cycles()).sum())
        .collect();
    assert!(
        cycles[0] > cycles[3],
        "2x2 ({}) should need more cycles than 16x16 ({})",
        cycles[0],
        cycles[3]
    );
}

#[test]
fn synthetic_digit_through_simulator() {
    // End-to-end: a procedurally rendered digit, centre-cropped to the
    // tiny network, through both models.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 8).quantize(cfg.numeric);
    let pipeline = QuantPipeline::new(cfg.numeric);
    let sample = SyntheticMnist::new(3).sample(4);
    let off = (28 - net.input_side) / 2;
    let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        sample.image[[0, i[1] + off, i[2] + off]]
    });

    let reference = infer_q8_traced(
        &net,
        &qparams,
        &pipeline,
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &image);
    assert_eq!(run.trace, reference);
    assert!(run.trace.output.predicted < net.num_classes);
}

#[test]
fn dataflow_ablations_preserve_functionality() {
    // Every dataflow switch changes timing/traffic only — never results.
    let net = CapsNetConfig::tiny();
    let base = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 21).quantize(base.numeric);
    let image = image_for(&net, 21);

    let mut baseline = Accelerator::new(base);
    let want = baseline.run_inference(&net, &qparams, &image).trace;

    for flip in 0..3 {
        let mut cfg = base;
        match flip {
            0 => cfg.dataflow.weight_reuse = false,
            1 => cfg.dataflow.pipelined_tiles = false,
            _ => cfg.dataflow.routing_feedback = false,
        }
        let mut acc = Accelerator::new(cfg);
        let got = acc.run_inference(&net, &qparams, &image).trace;
        assert_eq!(got, want, "ablation {flip} changed functional results");
    }
}
