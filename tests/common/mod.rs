//! Shared golden-trace digest harness for the integration tests.
//!
//! Both `bit_exactness.rs` (the canonical pinning) and
//! `memory_equivalence.rs` (proving the memory hierarchy cannot drift
//! the numerics) compare against the same pinned digests — sharing the
//! hasher and the constant here removes the risk of the two suites
//! silently diverging onto different traces.
//!
//! Regeneration (after an *intentional* numeric change): run
//!
//!   cargo test --test bit_exactness print_golden_digests -- --ignored --nocapture
//!
//! and paste the printed rows over `GOLDEN_DIGESTS` below, noting the
//! change in the commit message.

// Each integration-test crate compiles this module independently and
// uses only a subset of it, so per-crate dead-code analysis is noise.
#![allow(dead_code)]

use capsacc::capsnet::{CapsNetConfig, QuantTrace};
use capsacc::tensor::Tensor;

/// The canonical deterministic test image for `seed` — the one the
/// pinned golden digests below were generated from (seed 0). Kept here
/// so every suite (and the `exp_memdse` smoke test, which carries its
/// own copy with a pointer back to this definition) exercises the same
/// pixels.
pub fn image_for(net: &CapsNetConfig, seed: usize) -> Tensor<f32> {
    Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * (seed + 2) + i[2] * 7 + seed) % 11) as f32 / 11.0
    })
}

/// FNV-1a over a byte stream — stable, dependency-free fingerprint.
pub struct Fnv(u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn bytes(&mut self, bs: impl IntoIterator<Item = u8>) {
        for b in bs {
            self.byte(b);
        }
    }
    fn tensor(&mut self, t: &Tensor<i8>) {
        self.bytes(t.shape().iter().flat_map(|d| (*d as u64).to_le_bytes()));
        self.bytes(t.data().iter().map(|&v| v as u8));
    }
    fn done(self) -> u64 {
        self.0
    }
}

/// Layer-by-layer digests of a full trace, in execution order.
pub fn trace_digests(trace: &QuantTrace) -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();
    for (name, t) in [
        ("input_q", &trace.input_q),
        ("conv1_out", &trace.conv1_out),
        ("pc_out", &trace.pc_out),
        ("capsules", &trace.capsules),
        ("u_hat", &trace.u_hat),
    ] {
        let mut h = Fnv::new();
        h.tensor(t);
        out.push((name, h.done()));
    }
    let mut h = Fnv::new();
    for it in &trace.iterations {
        h.tensor(&it.couplings);
        h.tensor(&it.s);
        h.tensor(&it.v);
        h.bytes(it.norms.iter().copied());
        if let Some(l) = &it.logits_after_update {
            h.tensor(l);
        }
    }
    out.push(("iterations", h.done()));
    let mut h = Fnv::new();
    h.bytes(trace.output.class_norms.iter().copied());
    h.bytes((trace.output.predicted as u64).to_le_bytes());
    h.tensor(&trace.output.class_caps);
    h.tensor(&trace.output.couplings);
    h.bytes(trace.output.stats.macs.to_le_bytes());
    h.bytes(trace.output.stats.saturations.to_le_bytes());
    out.push(("output", h.done()));
    out
}

/// Pinned digests of the canonical inference (`CapsNetConfig::tiny`,
/// parameter seed 0, the seed-0 deterministic image, the 4×4 test
/// array) — regenerate per the module comment above.
pub const GOLDEN_DIGESTS: [(&str, u64); 7] = [
    ("input_q", 0x86cf0b23838ba95c),
    ("conv1_out", 0x63b7f86f2ed0adcb),
    ("pc_out", 0x1a9615bbf75f16da),
    ("capsules", 0xe7ed0c233a1b0e94),
    ("u_hat", 0x95df96dbdc45f7b9),
    ("iterations", 0x5a82eb0215b17c12),
    ("output", 0x0dab99a3354d0fd4),
];
