//! Determinism guarantees: every random-looking artifact in the system
//! is a pure function of its seed — the property the reproducible
//! validation flow rests on.

use capsacc::capsnet::{infer_q8, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant};
use capsacc::core::{Accelerator, AcceleratorConfig};
use capsacc::fixed::NumericConfig;
use capsacc::mnist::{SyntheticMnist, WeightGen};
use capsacc::tensor::Tensor;

#[test]
fn dataset_is_a_pure_function_of_seed_and_index() {
    for seed in [0u64, 1, 999] {
        let a = SyntheticMnist::new(seed);
        let b = SyntheticMnist::new(seed);
        for idx in [0u64, 7, 123] {
            assert_eq!(a.sample(idx), b.sample(idx));
        }
    }
    assert_ne!(
        SyntheticMnist::new(1).sample(0).image,
        SyntheticMnist::new(2).sample(0).image
    );
}

#[test]
fn weight_generation_is_deterministic() {
    let a = WeightGen::new(5).dense(8, 8);
    let b = WeightGen::new(5).dense(8, 8);
    assert_eq!(a, b);
    let params_a = CapsNetParams::generate(&CapsNetConfig::tiny(), 10);
    let params_b = CapsNetParams::generate(&CapsNetConfig::tiny(), 10);
    assert_eq!(params_a, params_b);
}

#[test]
fn quantized_inference_is_deterministic() {
    let net = CapsNetConfig::tiny();
    let ncfg = NumericConfig::default();
    let q = CapsNetParams::generate(&net, 3).quantize(ncfg);
    let pipe = QuantPipeline::new(ncfg);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] ^ i[2]) as f32 / 16.0);
    let a = infer_q8(&net, &q, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
    let b = infer_q8(&net, &q, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
    assert_eq!(a, b);
}

#[test]
fn engine_runs_are_deterministic_including_cycles_and_traffic() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let q = CapsNetParams::generate(&net, 4).quantize(cfg.numeric);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] * 2 + i[2]) as f32 / 36.0);
    let mut acc_a = Accelerator::new(cfg);
    let mut acc_b = Accelerator::new(cfg);
    let a = acc_a.run_inference(&net, &q, &image);
    let b = acc_b.run_inference(&net, &q, &image);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.layers, b.layers);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.traffic, b.traffic);
}

#[test]
fn lut_tables_are_reproducible() {
    let ncfg = NumericConfig::default();
    let a = QuantPipeline::new(ncfg);
    let b = QuantPipeline::new(ncfg);
    for v in [-128i8, -64, -1, 0, 1, 63, 127] {
        assert_eq!(a.norm8(&[v, v]), b.norm8(&[v, v]));
        assert_eq!(a.squash_vec(&[v; 8]), b.squash_vec(&[v; 8]));
    }
    assert_eq!(a.softmax(&[1, 2, 3]), b.softmax(&[1, 2, 3]));
}
