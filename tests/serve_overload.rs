//! Overload invariants of the online serving runtime.
//!
//! The runtime's policy sweep (`exp_serve`) is only trustworthy if the
//! machinery it sweeps is machine-checked, so this suite proptests the
//! invariants over random trace regimes × runtime configurations:
//!
//! - **conservation** — every offered request is served exactly once
//!   XOR rejected exactly once; per-class ledgers add up;
//! - **work-conservation** — no available worker sits idle while a
//!   closed batch waits for dispatch (reconstructed from per-worker
//!   busy intervals and the autoscaler's availability windows);
//! - **shed monotonicity** — raising the queue capacity on the same
//!   trace never increases the shed count;
//! - **priority correctness** — replayed from the event log: a shed
//!   request never outranks a surviving forming-batch member at the
//!   decision point that shed it;
//! - **determinism** — two runs produce byte-identical event logs,
//!   digests and outcomes.

use capsacc::serve::{
    run_runtime, workload_trace, ArrivalRegime, AutoscalerConfig, BatcherConfig, ClassConfig,
    LoggedEvent, Rejection, Request, ResilienceConfig, RuntimeConfig, RuntimeOutcome, ScalingEvent,
    WorkloadConfig,
};
use proptest::prelude::*;
use std::cmp::Reverse;

/// The shed-victim ordering the runtime promises: lowest class first,
/// then latest arrival, then highest index. Smaller key = shed first.
fn shed_key(requests: &[Request], idx: usize) -> (usize, Reverse<u64>, Reverse<usize>) {
    let r = requests[idx];
    (r.class, Reverse(r.arrival), Reverse(idx))
}

/// Conservation: served and rejected partition the offered requests,
/// and the per-class ledgers agree with the global ones.
fn assert_conservation(requests: &[Request], out: &RuntimeOutcome) {
    assert_eq!(out.total_requests, requests.len());
    let mut seen = vec![0u32; requests.len()];
    for &r in &out.served {
        seen[r] += 1;
    }
    for r in &out.rejections {
        seen[r.request] += 1;
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "a request was lost or duplicated"
    );
    assert_eq!(out.served.len() + out.rejections.len(), requests.len());
    assert_eq!(out.sim.requests.len(), out.served.len());
    for c in &out.class_stats {
        assert_eq!(c.offered, c.served + c.shed + c.infeasible);
    }
    let offered: usize = out.class_stats.iter().map(|c| c.offered).sum();
    assert_eq!(offered, requests.len());
}

/// Work-conservation: while any closed batch waited for a worker, no
/// available worker was idle. Availability windows come from the
/// scaling record (spawns are unavailable until `ready_at`, retired
/// workers after their retirement cycle); busy intervals from the
/// batch stats.
fn assert_work_conserving(out: &RuntimeOutcome) {
    let workers = out.sim.worker_busy_cycles.len();
    let mut avail_from = vec![0u64; workers];
    let mut avail_until = vec![u64::MAX; workers];
    for s in &out.scaling {
        match *s {
            ScalingEvent::Up {
                worker, ready_at, ..
            } => avail_from[worker] = ready_at,
            ScalingEvent::Down { cycle, worker } => avail_until[worker] = cycle,
        }
    }
    let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); workers];
    for b in &out.sim.batches {
        busy[b.worker].push((b.start_cycle, b.end_cycle));
    }
    for v in &mut busy {
        v.sort_unstable();
    }
    for b in &out.sim.batches {
        if b.start_cycle <= b.close_cycle {
            continue;
        }
        // The batch waited over [close, start): every worker must have
        // been busy or unavailable for all of it.
        let (ws, we) = (b.close_cycle, b.start_cycle);
        for w in 0..workers {
            let lo = avail_from[w].max(ws);
            let hi = avail_until[w].min(we);
            if lo >= hi {
                continue;
            }
            let mut t = lo;
            for &(s, e) in &busy[w] {
                if e <= t {
                    continue;
                }
                if s > t {
                    break;
                }
                t = e;
                if t >= hi {
                    break;
                }
            }
            assert!(
                t >= hi,
                "worker {w} idle from cycle {t} while a closed batch waited in [{ws}, {we})"
            );
        }
    }
}

/// Priority correctness, replayed from the event log: at every shed
/// decision the victim's shed key is minimal over the forming batch it
/// was judged against.
fn assert_priority_correct(requests: &[Request], out: &RuntimeOutcome) {
    let mut forming: Vec<usize> = Vec::new();
    // A ShedLowPriority eviction is immediately followed by the
    // admission that displaced it; the newcomer must outrank the
    // victim.
    let mut pending_eviction: Option<usize> = None;
    for e in &out.events {
        match *e {
            LoggedEvent::Admitted { request, .. } => {
                if let Some(victim) = pending_eviction.take() {
                    assert!(
                        shed_key(requests, victim) < shed_key(requests, request),
                        "eviction in favor of a request that does not outrank the victim"
                    );
                }
                forming.push(request);
            }
            LoggedEvent::Rejected {
                request, rejection, ..
            } => match rejection {
                Rejection::QueueFull => {
                    for &m in &forming {
                        assert!(
                            shed_key(requests, request) < shed_key(requests, m),
                            "request {request} refused while outranking forming member {m}"
                        );
                    }
                }
                Rejection::ShedLowPriority => {
                    for &m in &forming {
                        assert!(
                            shed_key(requests, request) <= shed_key(requests, m),
                            "evicted request {request} outranked by surviving member {m}"
                        );
                    }
                    forming.retain(|&m| m != request);
                    pending_eviction = Some(request);
                }
                // Neither fires in these fault-free runs.
                Rejection::DeadlineInfeasible | Rejection::RetryExhausted => {}
            },
            LoggedEvent::BatchClosed { len, .. } => {
                assert_eq!(forming.len(), len, "event log diverged from membership");
                forming.clear();
            }
            _ => {}
        }
    }
    assert!(forming.is_empty(), "forming batch left open in the log");
}

fn overload_workload(seed: u64, requests: usize, regime_sel: u8, gap: u64) -> Vec<Request> {
    let regime = match regime_sel % 3 {
        0 => ArrivalRegime::Bursty {
            mean_gap_cycles: gap as f64,
            mean_burst: 3.0,
        },
        1 => ArrivalRegime::Diurnal {
            period_cycles: 40_000,
            offpeak_gap_cycles: (4 * gap) as f64,
            peak_gap_cycles: gap as f64,
        },
        _ => ArrivalRegime::Spike {
            base_gap_cycles: (4 * gap) as f64,
            spike_start_cycle: 10_000,
            spike_cycles: 20_000,
            spike_gap_cycles: (gap / 4).max(1) as f64,
        },
    };
    workload_trace(&WorkloadConfig {
        seed,
        requests,
        regime,
        classes: vec![
            ClassConfig {
                weight: 3,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 2,
                slo_cycles: Some(60_000),
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(15_000),
            },
        ],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation, work-conservation, priority correctness and
    /// rerun determinism over random regimes × runtime configs,
    /// autoscaler included.
    #[test]
    fn overload_invariants_hold(
        seed in 0u64..500,
        requests in 1usize..250,
        regime_sel in 0u8..3,
        gap in 20u64..2_000,
        max_batch in 1usize..6,
        max_wait in 0u64..3_000,
        cap in 1usize..12,
        workers in 1usize..4,
        base in 500u64..6_000,
        autoscale in 0u8..2,
        deadline_aware in 0u8..2,
    ) {
        let reqs = overload_workload(seed, requests, regime_sel, gap);
        let cfg = RuntimeConfig {
            workers,
            batcher: BatcherConfig { max_batch, max_wait_cycles: max_wait },
            queue_capacity: Some(cap),
            deadline_aware: deadline_aware == 1,
            autoscaler: (autoscale == 1).then_some(AutoscalerConfig {
                min_workers: workers,
                max_workers: workers + 2,
                scale_up_queue_per_worker: 2,
                scale_down_idle_cycles: 5_000,
                eval_period_cycles: 1_000,
            }),
            record_events: true,
            resilience: ResilienceConfig::none(),
        };
        let service = move |n: usize| base + 200 * n as u64;
        let out = run_runtime(&cfg, &reqs, &service, 750);
        assert_conservation(&reqs, &out);
        assert_work_conserving(&out);
        assert_priority_correct(&reqs, &out);
        // Byte-identical rerun: full event log, digest and outcome.
        let again = run_runtime(&cfg, &reqs, &service, 750);
        prop_assert_eq!(&out.events, &again.events);
        prop_assert_eq!(out.event_digest, again.event_digest);
        prop_assert_eq!(&out, &again);
    }

    /// Shed monotonicity: on the same trace and policy, a larger
    /// admission queue never sheds more (autoscaler off, so the
    /// comparison isolates admission control from capacity changes).
    #[test]
    fn raising_queue_capacity_never_sheds_more(
        seed in 0u64..500,
        requests in 1usize..200,
        regime_sel in 0u8..3,
        gap in 20u64..1_000,
        max_batch in 1usize..6,
        max_wait in 0u64..2_000,
        cap in 1usize..10,
        extra in 1usize..8,
        workers in 1usize..4,
        base in 500u64..6_000,
    ) {
        let reqs = overload_workload(seed, requests, regime_sel, gap);
        let service = move |n: usize| base + 200 * n as u64;
        let at = |capacity: Option<usize>| {
            let cfg = RuntimeConfig {
                workers,
                batcher: BatcherConfig { max_batch, max_wait_cycles: max_wait },
                queue_capacity: capacity,
                deadline_aware: false,
                autoscaler: None,
                record_events: false,
                resilience: ResilienceConfig::none(),
            };
            run_runtime(&cfg, &reqs, &service, 0).shed_count()
        };
        let tight = at(Some(cap));
        let roomy = at(Some(cap + extra));
        prop_assert!(
            roomy <= tight,
            "raising capacity {} -> {} increased sheds {} -> {}",
            cap, cap + extra, tight, roomy
        );
        // Unbounded sheds nothing at all.
        prop_assert_eq!(at(None), 0);
    }
}

#[test]
fn spike_regime_actually_sheds_and_recovers() {
    // A deliberately undersized pool against a flash crowd: the spike
    // must force sheds (the queue bound is doing its job) and the
    // post-spike tail must be served cleanly (the system recovered
    // instead of collapsing).
    let reqs = overload_workload(7, 3_000, 2, 400);
    let cfg = RuntimeConfig {
        workers: 1,
        batcher: BatcherConfig {
            max_batch: 4,
            max_wait_cycles: 2_000,
        },
        queue_capacity: Some(8),
        deadline_aware: false,
        autoscaler: None,
        record_events: false,
        resilience: ResilienceConfig::none(),
    };
    let service = |n: usize| 1_500 + 300 * n as u64;
    let out = run_runtime(&cfg, &reqs, &service, 0);
    assert!(out.shed_count() > 0, "spike failed to overload the pool");
    assert!(
        out.served.len() > out.shed_count(),
        "shedding must be the exception, not the rule"
    );
    // Recovery: the last stretch of offered traffic is served without
    // rejections once the spike has drained.
    let tail_start = reqs.len() - reqs.len() / 10;
    let tail_shed = out
        .rejections
        .iter()
        .filter(|r| r.request >= tail_start)
        .count();
    assert_eq!(
        tail_shed, 0,
        "post-spike tail still shedding: the system never recovered"
    );
}
