//! Differential tests for the memory hierarchy: under `IdealMemory` the
//! engine must reproduce the pre-memory engine bit-for-bit (traces *and*
//! cycle counts — pinned to the same golden digests as
//! `tests/bit_exactness.rs`), and under a finite memory configuration
//! the engine's stall/traffic accounting must agree **exactly** with the
//! closed-form replay (`timing::full_inference_batch_mem`,
//! `timing::matmul_mem_stalls`) while never changing functional results.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{
    timing, Accelerator, AcceleratorConfig, ActivationKind, BatchScheduler, MemoryConfig,
};
use capsacc::tensor::Tensor;
use proptest::prelude::*;

fn finite_cfg(base: AcceleratorConfig) -> AcceleratorConfig {
    let mut cfg = base;
    cfg.memory = MemoryConfig::paper();
    cfg
}

// The canonical pinned digests, shared with `tests/bit_exactness.rs`
// through `tests/common/mod.rs`: pinning them here too proves the
// memory subsystem cannot drift the numerics — the digests must hold
// under IdealMemory *and* under finite memory.

mod common;
use common::{image_for, trace_digests, GOLDEN_DIGESTS};

#[test]
fn golden_digests_hold_under_ideal_and_finite_memory() {
    let net = CapsNetConfig::tiny();
    let qparams = CapsNetParams::generate(&net, 0).quantize(AcceleratorConfig::test_4x4().numeric);
    let image = image_for(&net, 0);
    for cfg in [
        AcceleratorConfig::test_4x4(),
        finite_cfg(AcceleratorConfig::test_4x4()),
    ] {
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);
        for ((name, want), (got_name, got)) in GOLDEN_DIGESTS.iter().zip(trace_digests(&run.trace))
        {
            assert_eq!(*name, got_name);
            assert_eq!(
                *want, got,
                "memory model drifted stage `{name}` (mode {:?})",
                cfg.memory.mode
            );
        }
    }
}

#[test]
fn ideal_memory_reproduces_pre_memory_cycle_counts() {
    // Under IdealMemory every stall counter is zero, so layer cycles are
    // exactly array + activation cycles — the pre-memory accounting.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 3).quantize(cfg.numeric);
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &qparams, &image_for(&net, 3));
    assert_eq!(run.memory.stall_cycles, 0);
    for layer in &run.layers {
        assert_eq!(layer.memory_stall_cycles, 0, "layer {}", layer.name);
        assert_eq!(layer.cycles(), layer.array_cycles + layer.activation_cycles);
    }
    // The off-chip split is still measurable on the ideal design point.
    assert!(run.memory.dram_weight_bytes > 0);
    assert!(run.memory.dram_data_bytes > 0);
}

#[test]
fn finite_memory_never_changes_results_and_only_adds_stalls() {
    let net = CapsNetConfig::tiny();
    let ideal = AcceleratorConfig::test_4x4();
    let finite = finite_cfg(ideal);
    let qparams = CapsNetParams::generate(&net, 17).quantize(ideal.numeric);
    let images: Vec<Tensor<f32>> = (0..3).map(|s| image_for(&net, s + 17)).collect();

    let mut a = BatchScheduler::new(ideal);
    let run_ideal = a.run(&net, &qparams, &images).expect("valid batch");
    let mut b = BatchScheduler::new(finite);
    let run_finite = b.run(&net, &qparams, &images).expect("valid batch");

    assert_eq!(run_ideal.traces, run_finite.traces);
    assert_eq!(run_ideal.steps, run_finite.steps);
    assert!(run_finite.memory.stall_cycles > 0);
    assert!(run_finite.total_cycles() > run_ideal.total_cycles());
    assert_eq!(
        run_finite.total_cycles(),
        run_ideal.total_cycles() + run_finite.memory.stall_cycles
    );
}

#[test]
fn engine_memory_report_matches_closed_form_replay_exactly() {
    // The acceptance anchor: on serial tiny configs the ticked engine
    // and the memory-aware closed-form model agree exactly — the whole
    // MemReport (stall decomposition, off-chip bytes, per-SPM activity),
    // and the per-layer stall attribution.
    let net = CapsNetConfig::tiny();
    let mut cfg = finite_cfg(AcceleratorConfig::test_4x4());
    cfg.dataflow.pipelined_tiles = false;
    for batch in [1usize, 2, 5] {
        let qparams = CapsNetParams::generate(&net, batch as u64).quantize(cfg.numeric);
        let images: Vec<Tensor<f32>> = (0..batch).map(|s| image_for(&net, s)).collect();
        let mut sched = BatchScheduler::new(cfg);
        let run = sched.run(&net, &qparams, &images).expect("valid batch");
        let model = timing::full_inference_batch_mem(&cfg, &net, batch as u64);
        assert_eq!(run.memory, model.report, "batch {batch}");
        let stalls: Vec<u64> = run.layers.iter().map(|l| l.memory_stall_cycles).collect();
        assert_eq!(
            stalls,
            vec![
                model.conv1_stall_cycles,
                model.primary_caps_stall_cycles,
                model.class_caps_stall_cycles
            ],
            "per-layer stall attribution, batch {batch}"
        );
    }
}

#[test]
fn engine_dram_traffic_matches_traffic_estimate() {
    // The TrafficReport's off-chip counter agrees between engine and the
    // closed-form batched estimate (weights once per batch, inputs once
    // per image).
    use capsacc::core::MemoryKind;
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 2).quantize(cfg.numeric);
    for batch in [1usize, 4] {
        let images: Vec<Tensor<f32>> = (0..batch).map(|s| image_for(&net, s)).collect();
        let mut sched = BatchScheduler::new(cfg);
        let run = sched.run(&net, &qparams, &images).expect("valid batch");
        let estimate = timing::batch_traffic_estimate(&cfg, &net, batch as u64);
        assert_eq!(
            run.traffic.counter(MemoryKind::Dram),
            estimate.counter(MemoryKind::Dram),
            "batch {batch}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Matmul-level exactness: across random shapes, array geometries
    /// and batch sizes, the engine's stall delta equals the closed-form
    /// `matmul_mem_stalls`, stalls never touch the ticked array, and the
    /// ideal/finite outputs stay bit-identical.
    #[test]
    fn engine_matmul_stalls_match_model(
        m in 1usize..10,
        k in 1usize..40,
        n in 1usize..20,
        size in 2usize..6,
        batch in 1usize..5,
        latency in 0u64..400,
    ) {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        cfg.memory = MemoryConfig::paper();
        cfg.memory.dram.latency_cycles = latency;

        let data = |img: usize, mi: usize, ki: usize| ((img * 7 + mi * 3 + ki) % 50) as i8;
        let weight = |ki: usize, ni: usize| ((ki + ni * 5) % 60) as i8;

        let mut acc = Accelerator::new(cfg);
        let stalls_before = acc.memory_stall_cycles();
        let cycles_before = acc.array_cycles();
        let (outs, _) = acc.matmul_batch(
            batch, &data, &weight, m, k, n, None, 6, ActivationKind::Identity,
        );
        let engine_stalls = acc.memory_stall_cycles() - stalls_before;

        let shape = timing::MatmulShape { m: m as u64, k: k as u64, n: n as u64 };
        // The public matmul path treats weights as on-chip operands.
        let model_stalls = timing::matmul_mem_stalls(shape, batch as u64, &cfg, false);
        prop_assert_eq!(engine_stalls, model_stalls);

        // Stalls are accounted beside the array, never inside it, and
        // the memory model never changes outputs: an IdealMemory run of
        // the same matmul matches array cycles and results exactly.
        let mut ideal_acc = Accelerator::new(AcceleratorConfig {
            memory: MemoryConfig::ideal(),
            ..cfg
        });
        let (ideal_outs, _) = ideal_acc.matmul_batch(
            batch, &data, &weight, m, k, n, None, 6, ActivationKind::Identity,
        );
        prop_assert_eq!(&outs, &ideal_outs, "memory model changed outputs");
        prop_assert_eq!(acc.array_cycles() - cycles_before, ideal_acc.array_cycles());
        prop_assert_eq!(ideal_acc.memory_stall_cycles(), 0);

        // Monotone in DRAM latency (off-chip path exercised separately).
        let mut slower = cfg;
        slower.memory.dram.latency_cycles += 100;
        prop_assert!(
            timing::matmul_mem_stalls(shape, batch as u64, &slower, true)
                >= timing::matmul_mem_stalls(shape, batch as u64, &cfg, true)
        );
        // Deeper prefetch never hurts.
        let mut naive = cfg;
        naive.memory.prefetch_buffers = 1;
        prop_assert!(
            timing::matmul_mem_stalls(shape, batch as u64, &naive, true)
                >= timing::matmul_mem_stalls(shape, batch as u64, &cfg, true)
        );
    }
}
