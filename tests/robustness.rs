//! Robustness and failure-injection tests: the system must behave
//! predictably under adversarial numerics (saturating inputs, corrupted
//! weights), degenerate configurations, and invalid parameters.

use capsacc::capsnet::{
    infer_q8, infer_q8_traced, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::core::{Accelerator, AcceleratorConfig};
use capsacc::fixed::NumericConfig;
use capsacc::tensor::Tensor;

fn pipeline() -> QuantPipeline {
    QuantPipeline::new(NumericConfig::default())
}

#[test]
fn adversarial_all_max_weights_complete_without_panic() {
    // Saturate everything: the datapath must clip, count saturations,
    // and still produce in-range outputs.
    let net = CapsNetConfig::tiny();
    let params = CapsNetParams::generate(&net, 1);
    let mut q = params.quantize(NumericConfig::default());
    q.conv1_w.data_mut().fill(i8::MAX);
    q.pc_w.data_mut().fill(i8::MAX);
    q.w_class.data_mut().fill(i8::MAX);
    let image = Tensor::from_fn(&[1, 12, 12], |_| 1.0f32);
    let out = infer_q8(
        &net,
        &q,
        &pipeline(),
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    assert!(out.predicted < net.num_classes);
    assert_eq!(out.class_norms.len(), net.num_classes);
    // The tiny network's longest reduction (72 taps) stays within the
    // 25-bit accumulator even at full scale — exactly why the paper's
    // width is safe. A 2000-tap all-max reduction, by contrast, must
    // clip and be counted.
    assert_eq!(out.stats.saturations, 0);
    let long = vec![i8::MAX; 2000];
    let (raw, sats) = capsacc::tensor::qops::dot_q8(&long, &long);
    assert!(sats > 0, "2000·127² exceeds 2^24 and must saturate");
    assert_eq!(raw, (1 << 24) - 1);
}

#[test]
fn single_weight_corruption_changes_outputs() {
    // Fault sensitivity: flipping one Conv1 weight must propagate to the
    // trace (the network is not silently ignoring its inputs).
    let net = CapsNetConfig::tiny();
    let ncfg = NumericConfig::default();
    let clean = CapsNetParams::generate(&net, 2).quantize(ncfg);
    let mut faulty = clean.clone();
    let w0 = faulty.conv1_w.data()[0];
    faulty.conv1_w.data_mut()[0] = w0.wrapping_add(64);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 12.0);
    let a = infer_q8_traced(
        &net,
        &clean,
        &pipeline(),
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    let b = infer_q8_traced(
        &net,
        &faulty,
        &pipeline(),
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    assert_ne!(a.conv1_out, b.conv1_out, "fault did not propagate");
}

#[test]
fn blank_and_saturated_images_are_valid_inputs() {
    let net = CapsNetConfig::tiny();
    let q = CapsNetParams::generate(&net, 3).quantize(NumericConfig::default());
    for value in [0.0f32, 1.0, 1e9, -1e9, f32::NAN] {
        let image = Tensor::from_fn(&[1, 12, 12], |_| value);
        let out = infer_q8(
            &net,
            &q,
            &pipeline(),
            &image,
            RoutingVariant::SkipFirstSoftmax,
        );
        assert!(
            out.predicted < net.num_classes,
            "value {value} broke inference"
        );
    }
}

#[test]
fn engine_handles_saturating_workloads_gracefully() {
    // The cycle-accurate engine must also complete under saturation; it
    // may legitimately differ from the reference there (different
    // association order), but both must stay in range.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let mut q = CapsNetParams::generate(&net, 4).quantize(cfg.numeric);
    q.pc_w.data_mut().fill(i8::MIN);
    let image = Tensor::from_fn(&[1, 12, 12], |_| 1.0f32);
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &q, &image);
    assert!(run.trace.output.predicted < net.num_classes);
}

#[test]
fn config_validation_rejects_nonsense() {
    assert!(CapsNetConfig {
        routing_iterations: 0,
        ..CapsNetConfig::tiny()
    }
    .validate()
    .is_err());
    assert!(CapsNetConfig {
        num_classes: 1,
        ..CapsNetConfig::tiny()
    }
    .validate()
    .is_err());
    let mut acc = AcceleratorConfig::paper();
    acc.routing_buf_bw = 0;
    assert!(acc.validate().is_err());
}

#[test]
fn one_by_one_array_still_bit_exact() {
    // The degenerate 1×1 array is the slowest possible configuration but
    // must still agree with the reference bit for bit.
    let net = CapsNetConfig::tiny();
    let mut cfg = AcceleratorConfig::test_4x4();
    cfg.rows = 1;
    cfg.cols = 1;
    cfg.activation_units = 1;
    let q = CapsNetParams::generate(&net, 5).quantize(cfg.numeric);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] * i[2] % 5) as f32 / 5.0);
    let reference = infer_q8_traced(
        &net,
        &q,
        &QuantPipeline::new(cfg.numeric),
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &q, &image);
    assert_eq!(run.trace, reference);
}

#[test]
fn single_routing_iteration_network() {
    // Degenerate routing: one iteration means no updates and (with the
    // optimization) no softmax at all.
    let net = CapsNetConfig {
        routing_iterations: 1,
        ..CapsNetConfig::tiny()
    };
    let cfg = AcceleratorConfig::test_4x4();
    let q = CapsNetParams::generate(&net, 6).quantize(cfg.numeric);
    let image = Tensor::from_fn(&[1, 12, 12], |i| i[1] as f32 / 12.0);
    let reference = infer_q8_traced(
        &net,
        &q,
        &QuantPipeline::new(cfg.numeric),
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    assert_eq!(reference.iterations.len(), 1);
    assert!(reference.iterations[0].logits_after_update.is_none());
    let mut acc = Accelerator::new(cfg);
    let run = acc.run_inference(&net, &q, &image);
    assert_eq!(run.trace, reference);
}
