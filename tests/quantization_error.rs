//! Property tests on the quantization error: the 8-bit inference must
//! track the float inference within format-derived bounds across random
//! seeds and inputs — the numerical justification for the paper's 8-bit
//! datapath choice.

use capsacc::capsnet::{
    infer_f32, infer_q8, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc::fixed::NumericConfig;
use capsacc::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quantized_class_norms_track_float(seed in 0u64..1000, img_seed in 0usize..100) {
        let net = CapsNetConfig::tiny();
        let ncfg = NumericConfig::default();
        let params = CapsNetParams::generate(&net, seed);
        let qparams = params.quantize(ncfg);
        let pipe = QuantPipeline::new(ncfg);
        let image = Tensor::from_fn(&[1, 12, 12], |i| {
            ((i[1] * (img_seed + 3) + i[2] * 7 + img_seed) % 13) as f32 / 13.0
        });

        let f = infer_f32(&net, &params, &image, RoutingVariant::SkipFirstSoftmax);
        let q = infer_q8(&net, &qparams, &pipe, &image, RoutingVariant::SkipFirstSoftmax);

        prop_assert_eq!(q.stats.saturations, 0);
        for (fnorm, &qnorm) in f.class_norms().iter().zip(&q.class_norms) {
            let qn = qnorm as f32 / (1u32 << ncfg.norm_frac) as f32;
            // Class norms live in [0, 1). The dominant error source is
            // the 12b→8b square LUT (Q4.4 output): element codes |x| ≤ 8
            // square to zero, so a capsule whose elements all sit below
            // 0.25 reports norm 0 while the float norm can reach ~0.5 —
            // an artifact of the paper's own bit-width choices. 0.55
            // is the resulting worst-case envelope.
            prop_assert!(
                (fnorm - qn).abs() < 0.55,
                "float {} vs quant {}", fnorm, qn
            );
        }
    }

    #[test]
    fn couplings_remain_distributions(seed in 0u64..1000) {
        let net = CapsNetConfig::tiny();
        let ncfg = NumericConfig::default();
        let qparams = CapsNetParams::generate(&net, seed).quantize(ncfg);
        let pipe = QuantPipeline::new(ncfg);
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] + i[2] + seed as usize) % 5) as f32 / 5.0);
        let q = infer_q8(&net, &qparams, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        let classes = net.num_classes;
        for cap in 0..net.num_primary_caps() {
            let row = &q.couplings.data()[cap * classes..(cap + 1) * classes];
            let sum: i32 = row.iter().map(|&c| c as i32).sum();
            // Q0.7 "one" = 128; per-element rounding drifts at most half
            // an LSB each.
            prop_assert!((sum - 128).abs() <= classes as i32, "row sum {}", sum);
            prop_assert!(row.iter().all(|&c| c >= 0));
        }
    }
}
