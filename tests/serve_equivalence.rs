//! Differential tests for the serving path: requests dispatched through
//! the dynamic micro-batcher and the OS-thread shard pool must produce
//! `QuantTrace`s **bit-identical** to fresh-accelerator sequential runs
//! of the same images — the serving generalization of the
//! batch-equivalence invariant — and the whole virtual-time pipeline
//! must be byte-for-byte deterministic across reruns regardless of how
//! the OS schedules the worker threads.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{timing, Accelerator, AcceleratorConfig, BatchScheduler, EngineBackend};
use capsacc::serve::{
    arrival_trace, dispatch_batches, engine_service_cycles_table, form_batches, run_runtime,
    serve_with_engine, service_cycles_table, simulate_runtime, simulate_serve, BatcherConfig,
    Request, ResilienceConfig, RuntimeConfig, ServeConfig, ShardPool, TraceConfig,
};
use capsacc::tensor::Tensor;
use proptest::prelude::*;

mod common;
use common::image_for;

fn tiny_serve(seed: u64, requests: usize, workers: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        workers,
        batcher: BatcherConfig {
            max_batch,
            max_wait_cycles: 10_000,
        },
        trace: TraceConfig {
            seed,
            requests,
            mean_gap_cycles: 2_000.0,
            mean_burst: 3.0,
        },
    }
}

#[test]
fn shard_pool_traces_are_bit_exact_vs_sequential_runs() {
    // The acceptance anchor: every request's trace through the pool —
    // long-lived weight-resident schedulers on real OS threads — equals
    // a fresh-accelerator sequential run of the same image.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let serve = tiny_serve(42, 17, 4, 3);
    let image = |r: usize| image_for(&net, r);
    let (outcome, traces) =
        serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
    assert_eq!(traces.len(), 17);
    // Real fan-out happened: several workers actually served batches.
    let active = outcome
        .worker_busy_cycles
        .iter()
        .filter(|&&c| c > 0)
        .count();
    assert!(active > 1, "expected a multi-worker serve, got {active}");
    for (r, trace) in traces.iter().enumerate() {
        let mut acc = Accelerator::new(cfg);
        let single = acc.run_inference(&net, &qparams, &image_for(&net, r));
        assert_eq!(
            &single.trace, trace,
            "shard-pool trace diverged from the sequential engine for request {r}"
        );
    }
}

#[test]
fn engine_service_cycles_are_data_and_reuse_independent() {
    // The dispatcher charges one cycle cost per batch *size*
    // (`engine_service_cycles_table`); that is only sound if real
    // batches — different images, long-lived reused schedulers, any
    // worker — cost exactly the table entry. Run disjoint image sets
    // through a pool and check every measured batch against the table.
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 3).quantize(cfg.numeric);
    let table = engine_service_cycles_table(&cfg, &net, &qparams, 4);
    assert!(table[1] > 0);
    assert!(
        table[4] < 4 * table[1],
        "batched service must amortize: {} vs 4x{}",
        table[4],
        table[1]
    );
    let pool = ShardPool::new(cfg, 2);
    let work: Vec<Vec<Vec<Tensor<f32>>>> = vec![
        vec![
            (0..3).map(|s| image_for(&net, s)).collect(),
            (0..1).map(|s| image_for(&net, s + 9)).collect(),
        ],
        vec![(0..4).map(|s| image_for(&net, s + 3)).collect()],
    ];
    let runs = pool.run_assignments(&net, &qparams, &work).expect("valid");
    for (worker, batches) in runs.iter().enumerate() {
        for run in batches {
            assert_eq!(
                run.total_cycles(),
                table[run.batch],
                "engine cycles diverged from the service table for a batch of {} on worker {worker}",
                run.batch
            );
        }
    }
}

#[test]
fn engine_service_cycles_table_holds_at_mnist_scale() {
    // Previously the engine-backed service table only existed at the
    // tiny test scale — ticking a 16×16 MNIST inference per batch size
    // was prohibitive. The functional backend removes that wall: build
    // the table at the paper design point and prove the serve layer's
    // charging discipline against real engine batches at full scale.
    let net = CapsNetConfig::mnist();
    let mut cfg = AcceleratorConfig::paper();
    cfg.backend = EngineBackend::Functional;
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let table = engine_service_cycles_table(&cfg, &net, &qparams, 2);
    assert_eq!(table[0], 0);
    assert!(table[1] > 0);
    assert!(
        table[2] < 2 * table[1],
        "batched service must amortize at paper scale: {} vs 2x{}",
        table[2],
        table[1]
    );
    // Data- and reuse-independence at MNIST scale: a long-lived reused
    // scheduler serving *different* images costs exactly the table
    // entry per batch — the invariant that makes one number per batch
    // size a sound service time for the dispatcher.
    let mut sched = BatchScheduler::new(cfg);
    let images: Vec<Tensor<f32>> = (0..3).map(|r| image_for(&net, r)).collect();
    for batch in [&images[..2], &images[2..3], &images[1..3]] {
        let run = sched.run(&net, &qparams, batch).expect("valid batch");
        assert_eq!(
            run.total_cycles(),
            table[run.batch],
            "engine cycles diverged from the service table for a batch of {}",
            run.batch
        );
    }
    // The dispatcher charges those same cycles end to end.
    let serve = tiny_serve(3, 6, 2, 2);
    let arrivals = arrival_trace(&serve.trace);
    let batches = form_batches(&arrivals, &serve.batcher);
    let out = dispatch_batches(&arrivals, &batches, serve.workers, &|n| table[n]);
    for r in &out.requests {
        assert_eq!(r.service_cycles(), table[out.batches[r.batch].len]);
    }
}

#[test]
fn serving_outcome_is_deterministic_across_reruns() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let serve = tiny_serve(7, 11, 3, 4);
    let image = |r: usize| image_for(&net, r);
    let (out1, traces1) =
        serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
    let (out2, traces2) =
        serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
    assert_eq!(out1, out2, "virtual-time outcome must be rerun-identical");
    assert_eq!(traces1, traces2, "traces must be rerun-identical");
    // The closed-form-only simulation is deterministic too.
    assert_eq!(
        simulate_serve(&cfg, &net, &serve),
        simulate_serve(&cfg, &net, &serve)
    );
}

#[test]
fn worker_scaling_reaches_three_x_at_mnist_scale() {
    // The exp_serve acceptance bound, pinned as a test with the same
    // saturating trace shape: 4 workers ≥ 3× the throughput of 1.
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let at = |workers: usize| {
        let serve = ServeConfig {
            workers,
            batcher: BatcherConfig {
                max_batch: 16,
                max_wait_cycles: 10_000,
            },
            trace: TraceConfig {
                seed: 7,
                requests: 256,
                mean_gap_cycles: 2_000.0,
                mean_burst: 4.0,
            },
        };
        simulate_serve(&cfg, &net, &serve).throughput_per_cycle()
    };
    let (t1, t4) = (at(1), at(4));
    assert!(
        t4 >= 3.0 * t1,
        "worker scaling below 3x: {t4:e} vs {t1:e} images/cycle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random serving configurations: the pool-backed serve always
    /// produces per-request traces bit-identical to sequential runs,
    /// and its virtual-time outcome equals the closed-form simulation.
    #[test]
    fn random_serves_stay_bit_exact(
        seed in 0u64..500,
        requests in 1usize..12,
        workers in 1usize..4,
        max_batch in 1usize..4,
    ) {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let serve = tiny_serve(seed, requests, workers, max_batch);
        let image = |r: usize| image_for(&net, r + seed as usize);
        let (outcome, traces) =
            serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
        prop_assert_eq!(outcome.requests.len(), requests);
        for (r, trace) in traces.iter().enumerate() {
            let mut acc = Accelerator::new(cfg);
            let single = acc.run_inference(&net, &qparams, &image_for(&net, r + seed as usize));
            prop_assert_eq!(&single.trace, trace, "request {} diverged", r);
        }
    }
}

/// The online runtime restricted to the offline pipeline's semantics:
/// unbounded queue, no deadlines, one priority class, autoscaling off.
fn anchored_runtime(batcher: BatcherConfig, workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        batcher,
        queue_capacity: None,
        deadline_aware: false,
        autoscaler: None,
        record_events: false,
        resilience: ResilienceConfig::none(),
    }
}

#[test]
fn online_runtime_reproduces_offline_pipeline_exactly() {
    // The offline-equivalence anchor: with shedding, deadlines,
    // priorities and autoscaling all disabled, the event-driven online
    // runtime must reproduce `form_batches` + `dispatch_batches`
    // bit-exactly — same batches, same workers, same latencies, same
    // `SimOutcome` — so every existing BENCH_serve.json number keeps
    // its meaning under the new runtime.
    let trace = TraceConfig {
        seed: 13,
        requests: 400,
        mean_gap_cycles: 800.0,
        mean_burst: 4.0,
    };
    let batcher = BatcherConfig {
        max_batch: 8,
        max_wait_cycles: 3_000,
    };
    let arrivals = arrival_trace(&trace);
    let requests: Vec<Request> = arrivals.iter().map(|&a| Request::best_effort(a)).collect();
    let service = |n: usize| 5_000 + 600 * n as u64;
    for workers in [1, 3] {
        let offline = dispatch_batches(
            &arrivals,
            &form_batches(&arrivals, &batcher),
            workers,
            &service,
        );
        let online = run_runtime(&anchored_runtime(batcher, workers), &requests, &service, 0);
        assert_eq!(online.sim, offline, "anchor broken at {workers} workers");
        assert_eq!(online.served.len(), requests.len());
        assert!(online.rejections.is_empty());
        assert!(online.scaling.is_empty());
    }
    // And through the closed-form glue at the accelerator design point.
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let serve = ServeConfig {
        workers: 2,
        batcher,
        trace,
    };
    let offline = simulate_serve(&cfg, &net, &serve);
    let online = simulate_runtime(&cfg, &net, &anchored_runtime(batcher, 2), &requests);
    assert_eq!(online.sim, offline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The offline-equivalence anchor holds across random traces,
    /// batcher policies and pool sizes — including zero-wait batching
    /// and same-cycle bursts, the trickiest event-ordering corners.
    #[test]
    fn online_offline_equivalence_holds_on_random_traces(
        gaps in proptest::collection::vec(0u64..400, 1..120),
        max_batch in 1usize..7,
        max_wait in 0u64..600,
        workers in 1usize..5,
        base in 1u64..4_000,
    ) {
        let mut t = 0u64;
        let arrivals: Vec<u64> = gaps.iter().map(|&g| { t += g; t }).collect();
        let requests: Vec<Request> =
            arrivals.iter().map(|&a| Request::best_effort(a)).collect();
        let batcher = BatcherConfig { max_batch, max_wait_cycles: max_wait };
        let service = move |n: usize| base + 23 * n as u64;
        let offline = dispatch_batches(
            &arrivals,
            &form_batches(&arrivals, &batcher),
            workers,
            &service,
        );
        let online = run_runtime(&anchored_runtime(batcher, workers), &requests, &service, 0);
        prop_assert_eq!(&online.sim, &offline);
        prop_assert!(online.rejections.is_empty());
    }
}

#[test]
fn dispatch_composes_with_engine_latency_model() {
    // End-to-end sanity on the latency decomposition: queue wait +
    // service = latency for every request, and the service term is the
    // closed-form batch cost (which `engine_service_cycles_match...`
    // ties to the engine).
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let trace = TraceConfig {
        seed: 9,
        requests: 20,
        mean_gap_cycles: 1_500.0,
        mean_burst: 2.0,
    };
    let batcher = BatcherConfig {
        max_batch: 4,
        max_wait_cycles: 5_000,
    };
    let arrivals = arrival_trace(&trace);
    let batches = form_batches(&arrivals, &batcher);
    let table = service_cycles_table(&cfg, &net, batcher.max_batch);
    let out = dispatch_batches(&arrivals, &batches, 2, &|n| table[n]);
    for r in &out.requests {
        assert_eq!(
            r.latency_cycles(),
            r.queue_wait_cycles() + r.service_cycles()
        );
        let b = &out.batches[r.batch];
        assert_eq!(r.service_cycles(), table[b.len]);
        assert_eq!(
            timing::full_inference_batch_mem(&cfg, &net, b.len as u64).total_cycles(),
            table[b.len]
        );
    }
}
