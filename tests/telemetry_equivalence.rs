//! Differential tests for the telemetry layer's core contract:
//! **recording never perturbs simulated results, and not recording is
//! byte-invisible**.
//!
//! - Engine: for random seeds × batch sizes × both backends × thread
//!   counts × trace levels × every [`SpanDetail`], a `BatchRun`
//!   produced with telemetry enabled is `==` to one produced with
//!   telemetry off, and the recorded span tree is well-formed and sums
//!   exactly to the run's total cycles.
//! - Golden digests: the canonical pinned inference re-produces
//!   `GOLDEN_DIGESTS` *with recording on* — the telemetry hooks sit on
//!   the same code path the bit-exactness suite pins, so this is the
//!   direct proof that enabling them cannot drift the numerics.
//! - Host knobs: the span tree is a function of the *simulated*
//!   machine only — thread counts and backends change nothing about
//!   the recorded spans.
//! - Serve: `run_runtime_with_sink` with a [`RuntimeTelemetry`]
//!   observer produces a `RuntimeOutcome` (including the FNV event
//!   digest) identical to `run_runtime`'s, across workload regimes and
//!   runtime configurations, with and without `record_events`.

use capsacc::capsnet::{CapsNetConfig, CapsNetParams};
use capsacc::core::{
    validate_span_tree, Accelerator, AcceleratorConfig, BatchScheduler, EngineBackend,
    FunctionalOptions, MemoryConfig, SpanDetail, TelemetryConfig, TraceLevel, TRACK_ENGINE,
};
use capsacc::serve::{
    run_runtime, run_runtime_with_sink, service_cycles_table, worker_warmup_cycles, workload_trace,
    ArrivalRegime, AutoscalerConfig, BatcherConfig, ClassConfig, NullSink, ResilienceConfig,
    RuntimeConfig, RuntimeTelemetry, WorkloadConfig,
};
use capsacc::tensor::Tensor;
use proptest::prelude::*;

mod common;
use common::{image_for, trace_digests, GOLDEN_DIGESTS};

const DETAIL_AXIS: [SpanDetail; 3] = [SpanDetail::Layers, SpanDetail::Phases, SpanDetail::Tiles];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline invariant: telemetry on ≡ telemetry off, for whole
    /// `BatchRun`s, across backends × threads × trace levels × span
    /// detail × memory models; and every recorded tree is well-formed
    /// and sums exactly to the run it observed.
    #[test]
    fn recording_never_perturbs_batch_runs(
        seed in 0u64..500,
        batch in 1usize..4,
        functional in any::<bool>(),
        threads_idx in 0usize..3,
        outputs_only in any::<bool>(),
        modeled_mem in any::<bool>(),
        detail_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][threads_idx];
        let detail = DETAIL_AXIS[detail_idx];
        let net = CapsNetConfig::tiny();
        let mut cfg = AcceleratorConfig::test_4x4();
        if functional {
            cfg.backend = EngineBackend::Functional;
            cfg.functional = FunctionalOptions { threads, ..FunctionalOptions::default() };
        }
        if outputs_only {
            cfg.trace_level = TraceLevel::Outputs;
        }
        if modeled_mem {
            cfg.memory = MemoryConfig::paper();
        }
        let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
        let images: Vec<Tensor<f32>> = (0..batch)
            .map(|s| image_for(&net, s + seed as usize))
            .collect();

        let want = BatchScheduler::new(cfg)
            .run(&net, &qparams, &images)
            .expect("valid batch");
        let mut sched = BatchScheduler::new(cfg);
        sched
            .accelerator_mut()
            .enable_telemetry(TelemetryConfig { detail, host_timing: false });
        let got = sched.run(&net, &qparams, &images).expect("valid batch");
        prop_assert_eq!(&got, &want, "recording perturbed the run");

        let rec = sched.accelerator_mut().take_telemetry();
        let total = validate_span_tree(&rec, TRACK_ENGINE)
            .map_err(|e| TestCaseError::fail(format!("malformed span tree: {e}")))?;
        prop_assert_eq!(total, got.total_cycles(), "span tree sum != run total");
    }

    /// The span tree is a function of the simulated machine only:
    /// ticked and functional backends at any thread count record
    /// byte-identical spans.
    #[test]
    fn span_trees_are_host_invariant(
        seed in 0u64..200,
        detail_idx in 0usize..3,
    ) {
        let detail = DETAIL_AXIS[detail_idx];
        let net = CapsNetConfig::tiny();
        let image = image_for(&net, seed as usize);
        let mut trees = Vec::new();
        for (functional, threads) in [(false, 1), (true, 1), (true, 4)] {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.memory = MemoryConfig::paper();
            if functional {
                cfg.backend = EngineBackend::Functional;
                cfg.functional =
                    FunctionalOptions { threads, ..FunctionalOptions::default() };
            }
            let qparams = CapsNetParams::generate(&net, seed).quantize(cfg.numeric);
            let mut acc = Accelerator::new(cfg);
            acc.enable_telemetry(TelemetryConfig { detail, host_timing: false });
            acc.run_inference(&net, &qparams, &image);
            trees.push(acc.take_telemetry().spans().to_vec());
        }
        prop_assert!(!trees[0].is_empty(), "nothing recorded");
        prop_assert_eq!(&trees[0], &trees[1], "ticked vs functional spans");
        prop_assert_eq!(&trees[1], &trees[2], "1-thread vs 4-thread spans");
    }
}

/// The canonical pinned inference with recording ON at the deepest
/// detail still reproduces the golden digests bit-for-bit.
#[test]
fn golden_digests_hold_with_recording_on() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let mut acc = Accelerator::new(cfg);
    acc.enable_telemetry(TelemetryConfig {
        detail: SpanDetail::Tiles,
        host_timing: true,
    });
    let run = acc.run_inference(&net, &qparams, &image_for(&net, 0));
    assert_eq!(trace_digests(&run.trace), GOLDEN_DIGESTS);
    assert!(
        !acc.take_telemetry().spans().is_empty(),
        "recording must actually have been on for this to prove anything"
    );
}

/// A serving scenario dense enough to exercise admission, shedding,
/// SLO-aware closing and autoscaling.
fn serve_fixture(seed: u64, spike: bool) -> (Vec<capsacc::serve::Request>, RuntimeConfig, u64) {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let table = service_cycles_table(&cfg, &net, 8);
    let per_request = table[8] / 8;
    let workload = WorkloadConfig {
        seed,
        requests: 600,
        regime: if spike {
            ArrivalRegime::Spike {
                base_gap_cycles: (3 * per_request / 2) as f64,
                spike_start_cycle: 100 * per_request,
                spike_cycles: 200 * per_request,
                spike_gap_cycles: (per_request / 8).max(1) as f64,
            }
        } else {
            ArrivalRegime::Bursty {
                mean_gap_cycles: per_request as f64,
                mean_burst: 3.0,
            }
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(8 * table[1]),
            },
        ],
    };
    let rt = RuntimeConfig {
        workers: 2,
        batcher: BatcherConfig {
            max_batch: 8,
            max_wait_cycles: 20_000,
        },
        queue_capacity: Some(24),
        deadline_aware: true,
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 3,
            scale_up_queue_per_worker: 6,
            scale_down_idle_cycles: 200_000,
            eval_period_cycles: 50_000,
        }),
        record_events: false,
        resilience: ResilienceConfig::none(),
    };
    (
        workload_trace(&workload),
        rt,
        worker_warmup_cycles(&cfg, &net),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Observing the runtime through a telemetry sink (or the null
    /// sink) leaves the outcome — served set, rejections, per-class
    /// stats, scaling events and the FNV event digest — identical,
    /// regardless of whether the event log itself is retained.
    #[test]
    fn sinks_never_perturb_the_runtime_outcome(
        seed in 0u64..300,
        spike in any::<bool>(),
        record_events in any::<bool>(),
    ) {
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let table = service_cycles_table(&cfg, &net, 8);
        let service = |n: usize| table[n];
        let (requests, mut rt, warmup) = serve_fixture(seed, spike);
        rt.record_events = record_events;

        let want = run_runtime(&rt, &requests, &service, warmup);
        let with_null =
            run_runtime_with_sink(&rt, &requests, &service, warmup, &mut NullSink);
        prop_assert_eq!(&with_null, &want, "NullSink must be run_runtime");

        let mut sink = RuntimeTelemetry::new(&requests, 4 * table[8]);
        let got = run_runtime_with_sink(&rt, &requests, &service, warmup, &mut sink);
        prop_assert_eq!(&got, &want, "telemetry sink perturbed the outcome");
        prop_assert_eq!(got.event_digest, want.event_digest);

        // And the timeline it built covers the served set exactly.
        let rec = sink.finish();
        let mut seen: Vec<u64> = rec
            .spans()
            .iter()
            .filter(|s| s.name == "request")
            .map(|s| s.args.iter().find(|(k, _)| *k == "req").unwrap().1)
            .collect();
        seen.sort_unstable();
        let served: Vec<u64> = want.served.iter().map(|&r| r as u64).collect();
        prop_assert_eq!(seen, served);
    }
}
