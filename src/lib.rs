//! # capsacc — facade crate
//!
//! Re-exports the public API of the CapsAcc reproduction workspace. See the
//! individual crates for details:
//!
//! - [`fixed`] — fixed-point arithmetic and hardware lookup tables
//! - [`tensor`] — minimal dense tensors with conv/matmul reference ops
//! - [`mnist`] — synthetic MNIST-style data and deterministic weights
//! - [`capsnet`] — reference CapsuleNet with routing-by-agreement
//! - [`faults`] — deterministic seeded fault-injection plans across
//!   the serve, memory and engine layers
//! - [`memory`] — banked scratchpads, DRAM channel and tile prefetcher
//! - [`core`] — the cycle-accurate CapsAcc accelerator simulator
//! - [`serve`] — deterministic request serving: arrival traces, dynamic
//!   micro-batching, multi-worker shard pool, and the online overload
//!   runtime (admission control, SLO-aware batching, priority classes,
//!   autoscaling)
//! - [`telemetry`] — deterministic virtual-time span tracing, metrics
//!   and Chrome-trace/JSON/CSV exporters (off by default and
//!   byte-invisible when off)
//! - [`gpu`] — analytical GPU baseline timing model
//! - [`power`] — analytical 32nm area/power model
//!
//! # Example
//!
//! ```
//! use capsacc::capsnet::CapsNetConfig;
//! let cfg = CapsNetConfig::mnist();
//! assert_eq!(cfg.total_parameters(), 6_804_224);
//! ```

#![forbid(unsafe_code)]

pub use capsacc_capsnet as capsnet;
pub use capsacc_core as core;
pub use capsacc_faults as faults;
pub use capsacc_fixed as fixed;
pub use capsacc_gpu_model as gpu;
pub use capsacc_memory as memory;
pub use capsacc_mnist as mnist;
pub use capsacc_power as power;
pub use capsacc_serve as serve;
pub use capsacc_telemetry as telemetry;
pub use capsacc_tensor as tensor;
