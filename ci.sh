#!/usr/bin/env bash
# The full verification gate. Everything here must pass before a PR
# merges; .github/workflows/ci.yml runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
# Static-analysis gate: the workspace's own linter (determinism,
# cast-audit, safety-comment, unsafe-containment, doc-drift,
# fault-seed) must find zero unwaived violations and refreshes LINT_report.json, which is
# diffed below like the BENCH artifacts.
run cargo run --release -q -p capsacc-lint -- --deny --json LINT_report.json
run cargo build --release
run cargo test --workspace -q
# Benches are excluded from `cargo test`; make sure they still compile.
run cargo bench -p capsacc-bench --no-run
# Batched-serving smoke run: validates run_batch bit-exactness at the
# tiny scale and refreshes BENCH_batch.json so the perf trajectory of
# the batch path is recorded with every CI run.
run cargo run --release -q -p capsacc-bench --bin exp_batch
# Memory design-space smoke run: asserts the IdealMemory equivalence
# (engine ≡ closed-form memory replay, zero ideal stalls) and the
# prefetch-recovery bound, and refreshes BENCH_mem.json.
run cargo run --release -q -p capsacc-bench --bin exp_memdse
# Serving smoke run: asserts the ≥3x worker-scaling bound (4 workers vs
# 1 at fixed max_batch) on BOTH service tables (closed-form model and
# the engine table measured from parallel+SIMD functional BatchRuns at
# MNIST scale), the offline anchor (online runtime ≡ offline pipeline
# with overload features disabled), the overload invariants (flash
# crowd sheds on the bounded queue — closed-form and engine-table —
# and the post-spike served fraction recovers to ≥95% of the pre-spike
# level), monotonicity + batch amortization of the engine service
# table, byte-identical determinism of every sweep (event digests
# included), and shard-pool trace bit-exactness at the tiny scale;
# refreshes BENCH_serve.json — saturating + overload sweeps on both
# tables, engine_service_cycles, million-request diurnal scale point —
# so the serving-perf trajectory is recorded.
run cargo run --release -q -p capsacc-bench --bin exp_serve
# Fault-tolerance smoke run: asserts conservation under faults (no run
# loses a request while batches crash and requeue), the recovery
# headline (≥90% goodput at a 1% worker-crash rate with the standard
# retry budget), faults-off invisibility (zero-rate FaultPlan ≡
# ResilienceConfig::none(), digest-exact), hedging efficacy (hedges
# fire, win, and never worsen p99 under rare heavy stragglers),
# degradation efficacy (quality shifts serve at least as much as full
# quality under sustained overload), and byte-identical rerun
# determinism of every fault sweep; refreshes BENCH_faults.json.
run cargo run --release -q -p capsacc-bench --bin exp_faults
# Engine wall-clock smoke run: asserts ticked, functional-scalar and
# functional-SIMD (the parallel backend) are bit-identical on a full
# MNIST inference at the paper 16x16 design point, that explicit
# thread counts 1/2/4 produce byte-identical batch-16 BatchRuns, that
# the functional backend clears the 10x wall-clock bound over ticked
# and the parallel+SIMD batch path clears 5x over the PR 5 functional
# baseline (98.20 ms/image) — both asserted on median host times;
# refreshes BENCH_engine.json (reps/min/median per row — the
# wall-clock perf trajectory; its host-time fields vary run to run by
# design).
run cargo run --release -q -p capsacc-bench --bin exp_engine_speed
# Telemetry smoke run: asserts recording is invisible (instrumented
# BatchRun/RuntimeOutcome + event digest == recording-off runs), span
# trees are well-formed and sum *exactly* to run totals (MNIST Phases
# detail; tiny Tiles detail identical across both backends), every
# exported artifact parses, and the serving timeline covers the served
# set exactly once; writes the gitignored PROFILE_* artifacts only.
run cargo run --release -q -p capsacc-bench --bin exp_profile
# The deterministic BENCH files must regenerate byte-identically (and
# exp_profile must not have touched them). BENCH_engine.json is
# excluded: its host-time fields vary run to run by design.
run git diff --exit-code -- BENCH_batch.json BENCH_mem.json BENCH_serve.json BENCH_faults.json LINT_report.json
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps

echo
echo "ci.sh: all checks passed"
