#!/usr/bin/env bash
# The full verification gate. Everything here must pass before a PR
# merges; .github/workflows/ci.yml runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test --workspace -q
# Benches are excluded from `cargo test`; make sure they still compile.
run cargo bench -p capsacc-bench --no-run
# Batched-serving smoke run: validates run_batch bit-exactness at the
# tiny scale and refreshes BENCH_batch.json so the perf trajectory of
# the batch path is recorded with every CI run.
run cargo run --release -q -p capsacc-bench --bin exp_batch
# Memory design-space smoke run: asserts the IdealMemory equivalence
# (engine ≡ closed-form memory replay, zero ideal stalls) and the
# prefetch-recovery bound, and refreshes BENCH_mem.json.
run cargo run --release -q -p capsacc-bench --bin exp_memdse
# Serving smoke run: asserts the ≥3x worker-scaling bound (4 workers vs
# 1 at fixed max_batch), the offline anchor (online runtime ≡ offline
# pipeline with overload features disabled), the overload invariants
# (flash crowd sheds on the bounded queue; post-spike served fraction
# recovers to ≥95% of the pre-spike level), byte-identical determinism
# of every sweep (event digests included), and shard-pool trace
# bit-exactness at the tiny scale; refreshes BENCH_serve.json —
# saturating sweep + overload-and-recovery sweep + million-request
# diurnal scale point — so the serving-perf trajectory is recorded.
run cargo run --release -q -p capsacc-bench --bin exp_serve
# Engine wall-clock smoke run: asserts the functional backend is
# bit-identical to the ticked RTL engine on a full MNIST inference at
# the paper 16x16 design point AND at least 10x faster in host time;
# refreshes BENCH_engine.json (the wall-clock perf trajectory — its
# host-time fields vary run to run by design).
run cargo run --release -q -p capsacc-bench --bin exp_engine_speed
RUSTDOCFLAGS="-D warnings" run cargo doc --workspace --no-deps

echo
echo "ci.sh: all checks passed"
