//! # capsacc-mnist — synthetic MNIST-style data and deterministic weights
//!
//! The paper evaluates CapsAcc on MNIST but reports **no accuracy
//! numbers** — the evaluation is performance/area/power on fixed tensor
//! shapes (Sec. VI-A: "we do not present any classification results").
//! What the workload needs from the dataset is therefore its *shape*
//! (28×28 grayscale, 10 classes) and realistic pixel statistics, which
//! this crate synthesizes deterministically:
//!
//! - [`SyntheticMnist`] — a procedural, stroke-based digit rasterizer
//!   producing 28×28 images with per-sample jitter (translation, scale,
//!   rotation, stroke width), seeded and fully reproducible.
//! - [`WeightGen`] — deterministic fan-in-scaled weight generation for
//!   the pseudo-trained CapsuleNet parameters.
//!
//! # Example
//!
//! ```
//! use capsacc_mnist::SyntheticMnist;
//! let ds = SyntheticMnist::new(42);
//! let sample = ds.sample(0);
//! assert_eq!(sample.image.shape(), &[1, 28, 28]);
//! assert!(sample.label < 10);
//! // Deterministic: the same index always yields the same image.
//! assert_eq!(ds.sample(0).image, sample.image);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digits;
mod weights;

pub use digits::{Sample, SyntheticMnist, IMAGE_SIDE};
pub use weights::WeightGen;
