//! Procedural stroke-based digit rasterizer.

use capsacc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Side length of a synthetic image (28, matching MNIST).
pub const IMAGE_SIDE: usize = 28;

/// One dataset sample: a `[1, 28, 28]` grayscale image in `[0, 1]` and
/// its class label.
#[derive(Clone, PartialEq, Debug)]
pub struct Sample {
    /// Grayscale image, shape `[1, IMAGE_SIDE, IMAGE_SIDE]`, values in
    /// `[0, 1]`.
    pub image: Tensor<f32>,
    /// Digit class in `0..10`.
    pub label: u8,
}

/// A stroke in the normalized `[0, 1]²` glyph space.
#[derive(Copy, Clone, Debug)]
enum Stroke {
    /// Line segment from `p0` to `p1`.
    Line { p0: (f32, f32), p1: (f32, f32) },
    /// Elliptical arc centred at `c` with radii `(rx, ry)`, swept from
    /// angle `a0` to `a1` (radians, counter-clockwise).
    Arc {
        c: (f32, f32),
        rx: f32,
        ry: f32,
        a0: f32,
        a1: f32,
    },
}

use std::f32::consts::PI;

/// Stroke templates for the ten digit classes, hand-drawn in glyph space.
fn glyph(digit: u8) -> Vec<Stroke> {
    use Stroke::*;
    match digit {
        0 => vec![Arc {
            c: (0.5, 0.5),
            rx: 0.24,
            ry: 0.36,
            a0: 0.0,
            a1: 2.0 * PI,
        }],
        1 => vec![
            Line {
                p0: (0.55, 0.12),
                p1: (0.55, 0.88),
            },
            Line {
                p0: (0.40, 0.26),
                p1: (0.55, 0.12),
            },
        ],
        2 => vec![
            Arc {
                c: (0.5, 0.32),
                rx: 0.24,
                ry: 0.20,
                a0: -PI,
                a1: 0.25 * PI,
            },
            Line {
                p0: (0.68, 0.45),
                p1: (0.26, 0.86),
            },
            Line {
                p0: (0.26, 0.86),
                p1: (0.76, 0.86),
            },
        ],
        3 => vec![
            Arc {
                c: (0.48, 0.31),
                rx: 0.22,
                ry: 0.18,
                a0: -0.75 * PI,
                a1: 0.5 * PI,
            },
            Arc {
                c: (0.48, 0.67),
                rx: 0.24,
                ry: 0.20,
                a0: -0.5 * PI,
                a1: 0.75 * PI,
            },
        ],
        4 => vec![
            Line {
                p0: (0.62, 0.12),
                p1: (0.24, 0.60),
            },
            Line {
                p0: (0.24, 0.60),
                p1: (0.78, 0.60),
            },
            Line {
                p0: (0.62, 0.12),
                p1: (0.62, 0.88),
            },
        ],
        5 => vec![
            Line {
                p0: (0.72, 0.14),
                p1: (0.32, 0.14),
            },
            Line {
                p0: (0.32, 0.14),
                p1: (0.30, 0.48),
            },
            Arc {
                c: (0.48, 0.66),
                rx: 0.24,
                ry: 0.21,
                a0: -0.6 * PI,
                a1: 0.8 * PI,
            },
        ],
        6 => vec![
            Arc {
                c: (0.52, 0.30),
                rx: 0.22,
                ry: 0.24,
                a0: -PI,
                a1: -0.35 * PI,
            },
            Line {
                p0: (0.30, 0.30),
                p1: (0.28, 0.65),
            },
            Arc {
                c: (0.50, 0.68),
                rx: 0.22,
                ry: 0.19,
                a0: 0.0,
                a1: 2.0 * PI,
            },
        ],
        7 => vec![
            Line {
                p0: (0.24, 0.14),
                p1: (0.76, 0.14),
            },
            Line {
                p0: (0.76, 0.14),
                p1: (0.42, 0.88),
            },
        ],
        8 => vec![
            Arc {
                c: (0.5, 0.30),
                rx: 0.19,
                ry: 0.17,
                a0: 0.0,
                a1: 2.0 * PI,
            },
            Arc {
                c: (0.5, 0.68),
                rx: 0.23,
                ry: 0.20,
                a0: 0.0,
                a1: 2.0 * PI,
            },
        ],
        9 => vec![
            Arc {
                c: (0.50, 0.32),
                rx: 0.21,
                ry: 0.19,
                a0: 0.0,
                a1: 2.0 * PI,
            },
            Line {
                p0: (0.71, 0.32),
                p1: (0.66, 0.88),
            },
        ],
        _ => panic!("digit class {digit} out of range 0..10"),
    }
}

/// Samples an arc into a polyline in glyph space.
fn arc_points(c: (f32, f32), rx: f32, ry: f32, a0: f32, a1: f32) -> Vec<(f32, f32)> {
    const SEGMENTS: usize = 40;
    (0..=SEGMENTS)
        .map(|i| {
            let t = a0 + (a1 - a0) * i as f32 / SEGMENTS as f32;
            (c.0 + rx * t.cos(), c.1 + ry * t.sin())
        })
        .collect()
}

/// Squared distance from point `p` to segment `(a, b)`.
fn dist2_to_segment(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (px, py) = (p.0 - a.0, p.1 - a.1);
    let (bx, by) = (b.0 - a.0, b.1 - a.1);
    let len2 = bx * bx + by * by;
    let t = if len2 == 0.0 {
        0.0
    } else {
        ((px * bx + py * by) / len2).clamp(0.0, 1.0)
    };
    let (dx, dy) = (px - t * bx, py - t * by);
    dx * dx + dy * dy
}

/// Per-sample geometric jitter applied to a glyph.
#[derive(Copy, Clone, Debug)]
struct Jitter {
    dx: f32,
    dy: f32,
    scale: f32,
    rot: f32,
    sigma: f32,
}

/// Deterministic synthetic MNIST-style dataset.
///
/// Every sample is generated on demand from `(seed, index)` — there is no
/// stored data, and two datasets with the same seed are identical. Labels
/// cycle through the ten classes (`label = index % 10`) so any contiguous
/// batch is class-balanced.
///
/// # Example
///
/// ```
/// use capsacc_mnist::SyntheticMnist;
/// let ds = SyntheticMnist::new(7);
/// let batch: Vec<_> = ds.iter().take(20).collect();
/// assert_eq!(batch.iter().filter(|s| s.label == 3).count(), 2);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SyntheticMnist {
    seed: u64,
}

impl SyntheticMnist {
    /// Creates a dataset with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this dataset was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates sample `index` (deterministic in `(seed, index)`).
    pub fn sample(&self, index: u64) -> Sample {
        let label = (index % 10) as u8;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let jitter = Jitter {
            dx: rng.gen_range(-0.07..0.07),
            dy: rng.gen_range(-0.07..0.07),
            scale: rng.gen_range(0.85..1.12),
            rot: rng.gen_range(-0.12..0.12),
            sigma: rng.gen_range(0.030..0.048),
        };
        Sample {
            image: rasterize(label, jitter),
            label,
        }
    }

    /// An infinite iterator over samples starting at index 0.
    pub fn iter(&self) -> Iter {
        Iter {
            dataset: *self,
            next: 0,
        }
    }
}

/// Iterator over [`SyntheticMnist`] samples.
#[derive(Copy, Clone, Debug)]
pub struct Iter {
    dataset: SyntheticMnist,
    next: u64,
}

impl Iterator for Iter {
    type Item = Sample;
    fn next(&mut self) -> Option<Sample> {
        let s = self.dataset.sample(self.next);
        self.next += 1;
        Some(s)
    }
}

/// Renders a digit glyph under a jitter transform into a 28×28 image.
fn rasterize(digit: u8, j: Jitter) -> Tensor<f32> {
    // Collect all strokes as polylines in glyph space, then transform.
    let mut polylines: Vec<Vec<(f32, f32)>> = Vec::new();
    for stroke in glyph(digit) {
        let pts = match stroke {
            Stroke::Line { p0, p1 } => vec![p0, p1],
            Stroke::Arc { c, rx, ry, a0, a1 } => arc_points(c, rx, ry, a0, a1),
        };
        let (sin, cos) = j.rot.sin_cos();
        let transformed = pts
            .into_iter()
            .map(|(x, y)| {
                // Rotate and scale about the glyph centre, then translate.
                let (cx, cy) = (x - 0.5, y - 0.5);
                let (rx, ry) = (cx * cos - cy * sin, cx * sin + cy * cos);
                (0.5 + j.scale * rx + j.dx, 0.5 + j.scale * ry + j.dy)
            })
            .collect();
        polylines.push(transformed);
    }

    Tensor::from_fn(&[1, IMAGE_SIDE, IMAGE_SIDE], |idx| {
        let py = (idx[1] as f32 + 0.5) / IMAGE_SIDE as f32;
        let px = (idx[2] as f32 + 0.5) / IMAGE_SIDE as f32;
        let mut d2 = f32::MAX;
        for line in &polylines {
            for pair in line.windows(2) {
                d2 = d2.min(dist2_to_segment((px, py), pair[0], pair[1]));
            }
        }
        // Gaussian falloff from the stroke centreline; clip the faint tail
        // so the background is exactly zero like thresholded MNIST.
        let v = (-d2 / (2.0 * j.sigma * j.sigma)).exp();
        if v < 0.05 {
            0.0
        } else {
            v.min(1.0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_shape_and_range() {
        let ds = SyntheticMnist::new(1);
        for i in 0..20 {
            let s = ds.sample(i);
            assert_eq!(s.image.shape(), &[1, IMAGE_SIDE, IMAGE_SIDE]);
            assert!(s.image.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = SyntheticMnist::new(1);
        for i in 0..30 {
            assert_eq!(ds.sample(i).label, (i % 10) as u8);
        }
    }

    #[test]
    fn deterministic_per_seed_and_index() {
        let a = SyntheticMnist::new(9).sample(17);
        let b = SyntheticMnist::new(9).sample(17);
        assert_eq!(a.image, b.image);
        let c = SyntheticMnist::new(10).sample(17);
        assert_ne!(a.image, c.image, "different seeds must differ");
    }

    #[test]
    fn jitter_makes_same_class_samples_differ() {
        let ds = SyntheticMnist::new(3);
        let a = ds.sample(0); // label 0
        let b = ds.sample(10); // label 0 again, different jitter
        assert_eq!(a.label, b.label);
        assert_ne!(a.image, b.image);
    }

    #[test]
    fn glyphs_have_plausible_ink_coverage() {
        // Every digit renders a stroke: between 2% and 40% of pixels lit.
        let ds = SyntheticMnist::new(5);
        for i in 0..10 {
            let s = ds.sample(i);
            let lit = s.image.iter().filter(|&&v| v > 0.1).count();
            let frac = lit as f32 / (IMAGE_SIDE * IMAGE_SIDE) as f32;
            assert!(
                (0.02..0.40).contains(&frac),
                "digit {} has ink fraction {frac}",
                s.label
            );
        }
    }

    #[test]
    fn different_digits_have_different_images() {
        let ds = SyntheticMnist::new(11);
        let imgs: Vec<_> = (0..10).map(|i| ds.sample(i).image).collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert_ne!(imgs[a], imgs[b], "digits {a} and {b} render equal");
            }
        }
    }

    #[test]
    fn iterator_matches_direct_sampling() {
        let ds = SyntheticMnist::new(2);
        for (i, s) in ds.iter().take(5).enumerate() {
            assert_eq!(s, ds.sample(i as u64));
        }
    }

    #[test]
    fn ink_is_centered() {
        // The glyph centroid stays within the middle half of the image
        // despite jitter.
        let ds = SyntheticMnist::new(8);
        for i in 0..10 {
            let s = ds.sample(i);
            let (mut sx, mut sy, mut mass) = (0.0f32, 0.0f32, 0.0f32);
            for y in 0..IMAGE_SIDE {
                for x in 0..IMAGE_SIDE {
                    let v = s.image[[0, y, x]];
                    sx += x as f32 * v;
                    sy += y as f32 * v;
                    mass += v;
                }
            }
            let (cx, cy) = (sx / mass, sy / mass);
            assert!((7.0..21.0).contains(&cx), "digit {i} centroid x = {cx}");
            assert!((7.0..21.0).contains(&cy), "digit {i} centroid y = {cy}");
        }
    }
}
