//! Deterministic pseudo-trained weight generation.

use capsacc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator of fan-in-scaled network weights.
///
/// The paper's evaluation never depends on the trained weight *values* —
/// only on tensor shapes and datapath behaviour — so this generator
/// substitutes Xavier-style uniform initialization
/// (`U(−√(3/fan_in), √(3/fan_in))`, matching the variance `1/fan_in` of
/// trained layers) drawn from a seeded PRNG. The same seed always yields
/// the same parameters, which is what makes the bit-exact
/// simulator-vs-reference validation reproducible.
///
/// # Example
///
/// ```
/// use capsacc_mnist::WeightGen;
/// let mut gen = WeightGen::new(1);
/// let w = gen.conv_weights(8, 1, 3, 3);
/// assert_eq!(w.shape(), &[8, 1, 3, 3]);
/// // fan_in = 9 → all weights within ±√(3/9) ≈ 0.577.
/// assert!(w.iter().all(|&v| v.abs() < 0.578));
/// ```
#[derive(Debug)]
pub struct WeightGen {
    rng: StdRng,
}

impl WeightGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one value from `U(-bound, bound)`.
    fn draw(&mut self, bound: f32) -> f32 {
        if bound == 0.0 {
            0.0
        } else {
            self.rng.gen_range(-bound..bound)
        }
    }

    /// Generates `[out_ch, in_ch, k_h, k_w]` convolution weights with
    /// fan-in `in_ch · k_h · k_w`.
    pub fn conv_weights(
        &mut self,
        out_ch: usize,
        in_ch: usize,
        k_h: usize,
        k_w: usize,
    ) -> Tensor<f32> {
        let fan_in = (in_ch * k_h * k_w) as f32;
        let bound = (3.0 / fan_in).sqrt();
        Tensor::from_fn(&[out_ch, in_ch, k_h, k_w], |_| self.draw(bound))
    }

    /// Generates per-channel biases in `U(-0.05, 0.05)`.
    pub fn biases(&mut self, out_ch: usize) -> Vec<f32> {
        (0..out_ch).map(|_| self.draw(0.05)).collect()
    }

    /// Generates a `[rows, cols]` dense matrix with fan-in `cols`.
    pub fn dense(&mut self, rows: usize, cols: usize) -> Tensor<f32> {
        let bound = (3.0 / cols as f32).sqrt();
        Tensor::from_fn(&[rows, cols], |_| self.draw(bound))
    }

    /// Generates the ClassCaps transformation tensor
    /// `[in_caps, out_caps, out_dim, in_dim]` (one `out_dim × in_dim`
    /// matrix `W_ij` per (input capsule, output capsule) pair), fan-in
    /// `in_dim`.
    pub fn capsule_transform(
        &mut self,
        in_caps: usize,
        out_caps: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Tensor<f32> {
        let bound = (3.0 / in_dim as f32).sqrt();
        Tensor::from_fn(&[in_caps, out_caps, out_dim, in_dim], |_| self.draw(bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = WeightGen::new(5).conv_weights(4, 2, 3, 3);
        let b = WeightGen::new(5).conv_weights(4, 2, 3, 3);
        assert_eq!(a, b);
        let c = WeightGen::new(6).conv_weights(4, 2, 3, 3);
        assert_ne!(a, c);
    }

    #[test]
    fn fan_in_bounds_hold() {
        let mut gen = WeightGen::new(1);
        let w = gen.conv_weights(16, 4, 5, 5);
        let bound = (3.0f32 / 100.0).sqrt();
        assert!(w.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn variance_is_roughly_xavier() {
        let mut gen = WeightGen::new(2);
        let w = gen.dense(64, 100);
        let n = w.len() as f32;
        let mean: f32 = w.iter().sum::<f32>() / n;
        let var: f32 = w.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        // U(-b, b) has variance b²/3 = 1/fan_in = 0.01.
        assert!((var - 0.01).abs() < 0.002, "var = {var}");
    }

    #[test]
    fn capsule_transform_shape() {
        let mut gen = WeightGen::new(3);
        let w = gen.capsule_transform(6, 4, 8, 16);
        assert_eq!(w.shape(), &[6, 4, 16, 8]);
    }

    #[test]
    fn sequential_draws_differ() {
        let mut gen = WeightGen::new(4);
        let a = gen.biases(8);
        let b = gen.biases(8);
        assert_ne!(a, b, "consecutive draws must advance the stream");
    }
}
