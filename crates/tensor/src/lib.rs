//! # capsacc-tensor — minimal dense tensors and reference operators
//!
//! A small, dependency-light tensor library sized for the CapsAcc
//! workload: row-major dense [`Tensor`]s of arbitrary rank, the
//! convolution geometry helper the accelerator's Data-Buffer addressing
//! uses ([`ConvGeometry`]), and reference operators in both `f32`
//! ([`ops`]) and bit-exact 8-bit fixed point ([`qops`]).
//!
//! The fixed-point operators mirror the accelerator datapath exactly:
//! widening 8×8-bit multiplies feeding a saturating 25-bit accumulator
//! ([`capsacc_fixed::Acc25`]), then a shift/round/saturate requantization
//! ([`capsacc_fixed::requantize`]). The cycle-accurate simulator in
//! `capsacc-core` validates its outputs bit-for-bit against these.
//!
//! # Example
//!
//! ```
//! use capsacc_tensor::Tensor;
//!
//! let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
//! assert_eq!(t.shape(), &[2, 3]);
//! assert_eq!(t[[1, 2]], 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checked;
mod geometry;
pub mod ops;
pub mod qops;
mod tensor;

pub use checked::{checked_product, checked_product_u64, u64_from, usize_from};
pub use geometry::ConvGeometry;
pub use tensor::{ShapeError, Tensor};
