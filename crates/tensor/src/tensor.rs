//! Row-major dense tensors of arbitrary rank.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error returned when a shape does not match the data it describes.
///
/// ```
/// use capsacc_tensor::Tensor;
/// let err = Tensor::from_vec(&[2, 3], vec![1.0f32; 5]).unwrap_err();
/// assert!(err.to_string().contains("expects 6 elements"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    shape: Vec<usize>,
    len: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} expects {} elements, got {}",
            self.shape,
            self.shape.iter().product::<usize>(),
            self.len
        )
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major tensor of arbitrary rank.
///
/// Sized for the CapsAcc workload — no views, no broadcasting, just the
/// storage and indexing the reference model and simulator need. Rank-0
/// tensors are not supported (a shape must have at least one axis).
///
/// # Example
///
/// ```
/// use capsacc_tensor::Tensor;
/// let mut t: Tensor<i8> = Tensor::zeros(&[2, 2]);
/// t[[0, 1]] = 7;
/// assert_eq!(t.data(), &[0, 7, 0, 0]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

impl<T: Default + Clone> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any axis is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::validate_shape(shape);
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![T::default(); len],
        }
    }
}

impl<T> Tensor<T> {
    fn validate_shape(shape: &[usize]) {
        assert!(
            !shape.is_empty(),
            "tensor shape must have at least one axis"
        );
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor axes must be non-zero, got {shape:?}"
        );
    }

    /// Wraps existing data in a shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len()` does not equal the product
    /// of the axes.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any axis is zero.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Result<Self, ShapeError> {
        Self::validate_shape(shape);
        if shape.iter().product::<usize>() != data.len() {
            return Err(ShapeError {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Builds a tensor by evaluating `f` at every multi-index, in
    /// row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any axis is zero.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Self {
        Self::validate_shape(shape);
        let len: usize = shape.iter().product();
        let mut idx = vec![0usize; shape.len()];
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f(&idx));
            // Row-major increment.
            for axis in (0..shape.len()).rev() {
                idx[axis] += 1;
                if idx[axis] < shape[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false` (shapes with zero axes are rejected), provided for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (row-major).
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing storage.
    #[inline]
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Computes the row-major flat index of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the rank or any coordinate is out of bounds.
    #[inline]
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.shape.len(),
            "index rank {} != tensor rank {}",
            idx.len(),
            self.shape.len()
        );
        let mut flat = 0usize;
        for (axis, (&i, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            flat = flat * d + i;
        }
        flat
    }

    /// Checked element access.
    pub fn get(&self, idx: &[usize]) -> Option<&T> {
        if idx.len() != self.shape.len() || idx.iter().zip(&self.shape).any(|(&i, &d)| i >= d) {
            return None;
        }
        Some(&self.data[self.flat_index(idx)])
    }

    /// Reinterprets the data under a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the element counts differ.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any axis is zero.
    pub fn reshape(self, shape: &[usize]) -> Result<Self, ShapeError> {
        Self::validate_shape(shape);
        if shape.iter().product::<usize>() != self.data.len() {
            return Err(ShapeError {
                shape: shape.to_vec(),
                len: self.data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data,
        })
    }

    /// Applies `f` elementwise, producing a tensor of the same shape.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterates mutably over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }
}

impl<T> Index<&[usize]> for Tensor<T> {
    type Output = T;
    #[inline]
    fn index(&self, idx: &[usize]) -> &T {
        &self.data[self.flat_index(idx)]
    }
}

impl<T> IndexMut<&[usize]> for Tensor<T> {
    #[inline]
    fn index_mut(&mut self, idx: &[usize]) -> &mut T {
        let flat = self.flat_index(idx);
        &mut self.data[flat]
    }
}

impl<T, const N: usize> Index<[usize; N]> for Tensor<T> {
    type Output = T;
    #[inline]
    fn index(&self, idx: [usize; N]) -> &T {
        &self.data[self.flat_index(&idx)]
    }
}

impl<T, const N: usize> IndexMut<[usize; N]> for Tensor<T> {
    #[inline]
    fn index_mut(&mut self, idx: [usize; N]) -> &mut T {
        let flat = self.flat_index(&idx);
        &mut self.data[flat]
    }
}

impl<'a, T> IntoIterator for &'a Tensor<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_shape() {
        let t: Tensor<f32> = Tensor::zeros(&[3, 4, 5]);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert!(!t.is_empty());
        assert!(t.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn empty_shape_rejected() {
        let _: Tensor<f32> = Tensor::zeros(&[]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_axis_rejected() {
        let _: Tensor<f32> = Tensor::zeros(&[3, 0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1, 2, 3, 4]).is_ok());
        let err = Tensor::from_vec(&[2, 2], vec![1, 2, 3]).unwrap_err();
        assert_eq!(err.to_string(), "shape [2, 2] expects 4 elements, got 3");
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| idx.to_vec());
        assert_eq!(t.data()[0], vec![0, 0]);
        assert_eq!(t.data()[1], vec![0, 1]);
        assert_eq!(t.data()[3], vec![1, 0]);
        assert_eq!(t.data()[5], vec![1, 2]);
    }

    #[test]
    fn flat_index_matches_strides() {
        let t: Tensor<u8> = Tensor::zeros(&[4, 5, 6]);
        assert_eq!(t.flat_index(&[0, 0, 0]), 0);
        assert_eq!(t.flat_index(&[1, 0, 0]), 30);
        assert_eq!(t.flat_index(&[1, 2, 3]), 30 + 12 + 3);
        assert_eq!(t.flat_index(&[3, 4, 5]), 119);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds_checked() {
        let t: Tensor<u8> = Tensor::zeros(&[2, 2]);
        t.flat_index(&[0, 2]);
    }

    #[test]
    fn get_is_checked() {
        let t = Tensor::from_fn(&[2, 2], |i| i[0] * 2 + i[1]);
        assert_eq!(t.get(&[1, 1]), Some(&3));
        assert_eq!(t.get(&[2, 0]), None);
        assert_eq!(t.get(&[0]), None);
    }

    #[test]
    fn index_and_index_mut() {
        let mut t: Tensor<i32> = Tensor::zeros(&[2, 3]);
        t[[1, 2]] = 42;
        assert_eq!(t[[1, 2]], 42);
        assert_eq!(t.data()[5], 42);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i[0] * 6 + i[1]);
        let r = t.clone().reshape(&[3, 4]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_fn(&[2, 2], |i| (i[0] + i[1]) as i8);
        let f = t.map(|&x| x as f32 * 2.0);
        assert_eq!(f.data(), &[0.0, 2.0, 2.0, 4.0]);
        assert_eq!(f.shape(), t.shape());
    }

    #[test]
    fn into_iterator_for_ref() {
        let t = Tensor::from_fn(&[3], |i| i[0] as i64);
        let sum: i64 = (&t).into_iter().sum();
        assert_eq!(sum, 3);
    }

    proptest! {
        #[test]
        fn from_fn_then_index_roundtrip(d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5) {
            let t = Tensor::from_fn(&[d0, d1, d2], |i| (i[0], i[1], i[2]));
            for a in 0..d0 {
                for b in 0..d1 {
                    for c in 0..d2 {
                        prop_assert_eq!(t[[a, b, c]], (a, b, c));
                    }
                }
            }
        }

        #[test]
        fn flat_index_is_bijective(d0 in 1usize..6, d1 in 1usize..6) {
            let t: Tensor<u8> = Tensor::zeros(&[d0, d1]);
            let mut seen = std::collections::HashSet::new();
            for a in 0..d0 {
                for b in 0..d1 {
                    prop_assert!(seen.insert(t.flat_index(&[a, b])));
                }
            }
            prop_assert_eq!(seen.len(), d0 * d1);
        }
    }
}
