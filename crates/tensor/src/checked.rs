//! Overflow-checked shape arithmetic shared across the workspace.
//!
//! Every cycle, traffic and parameter formula downstream of this crate
//! multiplies network dimensions together; an adversarially large (but
//! type-valid) configuration must fail loudly at the first overflowing
//! product instead of wrapping silently in release builds and feeding
//! plausible-looking garbage to everything built on top. One shared
//! fold keeps the panic contract (`"<what> overflows <type>"`) uniform.

/// Product of `usize` shape factors, panicking with context on
/// overflow.
///
/// # Example
///
/// ```
/// use capsacc_tensor::checked_product;
/// assert_eq!(checked_product("tile", &[3, 4, 5]), 60);
/// ```
///
/// # Panics
///
/// Panics with `"<what> overflows usize"` if the product overflows.
pub fn checked_product(what: &str, factors: &[usize]) -> usize {
    factors
        .iter()
        .try_fold(1usize, |acc, &f| acc.checked_mul(f))
        .unwrap_or_else(|| panic!("{what} overflows usize"))
}

/// Product of `u64` shape factors, panicking with context on overflow.
///
/// # Panics
///
/// Panics with `"<what> overflows u64"` if the product overflows.
pub fn checked_product_u64(what: &str, factors: &[u64]) -> u64 {
    factors
        .iter()
        .try_fold(1u64, |acc, &f| acc.checked_mul(f))
        .unwrap_or_else(|| panic!("{what} overflows u64"))
}

/// Audited widening of a dimension into cycle/byte accounting space.
///
/// The workspace-wide cast audit (`capsacc-lint`, rule `cast-audit`)
/// bans bare `as u64` in accounting code; this is the sanctioned
/// route. Infallible on every supported target (`usize` ≤ 64 bits),
/// and loud if an exotic future target ever breaks that assumption.
///
/// # Panics
///
/// Panics if `usize` is wider than 64 bits and the value overflows.
pub fn u64_from(x: usize) -> u64 {
    u64::try_from(x).expect("dimension exceeds u64")
}

/// Audited narrowing of a simulated quantity back into index space.
///
/// The inverse of [`u64_from`]: the sanctioned route where a cycle or
/// byte count (always `u64` in the simulated paths) must index host
/// memory. Panics instead of truncating on 32-bit hosts, so an
/// adversarially large configuration fails loudly rather than
/// aliasing buffers.
///
/// # Panics
///
/// Panics if `x` does not fit in the host `usize`.
pub fn usize_from(x: u64) -> usize {
    usize::try_from(x).expect("shape exceeds usize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_products_are_exact() {
        assert_eq!(checked_product("x", &[]), 1);
        assert_eq!(checked_product("x", &[7]), 7);
        assert_eq!(checked_product("x", &[2, 3, 4]), 24);
        assert_eq!(checked_product_u64("x", &[1 << 32, 1 << 31]), 1 << 63);
    }

    #[test]
    #[should_panic(expected = "tile count overflows usize")]
    fn usize_overflow_panics_with_context() {
        checked_product("tile count", &[usize::MAX, 2]);
    }

    #[test]
    #[should_panic(expected = "cycle count overflows u64")]
    fn u64_overflow_panics_with_context() {
        checked_product_u64("cycle count", &[u64::MAX, 2]);
    }
}
