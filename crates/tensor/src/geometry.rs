//! Convolution geometry — the loop-nest bounds of Fig. 13 in the paper.

use crate::checked::{checked_product, checked_product_u64, u64_from};

/// Geometry of a 2-D convolution over `[C_in, H, W]` inputs.
///
/// This is the shape algebra behind the paper's mapping algorithm
/// (Fig. 13) and its per-layer mapping orders (Fig. 14): it answers how
/// many output pixels a layer has, how long an im2col patch is, how many
/// MACs the layer costs, and which input element each (patch, tap) pair
/// reads — the exact addressing the accelerator's Data Buffer performs.
///
/// # Example
///
/// ```
/// use capsacc_tensor::ConvGeometry;
/// // Conv1 of the CapsuleNet: 9×9, 256 channels, stride 1, no padding.
/// let g = ConvGeometry::new(1, 28, 28, 256, 9, 9, 1);
/// assert_eq!((g.out_h(), g.out_w()), (20, 20));
/// assert_eq!(g.output_len(), 20 * 20 * 256);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both spatial dimensions, as in the paper's layers).
    pub stride: usize,
}

impl ConvGeometry {
    /// Creates a geometry, validating that at least one output pixel
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if the stride is zero or the kernel exceeds the input.
    pub fn new(
        in_ch: usize,
        in_h: usize,
        in_w: usize,
        out_ch: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            k_h <= in_h && k_w <= in_w,
            "kernel {k_h}x{k_w} larger than input {in_h}x{in_w}"
        );
        assert!(in_ch > 0 && out_ch > 0 && k_h > 0 && k_w > 0);
        Self {
            in_ch,
            in_h,
            in_w,
            out_ch,
            k_h,
            k_w,
            stride,
        }
    }

    /// Output height: `(in_h - k_h) / stride + 1` (valid convolution).
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.in_h - self.k_h) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.in_w - self.k_w) / self.stride + 1
    }

    /// Number of output pixels (im2col rows): `out_h · out_w`.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    #[inline]
    pub fn patches(&self) -> usize {
        checked_product("patch count", &[self.out_h(), self.out_w()])
    }

    /// Length of one im2col patch (reduction dimension):
    /// `in_ch · k_h · k_w`.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    #[inline]
    pub fn patch_len(&self) -> usize {
        checked_product("patch length", &[self.in_ch, self.k_h, self.k_w])
    }

    /// Total elements in the output feature map.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    #[inline]
    pub fn output_len(&self) -> usize {
        checked_product("output length", &[self.patches(), self.out_ch])
    }

    /// Total elements in the input feature map.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    #[inline]
    pub fn input_len(&self) -> usize {
        checked_product("input length", &[self.in_ch, self.in_h, self.in_w])
    }

    /// Multiply-accumulate operations for the full layer.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `u64`.
    #[inline]
    pub fn macs(&self) -> u64 {
        checked_product_u64(
            "MAC count",
            &[
                u64_from(self.patches()),
                u64_from(self.patch_len()),
                u64_from(self.out_ch),
            ],
        )
    }

    /// Number of trainable parameters (`out_ch` biases included when
    /// `bias` is set) — the Table I accounting.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the count overflows `usize`.
    #[inline]
    pub fn parameter_count(&self, bias: bool) -> usize {
        checked_product("parameter count", &[self.out_ch, self.patch_len()])
            + if bias { self.out_ch } else { 0 }
    }

    /// The flat input index (into a row-major `[C_in, H, W]` tensor) read
    /// by tap `k` of patch `patch` — the Data-Buffer address generator.
    ///
    /// Tap order is `(channel, kernel_row, kernel_col)` row-major,
    /// matching the r/c/i loops of Fig. 13.
    ///
    /// # Panics
    ///
    /// Panics if `patch` or `k` are out of range.
    #[inline]
    pub fn input_index(&self, patch: usize, k: usize) -> usize {
        self.patch_origin(patch) + self.tap_offset(k)
    }

    /// The flat input index of patch `patch`'s top-left corner in
    /// channel 0 — the patch-dependent half of [`Self::input_index`].
    ///
    /// `input_index(p, k) = patch_origin(p) + tap_offset(k)` for every
    /// `(p, k)`: the address is affine in the two coordinates, which is
    /// what lets im2col staging precompute both halves once instead of
    /// re-deriving `div`/`mod` decompositions per element.
    ///
    /// # Panics
    ///
    /// Panics if `patch` is out of range.
    #[inline]
    pub fn patch_origin(&self, patch: usize) -> usize {
        assert!(patch < self.patches(), "patch {patch} out of range");
        let oy = patch / self.out_w();
        let ox = patch % self.out_w();
        (oy * self.stride) * self.in_w + ox * self.stride
    }

    /// The flat input offset of tap `k` relative to a patch origin —
    /// the tap-dependent half of [`Self::input_index`]. Tap order is
    /// `(channel, kernel_row, kernel_col)` row-major, matching the
    /// r/c/i loops of Fig. 13.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn tap_offset(&self, k: usize) -> usize {
        assert!(k < self.patch_len(), "tap {k} out of range");
        let c = k / (self.k_h * self.k_w);
        let rem = k % (self.k_h * self.k_w);
        let ky = rem / self.k_w;
        let kx = rem % self.k_w;
        (c * self.in_h + ky) * self.in_w + kx
    }

    /// All patch origins, in patch order (`patches()` entries).
    pub fn patch_origins(&self) -> Vec<usize> {
        (0..self.patches()).map(|p| self.patch_origin(p)).collect()
    }

    /// All tap offsets, in tap order (`patch_len()` entries).
    pub fn tap_offsets(&self) -> Vec<usize> {
        (0..self.patch_len()).map(|k| self.tap_offset(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The three CapsuleNet layers as geometries.
    fn conv1() -> ConvGeometry {
        ConvGeometry::new(1, 28, 28, 256, 9, 9, 1)
    }
    fn primary_caps() -> ConvGeometry {
        ConvGeometry::new(256, 20, 20, 256, 9, 9, 2)
    }

    #[test]
    fn conv1_shapes_match_paper() {
        let g = conv1();
        assert_eq!(g.out_h(), 20);
        assert_eq!(g.out_w(), 20);
        // Table I: 784 inputs, 20992 parameters, 102400 outputs.
        assert_eq!(g.input_len(), 784);
        assert_eq!(g.parameter_count(true), 20_992);
        assert_eq!(g.output_len(), 102_400);
    }

    #[test]
    fn primarycaps_shapes_match_paper() {
        let g = primary_caps();
        assert_eq!(g.out_h(), 6);
        assert_eq!(g.out_w(), 6);
        // Table I: 102400 inputs, 5308672 parameters.
        assert_eq!(g.input_len(), 102_400);
        assert_eq!(g.parameter_count(true), 5_308_672);
        // 6·6·32 capsules × 8 dims = 9216 output elements (the paper's
        // Table I prints 102400 here — a documented erratum).
        assert_eq!(g.output_len(), 9216);
    }

    #[test]
    fn mac_counts() {
        assert_eq!(conv1().macs(), 20 * 20 * 81 * 256);
        assert_eq!(primary_caps().macs(), 6 * 6 * 81 * 256 * 256);
    }

    #[test]
    fn input_index_first_and_last_patch() {
        let g = ConvGeometry::new(2, 5, 5, 3, 3, 3, 2);
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
        // Patch 0, tap 0 = channel 0, (0,0).
        assert_eq!(g.input_index(0, 0), 0);
        // Patch 0, last tap = channel 1, (2,2) → (1·5+2)·5+2 = 37.
        assert_eq!(g.input_index(0, g.patch_len() - 1), 37);
        // Patch 3 (oy=1, ox=1, stride 2) tap 0 = channel 0, (2,2) → 12.
        assert_eq!(g.input_index(3, 0), 12);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        ConvGeometry::new(1, 5, 5, 1, 3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn oversized_kernel_rejected() {
        ConvGeometry::new(1, 5, 5, 1, 7, 3, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_index_bounds_checked() {
        let g = ConvGeometry::new(1, 5, 5, 1, 3, 3, 1);
        g.input_index(g.patches(), 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn adversarial_geometry_fails_loudly_instead_of_wrapping() {
        // A type-valid kernel-1 geometry whose output product exceeds
        // usize: patches() must panic with context, not wrap silently in
        // release builds and feed garbage to the cycle formulas.
        let g = ConvGeometry::new(1, 1 << 33, 1 << 33, 1, 1, 1, 1);
        let _ = g.patches();
    }

    proptest! {
        #[test]
        fn input_index_always_in_bounds(
            in_ch in 1usize..4, in_h in 3usize..10, in_w in 3usize..10,
            k in 1usize..4, stride in 1usize..3,
        ) {
            let k_h = k.min(in_h);
            let k_w = k.min(in_w);
            let g = ConvGeometry::new(in_ch, in_h, in_w, 2, k_h, k_w, stride);
            for p in 0..g.patches() {
                for t in 0..g.patch_len() {
                    prop_assert!(g.input_index(p, t) < g.input_len());
                }
            }
        }

        #[test]
        fn input_index_is_origin_plus_tap(
            in_ch in 1usize..4, in_h in 3usize..10, in_w in 3usize..10,
            k in 1usize..4, stride in 1usize..3,
        ) {
            let k_h = k.min(in_h);
            let k_w = k.min(in_w);
            let g = ConvGeometry::new(in_ch, in_h, in_w, 2, k_h, k_w, stride);
            let origins = g.patch_origins();
            let taps = g.tap_offsets();
            prop_assert_eq!(origins.len(), g.patches());
            prop_assert_eq!(taps.len(), g.patch_len());
            for (p, &origin) in origins.iter().enumerate() {
                for (t, &tap) in taps.iter().enumerate() {
                    prop_assert_eq!(g.input_index(p, t), origin + tap);
                }
            }
        }

        #[test]
        fn stride_one_taps_are_contiguous_rows(
            in_h in 3usize..8, in_w in 3usize..8,
        ) {
            let g = ConvGeometry::new(1, in_h, in_w, 1, 3, 3, 1);
            // Within one kernel row the taps address consecutive inputs.
            for p in 0..g.patches() {
                for row in 0..3 {
                    let base = g.input_index(p, row * 3);
                    prop_assert_eq!(g.input_index(p, row * 3 + 1), base + 1);
                    prop_assert_eq!(g.input_index(p, row * 3 + 2), base + 2);
                }
            }
        }
    }
}
