//! Floating-point reference operators.
//!
//! These are the "software prediction" side of the paper's validation
//! flow (Fig. 15): straightforward, obviously-correct `f32`
//! implementations used as the semantic baseline for both the quantized
//! reference ([`crate::qops`]) and the cycle-accurate simulator.

use crate::geometry::ConvGeometry;
use crate::tensor::Tensor;

/// Valid 2-D convolution of a `[C_in, H, W]` input with
/// `[C_out, C_in, K_h, K_w]` weights and optional per-channel biases,
/// producing `[C_out, OH, OW]`.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `geometry` or the bias
/// length is not `C_out`.
///
/// # Example
///
/// ```
/// use capsacc_tensor::{ConvGeometry, Tensor, ops::conv2d};
/// let g = ConvGeometry::new(1, 3, 3, 1, 2, 2, 1);
/// let input = Tensor::from_fn(&[1, 3, 3], |i| (i[1] * 3 + i[2]) as f32);
/// let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4])?;
/// let out = conv2d(&input, &weight, None, &g);
/// assert_eq!(out.shape(), &[1, 2, 2]);
/// assert_eq!(out.data()[0], 0.0 + 1.0 + 3.0 + 4.0);
/// # Ok::<(), capsacc_tensor::ShapeError>(())
/// ```
pub fn conv2d(
    input: &Tensor<f32>,
    weight: &Tensor<f32>,
    bias: Option<&[f32]>,
    geometry: &ConvGeometry,
) -> Tensor<f32> {
    let g = geometry;
    assert_eq!(input.shape(), &[g.in_ch, g.in_h, g.in_w], "input shape");
    assert_eq!(
        weight.shape(),
        &[g.out_ch, g.in_ch, g.k_h, g.k_w],
        "weight shape"
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), g.out_ch, "bias length");
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros(&[g.out_ch, oh, ow]);
    let patch_len = g.patch_len();
    for oc in 0..g.out_ch {
        let wbase = oc * patch_len;
        for p in 0..g.patches() {
            let mut acc = bias.map_or(0.0, |b| b[oc]);
            for k in 0..patch_len {
                acc += input.data()[g.input_index(p, k)] * weight.data()[wbase + k];
            }
            out.data_mut()[oc * oh * ow + p] = acc;
        }
    }
    out
}

/// Dense matrix product of `[M, K] × [K, N] → [M, N]`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions {k} != {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for kk in 0..k {
            let av = a.data()[i * k + kk];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out.data_mut()[i * n + j] += av * b.data()[kk * n + j];
            }
        }
    }
    out
}

/// In-place rectified linear unit.
pub fn relu_inplace(t: &mut Tensor<f32>) {
    for v in t.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Euclidean norm of a slice.
pub fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Numerically-stable softmax of a slice.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn softmax(v: &[f32]) -> Vec<f32> {
    assert!(!v.is_empty(), "softmax over an empty vector");
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = v.iter().map(|x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// The squashing nonlinearity of Equation (1) applied to a vector,
/// returning the squashed vector and the input norm.
pub fn squash(v: &[f32]) -> (Vec<f32>, f32) {
    let n = norm(v);
    let gain = if n == 0.0 { 0.0 } else { n / (1.0 + n * n) };
    (v.iter().map(|x| x * gain).collect(), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conv2d_identity_kernel() {
        let g = ConvGeometry::new(1, 4, 4, 1, 1, 1, 1);
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let weight = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]).unwrap();
        let out = conv2d(&input, &weight, None, &g);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_stride_two() {
        let g = ConvGeometry::new(1, 4, 4, 1, 2, 2, 2);
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![0.25; 4]).unwrap();
        let out = conv2d(&input, &weight, None, &g);
        // Averages of the four 2×2 blocks.
        assert_eq!(out.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn conv2d_multichannel_with_bias() {
        let g = ConvGeometry::new(2, 2, 2, 2, 2, 2, 1);
        let input = Tensor::from_vec(&[2, 2, 2], vec![1.0; 8]).unwrap();
        let weight = Tensor::from_fn(&[2, 2, 2, 2], |i| if i[0] == 0 { 1.0 } else { 2.0 });
        let out = conv2d(&input, &weight, Some(&[10.0, 20.0]), &g);
        assert_eq!(out.data(), &[18.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "input shape")]
    fn conv2d_validates_input_shape() {
        let g = ConvGeometry::new(1, 4, 4, 1, 2, 2, 1);
        let input: Tensor<f32> = Tensor::zeros(&[1, 3, 3]);
        let weight: Tensor<f32> = Tensor::zeros(&[1, 1, 2, 2]);
        conv2d(&input, &weight, None, &g);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_validates_dims() {
        let a: Tensor<f32> = Tensor::zeros(&[2, 3]);
        let b: Tensor<f32> = Tensor::zeros(&[2, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn relu_zeros_negatives() {
        let mut t = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        relu_inplace(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn softmax_matches_known() {
        let s = softmax(&[0.0, 0.0]);
        assert!((s[0] - 0.5).abs() < 1e-6);
        let s = softmax(&[1000.0, 0.0]); // stability under large logits
        assert!((s[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn squash_shrinks_and_keeps_direction() {
        let (v, n) = squash(&[3.0, 4.0]);
        assert!((n - 5.0).abs() < 1e-6);
        // gain = 5/26; output norm = 25/26 < 1.
        assert!((norm(&v) - 25.0 / 26.0).abs() < 1e-5);
        assert!(v[0] > 0.0 && v[1] > 0.0);
        assert!((v[1] / v[0] - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn squash_zero_vector_is_zero() {
        let (v, n) = squash(&[0.0, 0.0, 0.0]);
        assert_eq!(n, 0.0);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_matches_im2col_matmul() {
        // conv2d must equal the matmul of the im2col matrices — this is
        // the equivalence the accelerator's mapping relies on.
        let g = ConvGeometry::new(3, 6, 6, 4, 3, 3, 1);
        let input = Tensor::from_fn(&[3, 6, 6], |i| ((i[0] * 37 + i[1] * 5 + i[2]) % 11) as f32);
        let weight = Tensor::from_fn(&[4, 3, 3, 3], |i| {
            ((i[0] + i[1] * 2 + i[2] + i[3]) % 7) as f32 - 3.0
        });
        let direct = conv2d(&input, &weight, None, &g);

        let patches = Tensor::from_fn(&[g.patches(), g.patch_len()], |i| {
            input.data()[g.input_index(i[0], i[1])]
        });
        let wmat = weight.clone().reshape(&[4, g.patch_len()]).unwrap();
        // direct[oc][p] == Σ_k patches[p][k] · wmat[oc][k]
        for oc in 0..4 {
            for p in 0..g.patches() {
                let mut acc = 0.0;
                for k in 0..g.patch_len() {
                    acc +=
                        patches.data()[p * g.patch_len() + k] * wmat.data()[oc * g.patch_len() + k];
                }
                assert_eq!(direct.data()[oc * g.patches() + p], acc);
            }
        }
    }

    proptest! {
        #[test]
        fn softmax_is_distribution(v in proptest::collection::vec(-10f32..10.0, 1..20)) {
            let s = softmax(&v);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn squash_norm_below_one(v in proptest::collection::vec(-100f32..100.0, 1..16)) {
            let (sv, _) = squash(&v);
            prop_assert!(norm(&sv) < 1.0 + 1e-4);
        }

        #[test]
        fn matmul_identity(n in 1usize..6) {
            let a = Tensor::from_fn(&[n, n], |i| (i[0] * n + i[1]) as f32);
            let id = Tensor::from_fn(&[n, n], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
            let product = matmul(&a, &id);
            prop_assert_eq!(product.data(), a.data());
        }
    }
}
