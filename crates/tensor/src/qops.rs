//! Bit-exact 8-bit fixed-point operators.
//!
//! Every multiply–accumulate here follows the paper's PE datapath: an
//! exact 8×8-bit widening multiply feeding a saturating 25-bit
//! accumulator, then a shift/round/saturate requantization back to 8
//! bits. The cycle-accurate simulator produces identical bit patterns; if
//! these ever disagree, the simulator has a bug (or the accumulation
//! saturated — see [`MacStats::saturations`]).

use capsacc_fixed::{requantize, Acc25};

use crate::checked::u64_from;

use crate::geometry::ConvGeometry;
use crate::tensor::Tensor;

/// Statistics of a quantized operator invocation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MacStats {
    /// Multiply–accumulate operations performed.
    pub macs: u64,
    /// Accumulator saturation events. Non-zero means the 25-bit datapath
    /// clipped and bit-exactness against a differently-ordered
    /// accumulation is no longer guaranteed.
    pub saturations: u64,
}

impl MacStats {
    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: MacStats) {
        self.macs += other.macs;
        self.saturations += other.saturations;
    }
}

/// Quantized valid 2-D convolution.
///
/// `input` is `[C_in, H, W]`, `weight` is `[C_out, C_in, K_h, K_w]`, and
/// `bias` (if any) is per-output-channel at the *product* fraction width
/// (data_frac + weight_frac), exactly as a hardware bias would be staged
/// into the accumulator. The 25-bit accumulation is requantized with
/// `shift` and optionally rectified.
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `geometry` or the bias
/// length is not `C_out`.
///
/// # Example
///
/// ```
/// use capsacc_tensor::{ConvGeometry, Tensor, qops::conv2d_q8};
/// let g = ConvGeometry::new(1, 2, 2, 1, 2, 2, 1);
/// let input = Tensor::from_vec(&[1, 2, 2], vec![32i8, 32, 32, 32])?; // 1.0 each (Q2.5)
/// let weight = Tensor::from_vec(&[1, 1, 2, 2], vec![16i8, 16, 16, 16])?; // 0.25 each (Q1.6)
/// let (out, stats) = conv2d_q8(&input, &weight, None, &g, 6, false);
/// assert_eq!(out.data(), &[32]); // 4 · (1.0 · 0.25) = 1.0 → Q2.5 code 32
/// assert_eq!(stats.macs, 4);
/// # Ok::<(), capsacc_tensor::ShapeError>(())
/// ```
pub fn conv2d_q8(
    input: &Tensor<i8>,
    weight: &Tensor<i8>,
    bias: Option<&[i32]>,
    geometry: &ConvGeometry,
    shift: u32,
    relu: bool,
) -> (Tensor<i8>, MacStats) {
    let g = geometry;
    assert_eq!(input.shape(), &[g.in_ch, g.in_h, g.in_w], "input shape");
    assert_eq!(
        weight.shape(),
        &[g.out_ch, g.in_ch, g.k_h, g.k_w],
        "weight shape"
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), g.out_ch, "bias length");
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros(&[g.out_ch, oh, ow]);
    let mut stats = MacStats::default();
    let patch_len = g.patch_len();
    for oc in 0..g.out_ch {
        let wbase = oc * patch_len;
        for p in 0..g.patches() {
            let mut acc = Acc25::from_raw(bias.map_or(0, |b| i64::from(b[oc])));
            for k in 0..patch_len {
                let d = i64::from(input.data()[g.input_index(p, k)]);
                let w = i64::from(weight.data()[wbase + k]);
                acc.add_product(d * w);
            }
            stats.macs += u64_from(patch_len);
            stats.saturations += u64::from(acc.saturation_events());
            let mut v = requantize(acc.raw(), shift);
            if relu && v < 0 {
                v = 0;
            }
            out.data_mut()[oc * oh * ow + p] = v;
        }
    }
    (out, stats)
}

/// Quantized dense matrix product `[M, K] × [K, N] → [M, N]`, requantized
/// with `shift`.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or either tensor is not rank 2.
pub fn matmul_q8(a: &Tensor<i8>, b: &Tensor<i8>, shift: u32) -> (Tensor<i8>, MacStats) {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions {k} != {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let mut stats = MacStats::default();
    for i in 0..m {
        for j in 0..n {
            let mut acc = Acc25::new();
            for kk in 0..k {
                let lhs = i64::from(a.data()[i * k + kk]);
                let rhs = i64::from(b.data()[kk * n + j]);
                acc.add_product(lhs * rhs);
            }
            stats.macs += u64_from(k);
            stats.saturations += u64::from(acc.saturation_events());
            out.data_mut()[i * n + j] = requantize(acc.raw(), shift);
        }
    }
    (out, stats)
}

/// Quantized dot product of two `i8` slices, returning the raw 25-bit
/// accumulator value (before requantization) and its saturation count.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_q8(a: &[i8], b: &[i8]) -> (i64, u32) {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = Acc25::new();
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product(i64::from(x) * i64::from(y));
    }
    (acc.raw(), acc.saturation_events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conv_q8_matches_f32_when_exact() {
        // Inputs/weights chosen so every product and sum is exactly
        // representable: the quantized conv must equal the f32 conv.
        let g = ConvGeometry::new(2, 4, 4, 3, 3, 3, 1);
        let input = Tensor::from_fn(&[2, 4, 4], |i| ((i[0] + i[1] + i[2]) % 5) as i8 * 8);
        let weight = Tensor::from_fn(&[3, 2, 3, 3], |i| {
            ((i[0] * 3 + i[1] + i[2] * i[3]) % 7) as i8 - 3
        });
        let (out, stats) = conv2d_q8(&input, &weight, None, &g, 6, false);

        let inf = input.map(|&v| v as f32 / 32.0);
        let wf = weight.map(|&v| v as f32 / 64.0);
        let outf = crate::ops::conv2d(&inf, &wf, None, &g);
        for (q, f) in out.data().iter().zip(outf.data()) {
            let fq = (f * 32.0).round().clamp(-128.0, 127.0);
            assert_eq!(*q as f32, fq);
        }
        assert_eq!(stats.saturations, 0);
        assert_eq!(stats.macs, g.macs());
    }

    #[test]
    fn conv_q8_bias_is_staged_at_product_frac() {
        let g = ConvGeometry::new(1, 1, 1, 1, 1, 1, 1);
        let input = Tensor::from_vec(&[1, 1, 1], vec![0i8]).unwrap();
        let weight = Tensor::from_vec(&[1, 1, 1, 1], vec![0i8]).unwrap();
        // Bias of 1.0 at frac 11 = 2048 → requantized by 6 → Q2.5 code 32.
        let (out, _) = conv2d_q8(&input, &weight, Some(&[2048]), &g, 6, false);
        assert_eq!(out.data(), &[32]);
    }

    #[test]
    fn conv_q8_relu() {
        let g = ConvGeometry::new(1, 1, 1, 1, 1, 1, 1);
        let input = Tensor::from_vec(&[1, 1, 1], vec![32i8]).unwrap();
        let weight = Tensor::from_vec(&[1, 1, 1, 1], vec![-64i8]).unwrap();
        let (out, _) = conv2d_q8(&input, &weight, None, &g, 6, true);
        assert_eq!(out.data(), &[0]);
        let (out, _) = conv2d_q8(&input, &weight, None, &g, 6, false);
        assert_eq!(out.data(), &[-32]);
    }

    #[test]
    fn matmul_q8_small_exact() {
        // 1.0 (Q2.5) × 1.0 (Q1.6) with K=2 → 2.0 → Q2.5 code 64.
        let a = Tensor::from_vec(&[1, 2], vec![32i8, 32]).unwrap();
        let b = Tensor::from_vec(&[2, 1], vec![64i8, 64]).unwrap();
        let (c, stats) = matmul_q8(&a, &b, 6);
        assert_eq!(c.data(), &[64]);
        assert_eq!(stats.macs, 2);
    }

    #[test]
    fn matmul_q8_requantization_saturates() {
        let a = Tensor::from_vec(&[1, 4], vec![127i8; 4]).unwrap();
        let b = Tensor::from_vec(&[4, 1], vec![127i8; 4]).unwrap();
        let (c, stats) = matmul_q8(&a, &b, 6);
        // 4 · 127 · 127 = 64516 ≫ 127 << 6: output saturates to 127,
        // but the 25-bit accumulator itself did not.
        assert_eq!(c.data(), &[127]);
        assert_eq!(stats.saturations, 0);
    }

    #[test]
    fn dot_q8_raw_accumulator() {
        let (raw, sat) = dot_q8(&[1, 2, 3], &[4, 5, 6]);
        assert_eq!(raw, 32);
        assert_eq!(sat, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_q8_validates_lengths() {
        dot_q8(&[1, 2], &[1]);
    }

    proptest! {
        #[test]
        fn matmul_q8_matches_i64_reference(
            m in 1usize..4, k in 1usize..8, n in 1usize..4,
            seed in any::<u64>(),
        ) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as i8
            };
            let a = Tensor::from_fn(&[m, k], |_| next());
            let b = Tensor::from_fn(&[k, n], |_| next());
            let (c, stats) = matmul_q8(&a, &b, 6);
            prop_assert_eq!(stats.saturations, 0); // K ≤ 8 cannot saturate 25 bits
            for i in 0..m {
                for j in 0..n {
                    let exact: i64 = (0..k)
                        .map(|kk| a.data()[i * k + kk] as i64 * b.data()[kk * n + j] as i64)
                        .sum();
                    prop_assert_eq!(c.data()[i * n + j], capsacc_fixed::requantize(exact, 6));
                }
            }
        }

        #[test]
        fn conv_q8_never_panics_on_valid_geometry(
            in_ch in 1usize..3, size in 3usize..8, out_ch in 1usize..3, kk in 2usize..4,
        ) {
            let g = ConvGeometry::new(in_ch, size, size, out_ch, kk, kk, 1);
            let input = Tensor::from_fn(&[in_ch, size, size], |i| (i[1] as i8).wrapping_sub(i[2] as i8));
            let weight = Tensor::from_fn(&[out_ch, in_ch, kk, kk], |i| i[3] as i8 - 1);
            let (out, stats) = conv2d_q8(&input, &weight, None, &g, 6, true);
            prop_assert_eq!(out.len(), g.output_len());
            prop_assert_eq!(stats.macs, g.macs());
            prop_assert!(out.iter().all(|&v| v >= 0)); // ReLU applied
        }
    }
}
