//! # capsacc-power — analytical 32nm area and power model
//!
//! The paper synthesizes CapsAcc with Synopsys Design Compiler in a 32nm
//! library at 1.05 V and reports the design parameters (Table II), the
//! per-component area/power (Table III) and their breakdowns (Fig. 18).
//! We cannot run a proprietary synthesis flow, so this crate substitutes
//! a *component-level analytical model*: per-PE, per-unit and
//! per-SRAM-byte constants calibrated to Table III at the paper's design
//! point, applied structurally to any [`AcceleratorConfig`].
//!
//! What the substitution preserves: the breakdown *structure* (buffers
//! dominate, the systolic array is ≈ 1/4 of the budget — Fig. 18) and
//! the ability to run the scaling ablations the design implies (array
//! and buffer sizing, voltage/frequency scaling with `P ∝ f·V²`).
//!
//! # Example
//!
//! ```
//! use capsacc_power::PowerModel;
//! use capsacc_core::AcceleratorConfig;
//! let report = PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper());
//! // Table II: 2.90 mm², 202 mW.
//! assert!((report.total_area_mm2() - 2.90).abs() < 0.02);
//! assert!((report.total_power_mw() - 202.0).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use capsacc_core::AcceleratorConfig;

pub mod energy;

pub use energy::{EnergyComponent, EnergyModel, EnergyReport};

/// Area/power estimate for one architectural component (a Table III
/// row).
#[derive(Clone, PartialEq, Debug)]
pub struct ComponentEstimate {
    /// Component name as printed in Table III.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// A complete estimate (all Table III rows).
#[derive(Clone, PartialEq, Debug)]
pub struct PowerReport {
    /// Per-component estimates in Table III order.
    pub components: Vec<ComponentEstimate>,
}

impl PowerReport {
    /// Total area in mm² (the Table II figure).
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum::<f64>() / 1e6
    }

    /// Total power in mW (the Table II figure).
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Area breakdown fractions per component (Fig. 18a).
    pub fn area_breakdown(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_area_mm2() * 1e6;
        self.components
            .iter()
            .map(|c| (c.name, c.area_um2 / total))
            .collect()
    }

    /// Power breakdown fractions per component (Fig. 18b).
    pub fn power_breakdown(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_power_mw();
        self.components
            .iter()
            .map(|c| (c.name, c.power_mw / total))
            .collect()
    }

    /// Looks a component up by its Table III name.
    pub fn component(&self, name: &str) -> Option<&ComponentEstimate> {
        self.components.iter().find(|c| c.name == name)
    }
}

/// The Table II synthesis-parameter summary.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SynthesisSummary {
    /// Technology node in nm.
    pub tech_node_nm: u32,
    /// Supply voltage in volts.
    pub voltage_v: f64,
    /// Core area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Clock frequency in MHz.
    pub clock_mhz: u64,
    /// Datapath operand width in bits.
    pub bit_width: u32,
    /// On-chip memory in MB (a design parameter, not part of the core
    /// area — Table III does not include it).
    pub onchip_memory_mb: f64,
}

/// The calibrated component model.
///
/// All constants are per-instance or per-byte values derived from
/// Table III at the paper's 16×16 / 256 KiB / 64 KiB / 24 KiB design
/// point; dynamic power scales as `f · V²` from the 250 MHz / 1.05 V
/// calibration corner.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PowerModel {
    /// Technology node (informational).
    pub tech_node_nm: u32,
    /// Supply voltage (V) — power scales quadratically from 1.05 V.
    pub voltage_v: f64,
    /// Area per PE (µm²): multiplier, adder, four registers.
    pub pe_area_um2: f64,
    /// Power per PE at the calibration corner (mW).
    pub pe_power_mw: f64,
    /// Area per accumulator unit (FIFO + adder) per column (µm²).
    pub accumulator_area_um2: f64,
    /// Power per accumulator unit (mW).
    pub accumulator_power_mw: f64,
    /// Area per activation unit (ReLU + Norm + Squash + Softmax LUTs)
    /// (µm²).
    pub activation_area_um2: f64,
    /// Power per activation unit (mW).
    pub activation_power_mw: f64,
    /// SRAM area per byte for the Data Buffer (µm²).
    pub data_buffer_area_per_byte: f64,
    /// SRAM power per byte for the Data Buffer (mW).
    pub data_buffer_power_per_byte: f64,
    /// SRAM area per byte for the Routing Buffer (µm²).
    pub routing_buffer_area_per_byte: f64,
    /// SRAM power per byte for the Routing Buffer (mW).
    pub routing_buffer_power_per_byte: f64,
    /// SRAM area per byte for the Weight Buffer (µm²).
    pub weight_buffer_area_per_byte: f64,
    /// SRAM power per byte for the Weight Buffer (mW).
    pub weight_buffer_power_per_byte: f64,
    /// Fixed area of the control logic ("Other") (µm²).
    pub control_area_um2: f64,
    /// Fixed power of the control logic (mW).
    pub control_power_mw: f64,
}

impl PowerModel {
    /// Calibration corner frequency (MHz).
    pub const CAL_CLOCK_MHZ: f64 = 250.0;
    /// Calibration corner voltage (V).
    pub const CAL_VOLTAGE_V: f64 = 1.05;

    /// The 32nm model calibrated to Table III.
    pub fn cmos_32nm() -> Self {
        Self {
            tech_node_nm: 32,
            voltage_v: 1.05,
            // Systolic Array: 680 525 µm² / 46.09 mW over 256 PEs.
            pe_area_um2: 680_525.0 / 256.0,
            pe_power_mw: 46.09 / 256.0,
            // Accumulator: 311 961 µm² / 22.80 mW over 16 columns.
            accumulator_area_um2: 311_961.0 / 16.0,
            accumulator_power_mw: 22.80 / 16.0,
            // Activation: 143 045 µm² / 5.94 mW over 16 units.
            activation_area_um2: 143_045.0 / 16.0,
            activation_power_mw: 5.94 / 16.0,
            // Data Buffer: 1 332 349 µm² / 95.96 mW over 256 KiB.
            data_buffer_area_per_byte: 1_332_349.0 / 262_144.0,
            data_buffer_power_per_byte: 95.96 / 262_144.0,
            // Routing Buffer: 316 226 µm² / 22.78 mW over 64 KiB.
            routing_buffer_area_per_byte: 316_226.0 / 65_536.0,
            routing_buffer_power_per_byte: 22.78 / 65_536.0,
            // Weight Buffer: 115 643 µm² / 8.34 mW over 24 KiB.
            weight_buffer_area_per_byte: 115_643.0 / 24_576.0,
            weight_buffer_power_per_byte: 8.34 / 24_576.0,
            // Other: 4 330 µm² / 0.13 mW.
            control_area_um2: 4_330.0,
            control_power_mw: 0.13,
        }
    }

    /// Dynamic-power scale factor relative to the calibration corner:
    /// `(f / 250 MHz) · (V / 1.05)²`.
    pub fn power_scale(&self, cfg: &AcceleratorConfig) -> f64 {
        (cfg.clock_mhz as f64 / Self::CAL_CLOCK_MHZ)
            * (self.voltage_v / Self::CAL_VOLTAGE_V).powi(2)
    }

    /// Estimates area and power for a configuration (the Table III
    /// rows).
    pub fn estimate(&self, cfg: &AcceleratorConfig) -> PowerReport {
        let scale = self.power_scale(cfg);
        let pes = cfg.pe_count() as f64;
        let cols = cfg.cols as f64;
        let au = cfg.activation_units as f64;
        let components = vec![
            ComponentEstimate {
                name: "Accumulator",
                area_um2: self.accumulator_area_um2 * cols,
                power_mw: self.accumulator_power_mw * cols * scale,
            },
            ComponentEstimate {
                name: "Activation",
                area_um2: self.activation_area_um2 * au,
                power_mw: self.activation_power_mw * au * scale,
            },
            ComponentEstimate {
                name: "Data Buffer",
                area_um2: self.data_buffer_area_per_byte * cfg.data_buffer_bytes as f64,
                power_mw: self.data_buffer_power_per_byte * cfg.data_buffer_bytes as f64 * scale,
            },
            ComponentEstimate {
                name: "Routing Buffer",
                area_um2: self.routing_buffer_area_per_byte * cfg.routing_buffer_bytes as f64,
                power_mw: self.routing_buffer_power_per_byte
                    * cfg.routing_buffer_bytes as f64
                    * scale,
            },
            ComponentEstimate {
                name: "Weight Buffer",
                area_um2: self.weight_buffer_area_per_byte * cfg.weight_buffer_bytes as f64,
                power_mw: self.weight_buffer_power_per_byte
                    * cfg.weight_buffer_bytes as f64
                    * scale,
            },
            ComponentEstimate {
                name: "Systolic Array",
                area_um2: self.pe_area_um2 * pes,
                power_mw: self.pe_power_mw * pes * scale,
            },
            ComponentEstimate {
                name: "Other",
                area_um2: self.control_area_um2,
                power_mw: self.control_power_mw * scale,
            },
        ];
        PowerReport { components }
    }

    /// The Table II summary for a configuration.
    pub fn table2(&self, cfg: &AcceleratorConfig) -> SynthesisSummary {
        let report = self.estimate(cfg);
        SynthesisSummary {
            tech_node_nm: self.tech_node_nm,
            voltage_v: self.voltage_v,
            area_mm2: report.total_area_mm2(),
            power_mw: report.total_power_mw(),
            clock_mhz: cfg.clock_mhz,
            bit_width: 8,
            onchip_memory_mb: cfg.onchip_memory_bytes as f64 / (1024.0 * 1024.0),
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::cmos_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_report() -> PowerReport {
        PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper())
    }

    #[test]
    fn table3_rows_match_paper() {
        let r = paper_report();
        let expect = [
            ("Accumulator", 311_961.0, 22.80),
            ("Activation", 143_045.0, 5.94),
            ("Data Buffer", 1_332_349.0, 95.96),
            ("Routing Buffer", 316_226.0, 22.78),
            ("Weight Buffer", 115_643.0, 8.34),
            ("Systolic Array", 680_525.0, 46.09),
            ("Other", 4_330.0, 0.13),
        ];
        for (name, area, power) in expect {
            let c = r.component(name).expect(name);
            assert!(
                (c.area_um2 - area).abs() / area < 0.005,
                "{name} area {} vs {area}",
                c.area_um2
            );
            assert!(
                (c.power_mw - power).abs() / power < 0.005,
                "{name} power {} vs {power}",
                c.power_mw
            );
        }
    }

    #[test]
    fn table2_totals_match_paper() {
        let t2 = PowerModel::cmos_32nm().table2(&AcceleratorConfig::paper());
        assert_eq!(t2.tech_node_nm, 32);
        assert_eq!(t2.voltage_v, 1.05);
        assert!((t2.area_mm2 - 2.90).abs() < 0.02, "area = {}", t2.area_mm2);
        assert!((t2.power_mw - 202.0).abs() < 2.0, "power = {}", t2.power_mw);
        assert_eq!(t2.clock_mhz, 250);
        assert_eq!(t2.bit_width, 8);
        assert_eq!(t2.onchip_memory_mb, 8.0);
    }

    #[test]
    fn fig18_breakdown_shape() {
        // Fig. 18: Data Buffer ≈ 46% area / 47% power; Systolic Array
        // ≈ 23%; buffers dominate and the array is about a quarter.
        let r = paper_report();
        let area: std::collections::HashMap<_, _> = r.area_breakdown().into_iter().collect();
        let power: std::collections::HashMap<_, _> = r.power_breakdown().into_iter().collect();
        assert!((area["Data Buffer"] - 0.46).abs() < 0.02);
        assert!((area["Systolic Array"] - 0.23).abs() < 0.02);
        assert!((power["Data Buffer"] - 0.47).abs() < 0.02);
        assert!((power["Systolic Array"] - 0.23).abs() < 0.02);
        let buffers = area["Data Buffer"] + area["Routing Buffer"] + area["Weight Buffer"];
        assert!(buffers > 0.5, "buffers dominate area: {buffers}");
    }

    #[test]
    fn power_scales_with_frequency() {
        let model = PowerModel::cmos_32nm();
        let mut half = AcceleratorConfig::paper();
        half.clock_mhz = 125;
        let full = model.estimate(&AcceleratorConfig::paper());
        let halved = model.estimate(&half);
        let ratio = halved.total_power_mw() / full.total_power_mw();
        assert!((ratio - 0.5).abs() < 1e-9);
        // Area is frequency-independent.
        assert_eq!(halved.total_area_mm2(), full.total_area_mm2());
    }

    #[test]
    fn power_scales_quadratically_with_voltage() {
        let mut model = PowerModel::cmos_32nm();
        model.voltage_v = 2.1; // 2× the calibration corner
        let r = model.estimate(&AcceleratorConfig::paper());
        let base = paper_report();
        let ratio = r.total_power_mw() / base.total_power_mw();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn array_scaling_ablation() {
        // An 8×8 array quarters the systolic-array area; a 32×32 array
        // quadruples it.
        let model = PowerModel::cmos_32nm();
        let mut small = AcceleratorConfig::paper();
        small.rows = 8;
        small.cols = 8;
        small.activation_units = 8;
        let mut big = AcceleratorConfig::paper();
        big.rows = 32;
        big.cols = 32;
        big.activation_units = 32;
        let base = paper_report()
            .component("Systolic Array")
            .expect("sa")
            .area_um2;
        let s = model.estimate(&small);
        let b = model.estimate(&big);
        assert!((s.component("Systolic Array").expect("sa").area_um2 / base - 0.25).abs() < 1e-9);
        assert!((b.component("Systolic Array").expect("sa").area_um2 / base - 4.0).abs() < 1e-9);
    }

    #[test]
    fn breakdowns_sum_to_one() {
        let r = paper_report();
        let sa: f64 = r.area_breakdown().iter().map(|(_, f)| f).sum();
        let sp: f64 = r.power_breakdown().iter().map(|(_, f)| f).sum();
        assert!((sa - 1.0).abs() < 1e-9);
        assert!((sp - 1.0).abs() < 1e-9);
    }
}
