//! Per-inference energy accounting.
//!
//! The paper reports average power (Table II); energy per inference is
//! the natural derived metric for an embedded accelerator ("this work
//! enables highly-efficient CapsuleNets inference on embedded
//! platforms"). This model decomposes it mechanistically:
//!
//! ```text
//! E = macs · e_mac  +  Σ traffic(kind) · e_byte(kind)  +  P_static · t
//! ```
//!
//! with per-operation energies typical of 8-bit arithmetic and SRAM at
//! 32nm, and the static share calibrated so the total reconciles with
//! the Table II average power × the measured inference time.

use capsacc_core::{AcceleratorConfig, MemoryKind, TrafficReport};

use crate::PowerModel;

/// One energy component (for breakdown reporting).
#[derive(Clone, PartialEq, Debug)]
pub struct EnergyComponent {
    /// Component label.
    pub name: &'static str,
    /// Energy in microjoules.
    pub energy_uj: f64,
}

/// Per-inference energy report.
#[derive(Clone, PartialEq, Debug)]
pub struct EnergyReport {
    /// Components: compute, buffers, memories, static.
    pub components: Vec<EnergyComponent>,
    /// Inference latency used for the static term (µs).
    pub latency_us: f64,
}

impl EnergyReport {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.components.iter().map(|c| c.energy_uj).sum()
    }

    /// Average power implied by this energy and latency (mW).
    pub fn average_power_mw(&self) -> f64 {
        if self.latency_us <= 0.0 {
            return 0.0;
        }
        self.total_uj() / self.latency_us * 1000.0
    }

    /// Amortized energy per inference in microjoules for a report that
    /// covers a batch of `batch` inferences (traffic and latency summed
    /// over the batch).
    ///
    /// Batched weight residency shows up directly here: the weight-side
    /// traffic term is paid once per batch, so energy per inference
    /// falls as the batch grows.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn per_inference_uj(&self, batch: u64) -> f64 {
        assert!(batch > 0, "batch must be non-zero");
        self.total_uj() / batch as f64
    }

    /// Breakdown fractions.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_uj();
        self.components
            .iter()
            .map(|c| (c.name, c.energy_uj / total))
            .collect()
    }
}

/// The calibrated energy model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnergyModel {
    /// Energy per 8-bit MAC including array overhead (pJ).
    pub mac_pj: f64,
    /// Energy per buffer byte accessed (pJ).
    pub buffer_pj_per_byte: f64,
    /// Energy per on-chip memory byte accessed (pJ).
    pub memory_pj_per_byte: f64,
    /// Fraction of the Table II power that is static (leakage + clock
    /// tree), burned for the whole inference latency.
    pub static_fraction: f64,
}

impl EnergyModel {
    /// 32nm constants: ~1.5 pJ per 8-bit MAC with array overheads,
    /// ~3 pJ/B for the small SRAM buffers, ~20 pJ/B for the large
    /// on-chip memories, and a 30% static share.
    pub fn cmos_32nm() -> Self {
        Self {
            mac_pj: 1.5,
            buffer_pj_per_byte: 3.0,
            memory_pj_per_byte: 20.0,
            static_fraction: 0.30,
        }
    }

    /// Computes the per-inference energy from the MAC count, the traffic
    /// report and the inference latency.
    pub fn inference_energy(
        &self,
        cfg: &AcceleratorConfig,
        macs: u64,
        traffic: &TrafficReport,
        latency_us: f64,
    ) -> EnergyReport {
        let buffer_bytes: u64 = [
            MemoryKind::DataBuffer,
            MemoryKind::RoutingBuffer,
            MemoryKind::WeightBuffer,
        ]
        .iter()
        .map(|&k| traffic.counter(k).total())
        .sum();
        let memory_bytes: u64 = [MemoryKind::DataMemory, MemoryKind::WeightMemory]
            .iter()
            .map(|&k| traffic.counter(k).total())
            .sum();
        let static_mw =
            PowerModel::cmos_32nm().estimate(cfg).total_power_mw() * self.static_fraction;
        let components = vec![
            EnergyComponent {
                name: "Compute (MACs)",
                energy_uj: macs as f64 * self.mac_pj / 1e6,
            },
            EnergyComponent {
                name: "Buffers",
                energy_uj: buffer_bytes as f64 * self.buffer_pj_per_byte / 1e6,
            },
            EnergyComponent {
                name: "On-chip memory",
                energy_uj: memory_bytes as f64 * self.memory_pj_per_byte / 1e6,
            },
            EnergyComponent {
                name: "Static",
                energy_uj: static_mw * latency_us / 1000.0 / 1000.0 * 1000.0,
            },
        ];
        EnergyReport {
            components,
            latency_us,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cmos_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetConfig;
    use capsacc_core::timing;

    #[test]
    fn mnist_energy_reconciles_with_table2_power() {
        // E/t should land near the Table II average power (202 mW):
        // the model is calibrated to agree within ~35%.
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let t = timing::full_inference(&cfg, &net);
        let traffic = timing::traffic_estimate(&cfg, &net);
        let macs = net.conv1_geometry().macs()
            + net.primary_caps_geometry().macs()
            + (net.num_primary_caps()
                * net.num_classes
                * net.class_caps_dim
                * (net.pc_caps_dim + 2 * net.routing_iterations - 1)) as u64;
        let report =
            EnergyModel::cmos_32nm().inference_energy(&cfg, macs, &traffic, t.total_time_us(&cfg));
        let implied = report.average_power_mw();
        assert!(
            (130.0..275.0).contains(&implied),
            "implied power {implied} mW vs Table II 202 mW"
        );
        assert!(report.total_uj() > 100.0, "µJ-scale energy expected");
    }

    #[test]
    fn breakdown_sums_to_one() {
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let t = timing::full_inference(&cfg, &net);
        let traffic = timing::traffic_estimate(&cfg, &net);
        let report = EnergyModel::cmos_32nm().inference_energy(
            &cfg,
            200_000_000,
            &traffic,
            t.total_time_us(&cfg),
        );
        let sum: f64 = report.breakdown().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(report.components.len(), 4);
    }

    #[test]
    fn zero_latency_has_zero_static_energy() {
        let cfg = AcceleratorConfig::paper();
        let traffic = TrafficReport::default();
        let report = EnergyModel::cmos_32nm().inference_energy(&cfg, 0, &traffic, 0.0);
        assert_eq!(report.total_uj(), 0.0);
        assert_eq!(report.average_power_mw(), 0.0);
    }

    #[test]
    fn feedback_reuse_saves_energy() {
        let net = CapsNetConfig::mnist();
        let on = AcceleratorConfig::paper();
        let mut off = on;
        off.dataflow.routing_feedback = false;
        let model = EnergyModel::cmos_32nm();
        let e = |cfg: &AcceleratorConfig| {
            let t = timing::full_inference(cfg, &net);
            let traffic = timing::traffic_estimate(cfg, &net);
            model
                .inference_energy(cfg, 200_000_000, &traffic, t.total_time_us(cfg))
                .total_uj()
        };
        assert!(e(&off) > e(&on), "feedback reuse should save energy");
    }
}
