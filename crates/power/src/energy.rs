//! Per-inference energy accounting.
//!
//! The paper reports average power (Table II); energy per inference is
//! the natural derived metric for an embedded accelerator ("this work
//! enables highly-efficient CapsuleNets inference on embedded
//! platforms"). This model decomposes it mechanistically:
//!
//! ```text
//! E = macs · e_mac  +  Σ traffic(kind) · e_byte(kind)  +  P_static · t
//! ```
//!
//! with per-operation energies typical of 8-bit arithmetic and SRAM at
//! 32nm, and the static share calibrated so the total reconciles with
//! the Table II average power × the measured inference time.

use capsacc_core::{AcceleratorConfig, MemoryKind, TrafficReport};
use capsacc_memory::{MemReport, MemoryConfig, SpmKind};

use crate::PowerModel;

/// One energy component (for breakdown reporting).
#[derive(Clone, PartialEq, Debug)]
pub struct EnergyComponent {
    /// Component label.
    pub name: &'static str,
    /// Energy in microjoules.
    pub energy_uj: f64,
}

/// Per-inference energy report.
#[derive(Clone, PartialEq, Debug)]
pub struct EnergyReport {
    /// Components: compute, buffers, memories, static.
    pub components: Vec<EnergyComponent>,
    /// Inference latency used for the static term (µs).
    pub latency_us: f64,
}

impl EnergyReport {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.components.iter().map(|c| c.energy_uj).sum()
    }

    /// Average power implied by this energy and latency (mW).
    pub fn average_power_mw(&self) -> f64 {
        if self.latency_us <= 0.0 {
            return 0.0;
        }
        self.total_uj() / self.latency_us * 1000.0
    }

    /// Amortized energy per inference in microjoules for a report that
    /// covers a batch of `batch` inferences (traffic and latency summed
    /// over the batch).
    ///
    /// Batched weight residency shows up directly here: the weight-side
    /// traffic term is paid once per batch, so energy per inference
    /// falls as the batch grows.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn per_inference_uj(&self, batch: u64) -> f64 {
        assert!(batch > 0, "batch must be non-zero");
        self.total_uj() / batch as f64
    }

    /// Breakdown fractions.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_uj();
        self.components
            .iter()
            .map(|c| (c.name, c.energy_uj / total))
            .collect()
    }
}

/// The calibrated energy model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnergyModel {
    /// Energy per 8-bit MAC including array overhead (pJ).
    pub mac_pj: f64,
    /// Energy per buffer byte accessed (pJ).
    pub buffer_pj_per_byte: f64,
    /// Energy per on-chip memory byte accessed (pJ).
    pub memory_pj_per_byte: f64,
    /// Fraction of the Table II power that is static (leakage + clock
    /// tree), burned for the whole inference latency.
    pub static_fraction: f64,
    /// SPM access energy per byte at [`EnergyModel::spm_ref_bytes`]
    /// capacity (pJ/B). Scaled by `sqrt(capacity / ref)` à la CapStore:
    /// bigger scratchpads have longer bitlines and cost more per access.
    pub spm_pj_per_byte_ref: f64,
    /// Reference SPM capacity for the access-energy scaling (bytes).
    pub spm_ref_bytes: f64,
    /// Off-chip DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// SPM leakage power density (mW per KiB of capacity).
    pub spm_leak_mw_per_kib: f64,
    /// Residual leakage fraction of a power-gated (retention-mode) SPM
    /// bank — the DESCNet sector-gating model.
    pub gated_leak_fraction: f64,
}

impl EnergyModel {
    /// 32nm constants: ~1.5 pJ per 8-bit MAC with array overheads,
    /// ~3 pJ/B for the small SRAM buffers, ~20 pJ/B for the large
    /// on-chip memories, and a 30% static share. SPM accesses cost
    /// ~2 pJ/B at a 32 KiB reference capacity (sqrt-scaled), DRAM
    /// ~100 pJ/B, and gated SPM sectors retain ~10% of their leakage.
    pub fn cmos_32nm() -> Self {
        Self {
            mac_pj: 1.5,
            buffer_pj_per_byte: 3.0,
            memory_pj_per_byte: 20.0,
            static_fraction: 0.30,
            spm_pj_per_byte_ref: 2.0,
            spm_ref_bytes: 32.0 * 1024.0,
            dram_pj_per_byte: 100.0,
            spm_leak_mw_per_kib: 0.02,
            gated_leak_fraction: 0.10,
        }
    }

    /// Per-byte access energy of an SPM of `bytes` capacity: the
    /// CapStore capacity scaling `e(ref) · sqrt(bytes / ref)`.
    pub fn spm_access_pj_per_byte(&self, bytes: usize) -> f64 {
        self.spm_pj_per_byte_ref * (bytes as f64 / self.spm_ref_bytes).sqrt()
    }

    /// Energy components of the memory hierarchy over `total_cycles` of
    /// execution: per-SPM dynamic energy (capacity-scaled), SPM leakage
    /// (reduced to busy banks + retention when `cfg.memory.power_gating`
    /// is set), and off-chip DRAM energy. The SPM capacities and gating
    /// flag come from `cfg.memory` — the same configuration the
    /// `report` was produced under.
    pub fn memory_hierarchy_energy(
        &self,
        cfg: &AcceleratorConfig,
        report: &MemReport,
        total_cycles: u64,
    ) -> Vec<EnergyComponent> {
        let mem: &MemoryConfig = &cfg.memory;
        let spm_cfg = |kind: SpmKind| match kind {
            SpmKind::Data => &mem.data_spm,
            SpmKind::Weight => &mem.weight_spm,
            SpmKind::Accumulator => &mem.acc_spm,
        };
        let mut components = Vec::new();
        let mut leak_uj = 0.0;
        let time_us = cfg.cycles_to_us(total_cycles);
        for (kind, name) in [
            (SpmKind::Data, "Data SPM"),
            (SpmKind::Weight, "Weight SPM"),
            (SpmKind::Accumulator, "Accumulator SPM"),
        ] {
            let spm = spm_cfg(kind);
            let activity = report.spm(kind);
            components.push(EnergyComponent {
                name,
                energy_uj: activity.total_bytes() as f64 * self.spm_access_pj_per_byte(spm.bytes)
                    / 1e6,
            });
            // Leakage: all banks leak all the time without gating; with
            // DESCNet sector gating, idle cycles leak only the retention
            // fraction (busy cycles approximate "some banks active").
            let leak_mw = spm.bytes as f64 / 1024.0 * self.spm_leak_mw_per_kib;
            let busy_frac = if total_cycles == 0 {
                0.0
            } else {
                (activity.busy_cycles.min(total_cycles)) as f64 / total_cycles as f64
            };
            let effective = if mem.power_gating {
                busy_frac + (1.0 - busy_frac) * self.gated_leak_fraction
            } else {
                1.0
            };
            // mW · µs = nJ; /1000 → µJ.
            leak_uj += leak_mw * effective * time_us / 1000.0;
        }
        components.push(EnergyComponent {
            name: "SPM leakage",
            energy_uj: leak_uj,
        });
        components.push(EnergyComponent {
            name: "DRAM",
            energy_uj: report.offchip_bytes() as f64 * self.dram_pj_per_byte / 1e6,
        });
        components
    }

    /// Computes the per-inference energy with the memory hierarchy
    /// modeled explicitly: the flat per-byte terms of
    /// [`EnergyModel::inference_energy`] for the structures the
    /// hierarchy does not model (Routing Buffer, the on-chip memories)
    /// plus capacity-scaled SPM dynamic energy, gating-aware SPM leakage
    /// and DRAM energy from the [`MemReport`].
    pub fn inference_energy_mem(
        &self,
        cfg: &AcceleratorConfig,
        macs: u64,
        traffic: &TrafficReport,
        report: &MemReport,
        total_cycles: u64,
    ) -> EnergyReport {
        let latency_us = cfg.cycles_to_us(total_cycles);
        let memory_bytes: u64 = [MemoryKind::DataMemory, MemoryKind::WeightMemory]
            .iter()
            .map(|&k| traffic.counter(k).total())
            .sum();
        // The SPM-leakage component models the scratchpads' static power
        // explicitly (gating-aware), so their share is excluded from the
        // flat static term to avoid double counting.
        let power = PowerModel::cmos_32nm().estimate(cfg);
        let spm_static_mw: f64 = ["Data Buffer", "Weight Buffer", "Accumulator"]
            .iter()
            .filter_map(|n| power.component(n))
            .map(|c| c.power_mw)
            .sum();
        let static_mw = (power.total_power_mw() - spm_static_mw) * self.static_fraction;
        let mut components = vec![
            EnergyComponent {
                name: "Compute (MACs)",
                energy_uj: macs as f64 * self.mac_pj / 1e6,
            },
            EnergyComponent {
                name: "Routing Buffer",
                energy_uj: traffic.counter(MemoryKind::RoutingBuffer).total() as f64
                    * self.buffer_pj_per_byte
                    / 1e6,
            },
            EnergyComponent {
                name: "On-chip memory",
                energy_uj: memory_bytes as f64 * self.memory_pj_per_byte / 1e6,
            },
        ];
        components.extend(self.memory_hierarchy_energy(cfg, report, total_cycles));
        components.push(EnergyComponent {
            name: "Static",
            energy_uj: static_mw * latency_us / 1000.0,
        });
        EnergyReport {
            components,
            latency_us,
        }
    }

    /// Computes the per-inference energy from the MAC count, the traffic
    /// report and the inference latency.
    pub fn inference_energy(
        &self,
        cfg: &AcceleratorConfig,
        macs: u64,
        traffic: &TrafficReport,
        latency_us: f64,
    ) -> EnergyReport {
        let buffer_bytes: u64 = [
            MemoryKind::DataBuffer,
            MemoryKind::RoutingBuffer,
            MemoryKind::WeightBuffer,
        ]
        .iter()
        .map(|&k| traffic.counter(k).total())
        .sum();
        let memory_bytes: u64 = [MemoryKind::DataMemory, MemoryKind::WeightMemory]
            .iter()
            .map(|&k| traffic.counter(k).total())
            .sum();
        let static_mw =
            PowerModel::cmos_32nm().estimate(cfg).total_power_mw() * self.static_fraction;
        let components = vec![
            EnergyComponent {
                name: "Compute (MACs)",
                energy_uj: macs as f64 * self.mac_pj / 1e6,
            },
            EnergyComponent {
                name: "Buffers",
                energy_uj: buffer_bytes as f64 * self.buffer_pj_per_byte / 1e6,
            },
            EnergyComponent {
                name: "On-chip memory",
                energy_uj: memory_bytes as f64 * self.memory_pj_per_byte / 1e6,
            },
            EnergyComponent {
                name: "Static",
                energy_uj: static_mw * latency_us / 1000.0 / 1000.0 * 1000.0,
            },
        ];
        EnergyReport {
            components,
            latency_us,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cmos_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetConfig;
    use capsacc_core::timing;

    #[test]
    fn mnist_energy_reconciles_with_table2_power() {
        // E/t should land near the Table II average power (202 mW):
        // the model is calibrated to agree within ~35%.
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let t = timing::full_inference(&cfg, &net);
        let traffic = timing::traffic_estimate(&cfg, &net);
        let macs = net.conv1_geometry().macs()
            + net.primary_caps_geometry().macs()
            + (net.num_primary_caps()
                * net.num_classes
                * net.class_caps_dim
                * (net.pc_caps_dim + 2 * net.routing_iterations - 1)) as u64;
        let report =
            EnergyModel::cmos_32nm().inference_energy(&cfg, macs, &traffic, t.total_time_us(&cfg));
        let implied = report.average_power_mw();
        assert!(
            (130.0..275.0).contains(&implied),
            "implied power {implied} mW vs Table II 202 mW"
        );
        assert!(report.total_uj() > 100.0, "µJ-scale energy expected");
    }

    #[test]
    fn breakdown_sums_to_one() {
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let t = timing::full_inference(&cfg, &net);
        let traffic = timing::traffic_estimate(&cfg, &net);
        let report = EnergyModel::cmos_32nm().inference_energy(
            &cfg,
            200_000_000,
            &traffic,
            t.total_time_us(&cfg),
        );
        let sum: f64 = report.breakdown().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(report.components.len(), 4);
    }

    #[test]
    fn zero_latency_has_zero_static_energy() {
        let cfg = AcceleratorConfig::paper();
        let traffic = TrafficReport::default();
        let report = EnergyModel::cmos_32nm().inference_energy(&cfg, 0, &traffic, 0.0);
        assert_eq!(report.total_uj(), 0.0);
        assert_eq!(report.average_power_mw(), 0.0);
    }

    #[test]
    fn spm_access_energy_scales_with_capacity() {
        let m = EnergyModel::cmos_32nm();
        let at_ref = m.spm_access_pj_per_byte(32 * 1024);
        assert!((at_ref - m.spm_pj_per_byte_ref).abs() < 1e-12);
        // CapStore scaling: 4× the capacity → 2× the per-access energy.
        let at_4x = m.spm_access_pj_per_byte(4 * 32 * 1024);
        assert!((at_4x - 2.0 * at_ref).abs() < 1e-12);
        assert!(m.spm_access_pj_per_byte(1024) < at_ref);
    }

    #[test]
    fn memory_aware_energy_has_spm_dram_and_gating_terms() {
        use capsacc_core::MemoryConfig;
        let net = CapsNetConfig::mnist();
        let mut cfg = AcceleratorConfig::paper();
        cfg.memory = MemoryConfig::paper();
        let t = timing::full_inference_batch_mem(&cfg, &net, 4);
        let traffic = timing::batch_traffic_estimate(&cfg, &net, 4);
        let model = EnergyModel::cmos_32nm();
        let report =
            model.inference_energy_mem(&cfg, 200_000_000, &traffic, &t.report, t.total_cycles());
        let energy_of = |name: &str| {
            report
                .components
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.energy_uj)
                .expect("component present")
        };
        assert!(energy_of("Weight SPM") > 0.0);
        assert!(energy_of("DRAM") > 0.0);
        assert!(energy_of("SPM leakage") > 0.0);
        let sum: f64 = report.breakdown().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);

        // DESCNet sector gating reduces leakage (and only leakage).
        let mut ungated = cfg;
        ungated.memory.power_gating = false;
        let r2 = model.inference_energy_mem(
            &ungated,
            200_000_000,
            &traffic,
            &t.report,
            t.total_cycles(),
        );
        let leak_of = |r: &EnergyReport| {
            r.components
                .iter()
                .find(|c| c.name == "SPM leakage")
                .map(|c| c.energy_uj)
                .expect("leakage present")
        };
        assert!(leak_of(&r2) > leak_of(&report));
        assert!(r2.total_uj() > report.total_uj());
    }

    #[test]
    fn feedback_reuse_saves_energy() {
        let net = CapsNetConfig::mnist();
        let on = AcceleratorConfig::paper();
        let mut off = on;
        off.dataflow.routing_feedback = false;
        let model = EnergyModel::cmos_32nm();
        let e = |cfg: &AcceleratorConfig| {
            let t = timing::full_inference(cfg, &net);
            let traffic = timing::traffic_estimate(cfg, &net);
            model
                .inference_energy(cfg, 200_000_000, &traffic, t.total_time_us(cfg))
                .total_uj()
        };
        assert!(e(&off) > e(&on), "feedback reuse should save energy");
    }
}
