//! Architecture algebra and the Table I parameter accounting.

use capsacc_tensor::{checked_product, ConvGeometry};

/// The CapsuleNet architecture parameters (Fig. 1 of the paper).
///
/// The MNIST instance is [`CapsNetConfig::mnist`]; scaled-down instances
/// ([`CapsNetConfig::tiny`], [`CapsNetConfig::small`]) exercise the same
/// code paths at test-friendly sizes.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::CapsNetConfig;
/// let cfg = CapsNetConfig::mnist();
/// assert_eq!(cfg.num_primary_caps(), 1152);
/// assert_eq!(cfg.total_parameters(), 6_804_224);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CapsNetConfig {
    /// Input image side length (28 for MNIST).
    pub input_side: usize,
    /// Conv1 output channels (256).
    pub conv1_channels: usize,
    /// Conv1 kernel side (9).
    pub conv1_kernel: usize,
    /// Conv1 stride (1).
    pub conv1_stride: usize,
    /// PrimaryCaps capsule channels (32).
    pub pc_channels: usize,
    /// PrimaryCaps capsule dimension (8).
    pub pc_caps_dim: usize,
    /// PrimaryCaps kernel side (9).
    pub pc_kernel: usize,
    /// PrimaryCaps stride (2).
    pub pc_stride: usize,
    /// Number of output classes (10).
    pub num_classes: usize,
    /// ClassCaps capsule dimension (16).
    pub class_caps_dim: usize,
    /// Routing-by-agreement iterations (3).
    pub routing_iterations: usize,
}

/// Parameter/shape accounting for one layer — one row of Table I.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LayerAccounting {
    /// Layer name as printed in the paper.
    pub name: &'static str,
    /// Number of input elements.
    pub inputs: usize,
    /// Number of trainable parameters.
    pub parameters: usize,
    /// Number of output elements.
    pub outputs: usize,
}

impl CapsNetConfig {
    /// The MNIST CapsuleNet of the paper (Fig. 1).
    pub fn mnist() -> Self {
        Self {
            input_side: 28,
            conv1_channels: 256,
            conv1_kernel: 9,
            conv1_stride: 1,
            pc_channels: 32,
            pc_caps_dim: 8,
            pc_kernel: 9,
            pc_stride: 2,
            num_classes: 10,
            class_caps_dim: 16,
            routing_iterations: 3,
        }
    }

    /// A miniature instance for fast unit tests (32 primary capsules of
    /// dimension 4, 4 classes).
    pub fn tiny() -> Self {
        Self {
            input_side: 12,
            conv1_channels: 8,
            conv1_kernel: 3,
            conv1_stride: 1,
            pc_channels: 2,
            pc_caps_dim: 4,
            pc_kernel: 3,
            pc_stride: 2,
            num_classes: 4,
            class_caps_dim: 4,
            routing_iterations: 3,
        }
    }

    /// A mid-size instance for integration tests (same structure as
    /// MNIST, roughly 1/16 the compute).
    pub fn small() -> Self {
        Self {
            input_side: 20,
            conv1_channels: 32,
            conv1_kernel: 5,
            conv1_stride: 1,
            pc_channels: 8,
            pc_caps_dim: 8,
            pc_kernel: 5,
            pc_stride: 2,
            num_classes: 10,
            class_caps_dim: 16,
            routing_iterations: 3,
        }
    }

    /// Geometry of the Conv1 layer (single grayscale input channel).
    pub fn conv1_geometry(&self) -> ConvGeometry {
        ConvGeometry::new(
            1,
            self.input_side,
            self.input_side,
            self.conv1_channels,
            self.conv1_kernel,
            self.conv1_kernel,
            self.conv1_stride,
        )
    }

    /// Geometry of the PrimaryCaps layer, treated as a convolution with
    /// `pc_channels · pc_caps_dim` output channels (Sec. V-B: "we treat
    /// the 8D capsule as a convolutional layer with 8 output channels").
    pub fn primary_caps_geometry(&self) -> ConvGeometry {
        let g1 = self.conv1_geometry();
        ConvGeometry::new(
            self.conv1_channels,
            g1.out_h(),
            g1.out_w(),
            self.pc_channels * self.pc_caps_dim,
            self.pc_kernel,
            self.pc_kernel,
            self.pc_stride,
        )
    }

    /// Side length of the PrimaryCaps spatial grid (6 for MNIST).
    pub fn pc_grid(&self) -> usize {
        self.primary_caps_geometry().out_h()
    }

    /// Number of primary capsules: `grid² · pc_channels` (1152 for
    /// MNIST).
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    pub fn num_primary_caps(&self) -> usize {
        let g = self.primary_caps_geometry();
        checked_product(
            "primary capsule count",
            &[g.out_h(), g.out_w(), self.pc_channels],
        )
    }

    /// Trainable parameters of Conv1 (weights + biases): 20 992.
    pub fn conv1_parameters(&self) -> usize {
        self.conv1_geometry().parameter_count(true)
    }

    /// Trainable parameters of PrimaryCaps: 5 308 672.
    pub fn primary_caps_parameters(&self) -> usize {
        self.primary_caps_geometry().parameter_count(true)
    }

    /// Trainable parameters of ClassCaps (the `W_ij` matrices, no bias):
    /// 1 474 560.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    pub fn class_caps_parameters(&self) -> usize {
        checked_product(
            "ClassCaps parameter count",
            &[
                self.num_primary_caps(),
                self.num_classes,
                self.pc_caps_dim,
                self.class_caps_dim,
            ],
        )
    }

    /// Run-time coupling coefficients `c_ij` (not trainable parameters,
    /// listed separately in Table I): 11 520.
    ///
    /// # Panics
    ///
    /// Panics (instead of wrapping) if the product overflows `usize`.
    pub fn coupling_coefficient_count(&self) -> usize {
        checked_product(
            "coupling coefficient count",
            &[self.num_primary_caps(), self.num_classes],
        )
    }

    /// All trainable parameters (Conv1 + PrimaryCaps + ClassCaps).
    pub fn total_parameters(&self) -> usize {
        self.conv1_parameters() + self.primary_caps_parameters() + self.class_caps_parameters()
    }

    /// The Table I rows, including the run-time coupling coefficients.
    ///
    /// Note: for PrimaryCaps *outputs* the paper prints 102 400, which is
    /// the Conv1 output count; the geometric value is
    /// `grid² · pc_channels · pc_caps_dim` = 9216. We report the
    /// geometric value (see EXPERIMENTS.md for the erratum discussion).
    pub fn table1(&self) -> Vec<LayerAccounting> {
        let g1 = self.conv1_geometry();
        let gp = self.primary_caps_geometry();
        let pc_out = self.num_primary_caps() * self.pc_caps_dim;
        let cc_out = self.num_classes * self.class_caps_dim;
        vec![
            LayerAccounting {
                name: "Conv1",
                inputs: g1.input_len(),
                parameters: self.conv1_parameters(),
                outputs: g1.output_len(),
            },
            LayerAccounting {
                name: "PrimaryCaps",
                inputs: gp.input_len(),
                parameters: self.primary_caps_parameters(),
                outputs: pc_out,
            },
            LayerAccounting {
                name: "ClassCaps",
                inputs: pc_out,
                parameters: self.class_caps_parameters(),
                outputs: cc_out,
            },
            LayerAccounting {
                name: "Coupling Coeff",
                inputs: cc_out,
                parameters: self.coupling_coefficient_count(),
                outputs: cc_out,
            },
        ]
    }

    /// Validates the configuration (all dimensions non-zero, at least one
    /// routing iteration, PrimaryCaps grid non-empty).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.routing_iterations == 0 {
            return Err("routing_iterations must be at least 1".to_owned());
        }
        if self.num_classes < 2 {
            return Err("num_classes must be at least 2".to_owned());
        }
        if self.pc_caps_dim == 0 || self.class_caps_dim == 0 {
            return Err("capsule dimensions must be non-zero".to_owned());
        }
        // Geometry constructors panic on impossible shapes; probe them.
        let g1 = self.conv1_geometry();
        if g1.out_h() < self.pc_kernel {
            return Err(format!(
                "PrimaryCaps kernel {} larger than Conv1 output {}",
                self.pc_kernel,
                g1.out_h()
            ));
        }
        Ok(())
    }
}

impl Default for CapsNetConfig {
    /// The MNIST instance.
    fn default() -> Self {
        Self::mnist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_matches_table1_exactly() {
        let rows = CapsNetConfig::mnist().table1();
        // Paper Table I, row by row.
        assert_eq!(rows[0].inputs, 784);
        assert_eq!(rows[0].parameters, 20_992);
        assert_eq!(rows[0].outputs, 102_400);
        assert_eq!(rows[1].inputs, 102_400);
        assert_eq!(rows[1].parameters, 5_308_672);
        assert_eq!(rows[2].parameters, 1_474_560);
        assert_eq!(rows[2].outputs, 160);
        assert_eq!(rows[3].inputs, 160);
        assert_eq!(rows[3].parameters, 11_520);
        assert_eq!(rows[3].outputs, 160);
    }

    #[test]
    fn primarycaps_output_erratum() {
        // The paper prints 102 400 for PrimaryCaps outputs; the geometric
        // value is 9216. We deliberately report the geometric value.
        let rows = CapsNetConfig::mnist().table1();
        assert_eq!(rows[1].outputs, 9216);
        assert_ne!(rows[1].outputs, 102_400);
    }

    #[test]
    fn parameter_distribution_matches_fig5() {
        // Fig. 5: <1% Conv1, 78% PrimaryCaps, 22% ClassCaps, <1% coupling.
        let cfg = CapsNetConfig::mnist();
        let total = cfg.total_parameters() as f64;
        assert!((cfg.conv1_parameters() as f64) / total < 0.01);
        let pc = cfg.primary_caps_parameters() as f64 / total;
        assert!((pc - 0.78).abs() < 0.01, "PrimaryCaps share = {pc}");
        let cc = cfg.class_caps_parameters() as f64 / total;
        assert!((cc - 0.22).abs() < 0.01, "ClassCaps share = {cc}");
        assert!((cfg.coupling_coefficient_count() as f64) / total < 0.01);
    }

    #[test]
    fn mnist_capsule_counts() {
        let cfg = CapsNetConfig::mnist();
        assert_eq!(cfg.pc_grid(), 6);
        assert_eq!(cfg.num_primary_caps(), 1152);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn adversarial_capsule_count_fails_loudly_instead_of_wrapping() {
        // grid² ≈ 2^54 × 2^12 channels = 2^66 capsules: the product must
        // panic with context here, not wrap to a small garbage value
        // that every downstream cycle formula would silently trust.
        let net = CapsNetConfig {
            input_side: 1 << 27,
            conv1_channels: 1,
            conv1_kernel: 1,
            conv1_stride: 1,
            pc_channels: 1 << 12,
            pc_caps_dim: 8,
            pc_kernel: 1,
            pc_stride: 1,
            num_classes: 10,
            class_caps_dim: 16,
            routing_iterations: 3,
        };
        let _ = net.num_primary_caps();
    }

    #[test]
    fn eight_bit_weights_fit_8mb() {
        // Sec. III-A: "an on-chip memory size of 8MB is large enough to
        // contain every parameter" at 8-bit weights.
        let bytes = CapsNetConfig::mnist().total_parameters();
        assert!(bytes <= 8 * 1024 * 1024);
    }

    #[test]
    fn tiny_and_small_validate() {
        CapsNetConfig::tiny().validate().unwrap();
        CapsNetConfig::small().validate().unwrap();
        CapsNetConfig::mnist().validate().unwrap();
    }

    #[test]
    fn tiny_shapes() {
        let cfg = CapsNetConfig::tiny();
        assert_eq!(cfg.conv1_geometry().out_h(), 10);
        assert_eq!(cfg.pc_grid(), 4);
        assert_eq!(cfg.num_primary_caps(), 32);
    }

    #[test]
    fn validation_rejects_zero_routing() {
        let cfg = CapsNetConfig {
            routing_iterations: 0,
            ..CapsNetConfig::tiny()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_mnist() {
        assert_eq!(CapsNetConfig::default(), CapsNetConfig::mnist());
    }
}
