//! Floating-point CapsuleNet inference — the software golden model.

use capsacc_tensor::{ops, Tensor};

use crate::arch::CapsNetConfig;
use crate::params::CapsNetParams;
use crate::routing::{route_f32, RoutingResult, RoutingVariant};

/// Output of a floating-point inference pass, with intermediate tensors
/// retained for validation against the quantized model and simulator.
#[derive(Clone, PartialEq, Debug)]
pub struct FloatOutput {
    /// Conv1 activations `[conv1_channels, H1, W1]`.
    pub conv1_out: Tensor<f32>,
    /// Squashed primary capsules `[num_primary_caps, pc_caps_dim]`.
    pub capsules: Tensor<f32>,
    /// Prediction vectors `û_{j|i}` as `[in_caps, classes, class_caps_dim]`.
    pub u_hat: Tensor<f32>,
    /// Routing outcome (class capsules, couplings, op counts).
    pub routing: RoutingResult,
}

impl FloatOutput {
    /// Per-class capsule norms.
    pub fn class_norms(&self) -> Vec<f32> {
        self.routing.class_norms()
    }

    /// Predicted class index.
    pub fn predicted(&self) -> usize {
        self.routing.predicted()
    }
}

/// Rearranges a PrimaryCaps convolution output
/// `[pc_channels · caps_dim, H, W]` into capsule vectors
/// `[H · W · pc_channels, caps_dim]`.
///
/// Capsule `i = (ch · H + y) · W + x` takes element `e` from channel
/// `ch · caps_dim + e` at spatial position `(y, x)` — the canonical
/// ordering shared by the float model, the quantized model and the
/// simulator's Data-Buffer addressing.
///
/// # Panics
///
/// Panics if the channel count is not a multiple of `caps_dim`.
pub fn primary_capsules<T: Copy + Default>(
    pc_out: &Tensor<T>,
    pc_channels: usize,
    caps_dim: usize,
) -> Tensor<T> {
    let shape = pc_out.shape();
    assert_eq!(shape.len(), 3, "PrimaryCaps output must be [C, H, W]");
    assert_eq!(
        shape[0],
        pc_channels * caps_dim,
        "channel count {} != pc_channels {} · caps_dim {}",
        shape[0],
        pc_channels,
        caps_dim
    );
    let (h, w) = (shape[1], shape[2]);
    Tensor::from_fn(&[h * w * pc_channels, caps_dim], |i| {
        let (cap, e) = (i[0], i[1]);
        let ch = cap / (h * w);
        let rem = cap % (h * w);
        let (y, x) = (rem / w, rem % w);
        pc_out[[ch * caps_dim + e, y, x]]
    })
}

/// Runs a full floating-point inference pass.
///
/// # Panics
///
/// Panics if `image` is not `[1, input_side, input_side]` or the
/// parameter shapes disagree with `cfg`.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::{infer_f32, CapsNetConfig, CapsNetParams, RoutingVariant};
/// use capsacc_tensor::Tensor;
/// let cfg = CapsNetConfig::tiny();
/// let params = CapsNetParams::generate(&cfg, 1);
/// let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] + i[2]) % 5) as f32 / 5.0);
/// let out = infer_f32(&cfg, &params, &image, RoutingVariant::SkipFirstSoftmax);
/// assert!(out.predicted() < cfg.num_classes);
/// ```
pub fn infer_f32(
    cfg: &CapsNetConfig,
    params: &CapsNetParams,
    image: &Tensor<f32>,
    variant: RoutingVariant,
) -> FloatOutput {
    let g1 = cfg.conv1_geometry();
    let gp = cfg.primary_caps_geometry();
    assert_eq!(
        image.shape(),
        &[1, cfg.input_side, cfg.input_side],
        "image shape"
    );

    // Conv1 + ReLU.
    let mut conv1_out = ops::conv2d(image, &params.conv1_w, Some(&params.conv1_b), &g1);
    ops::relu_inplace(&mut conv1_out);

    // PrimaryCaps convolution (no ReLU — squash is the nonlinearity).
    let pc_out = ops::conv2d(&conv1_out, &params.pc_w, Some(&params.pc_b), &gp);
    let raw_caps = primary_capsules(&pc_out, cfg.pc_channels, cfg.pc_caps_dim);

    // Squash each capsule vector.
    let dim = cfg.pc_caps_dim;
    let mut capsules: Tensor<f32> = Tensor::zeros(raw_caps.shape());
    for (dst, src) in capsules
        .data_mut()
        .chunks_mut(dim)
        .zip(raw_caps.data().chunks(dim))
    {
        let (v, _) = ops::squash(src);
        dst.copy_from_slice(&v);
    }

    // ClassCaps prediction vectors û_{j|i} = W_ij · u_i.
    let (in_caps, classes, out_dim, in_dim) = (
        cfg.num_primary_caps(),
        cfg.num_classes,
        cfg.class_caps_dim,
        cfg.pc_caps_dim,
    );
    assert_eq!(
        params.w_class.shape(),
        &[in_caps, classes, out_dim, in_dim],
        "w_class shape"
    );
    let u_hat = Tensor::from_fn(&[in_caps, classes, out_dim], |i| {
        let (cap, class, e) = (i[0], i[1], i[2]);
        let wbase = ((cap * classes + class) * out_dim + e) * in_dim;
        let ubase = cap * in_dim;
        (0..in_dim)
            .map(|d| params.w_class.data()[wbase + d] * capsules.data()[ubase + d])
            .sum()
    });

    let routing = route_f32(&u_hat, cfg.routing_iterations, variant);

    FloatOutput {
        conv1_out,
        capsules,
        u_hat,
        routing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(side: usize) -> Tensor<f32> {
        Tensor::from_fn(&[1, side, side], |i| {
            let (y, x) = (i[1] as f32, i[2] as f32);
            let c = side as f32 / 2.0;
            let d2 = (y - c) * (y - c) + (x - c) * (x - c);
            (-d2 / 18.0).exp()
        })
    }

    #[test]
    fn tiny_inference_runs_end_to_end() {
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 2);
        let out = infer_f32(
            &cfg,
            &params,
            &test_image(12),
            RoutingVariant::SkipFirstSoftmax,
        );
        assert_eq!(out.conv1_out.shape(), &[8, 10, 10]);
        assert_eq!(out.capsules.shape(), &[32, 4]);
        assert_eq!(out.u_hat.shape(), &[32, 4, 4]);
        assert_eq!(out.routing.class_caps.shape(), &[4, 4]);
        assert!(out.predicted() < 4);
    }

    #[test]
    fn conv1_is_rectified() {
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 3);
        let out = infer_f32(&cfg, &params, &test_image(12), RoutingVariant::Original);
        assert!(out.conv1_out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn capsule_norms_bounded_by_squash() {
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 4);
        let out = infer_f32(
            &cfg,
            &params,
            &test_image(12),
            RoutingVariant::SkipFirstSoftmax,
        );
        for caps in out.capsules.data().chunks(cfg.pc_caps_dim) {
            assert!(ops::norm(caps) < 1.0);
        }
        for n in out.class_norms() {
            assert!((0.0..1.0).contains(&n));
        }
    }

    #[test]
    fn primary_capsule_ordering() {
        // 2 channels of dim 2 on a 2×2 grid; value encodes (ch, e, y, x).
        let pc_out = Tensor::from_fn(&[4, 2, 2], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f32);
        let caps = primary_capsules(&pc_out, 2, 2);
        assert_eq!(caps.shape(), &[8, 2]);
        // Capsule 0 = ch 0, (y=0, x=0): elements from channels 0 and 1.
        assert_eq!(caps[[0, 0]], 0.0);
        assert_eq!(caps[[0, 1]], 100.0);
        // Capsule 3 = ch 0, (y=1, x=1): channels 0,1 at (1,1).
        assert_eq!(caps[[3, 0]], 11.0);
        assert_eq!(caps[[3, 1]], 111.0);
        // Capsule 4 = ch 1, (y=0, x=0): channels 2,3.
        assert_eq!(caps[[4, 0]], 200.0);
        assert_eq!(caps[[4, 1]], 300.0);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn primary_capsules_validates_channels() {
        let pc_out: Tensor<f32> = Tensor::zeros(&[5, 2, 2]);
        primary_capsules(&pc_out, 2, 2);
    }

    #[test]
    fn variants_identical_end_to_end() {
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 6);
        let img = test_image(12);
        let a = infer_f32(&cfg, &params, &img, RoutingVariant::Original);
        let b = infer_f32(&cfg, &params, &img, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(a.routing.class_caps, b.routing.class_caps);
        assert_eq!(a.predicted(), b.predicted());
    }

    #[test]
    fn different_images_give_different_outputs() {
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 7);
        let a = infer_f32(
            &cfg,
            &params,
            &test_image(12),
            RoutingVariant::SkipFirstSoftmax,
        );
        let blank: Tensor<f32> = Tensor::zeros(&[1, 12, 12]);
        let b = infer_f32(&cfg, &params, &blank, RoutingVariant::SkipFirstSoftmax);
        assert_ne!(a.routing.class_caps, b.routing.class_caps);
    }
}
