//! Quantized activation pipelines — the functional behaviour of the
//! Norm, Squash and Softmax units (Fig. 11e–g), shared verbatim between
//! the quantized reference model and the cycle-accurate simulator.

use capsacc_fixed::{norm_code, ExpLut, NumericConfig, SquareLut, SquashLut};
use capsacc_tensor::u64_from;

/// All hardware LUTs plus the numeric configuration, bundled so the
/// reference model and the simulator construct *identical* tables.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::QuantPipeline;
/// use capsacc_fixed::NumericConfig;
/// let p = QuantPipeline::new(NumericConfig::default());
/// // Norm of the zero vector is zero; squash leaves it at zero.
/// let (v, norm) = p.squash_vec(&[0, 0, 0, 0]);
/// assert_eq!(norm, 0);
/// assert_eq!(v, vec![0, 0, 0, 0]);
/// ```
#[derive(Clone, Debug)]
pub struct QuantPipeline {
    cfg: NumericConfig,
    squash: SquashLut,
    exp: ExpLut,
    square: SquareLut,
}

impl QuantPipeline {
    /// Builds the three LUTs for a numeric configuration.
    pub fn new(cfg: NumericConfig) -> Self {
        Self {
            cfg,
            squash: SquashLut::new(cfg),
            exp: ExpLut::new(cfg),
            square: SquareLut::new(cfg),
        }
    }

    /// The numeric configuration.
    pub fn config(&self) -> NumericConfig {
        self.cfg
    }

    /// The squash LUT (for components that need direct access).
    pub fn squash_lut(&self) -> &SquashLut {
        &self.squash
    }

    /// The exponential LUT.
    pub fn exp_lut(&self) -> &ExpLut {
        &self.exp
    }

    /// The square LUT.
    pub fn square_lut(&self) -> &SquareLut {
        &self.square
    }

    /// The Norm unit: squares each element through the 12-bit LUT,
    /// accumulates, and takes the integer square root — producing the
    /// 8-bit norm code (`norm_frac` fraction bits).
    ///
    /// In hardware this takes `n + 1` cycles for an `n`-element vector
    /// (Sec. IV-C); the cycle cost lives in the simulator, the arithmetic
    /// lives here.
    pub fn norm8(&self, v: &[i8]) -> u8 {
        let sum: u64 = v
            .iter()
            .map(|&x| u64::from(self.square.lookup(i16::from(x))))
            .sum();
        norm_code(sum, self.cfg.square_frac, self.cfg.norm_frac)
    }

    /// The Squash unit applied to a capsule vector: computes the norm,
    /// then squashes every element through the 2048-entry LUT. Returns
    /// the squashed vector and the norm code.
    pub fn squash_vec(&self, v: &[i8]) -> (Vec<i8>, u8) {
        let norm = self.norm8(v);
        let out = v
            .iter()
            .map(|&x| self.squash.squash_element(x, norm))
            .collect();
        (out, norm)
    }

    /// The Softmax unit over a logit vector, producing coupling
    /// coefficients in the `coupling_frac` format.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    pub fn softmax(&self, logits: &[i8]) -> Vec<i8> {
        self.exp.softmax(logits)
    }

    /// The direct coupling-coefficient initialization of the optimized
    /// routing (Sec. V): `c_ij = 1/n`, rounded in the coupling format.
    ///
    /// This matches `softmax(0, …, 0)` bit-exactly — the property the
    /// paper's optimization relies on ("this operation is dummy, because
    /// all the inputs are equal to 0").
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_coupling(&self, n: usize) -> i8 {
        assert!(n > 0, "cannot distribute coupling over zero classes");
        let one = 1u64 << self.cfg.coupling_frac;
        let n = u64_from(n);
        ((one + n / 2) / n).min(u64::from(i8::MAX as u8)) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pipe() -> QuantPipeline {
        QuantPipeline::new(NumericConfig::default())
    }

    #[test]
    fn norm8_of_unit_vector() {
        // [1.0, 0, 0, 0] in Q2.5: norm = 1.0 → Q4.4 code 16.
        assert_eq!(pipe().norm8(&[32, 0, 0, 0]), 16);
    }

    #[test]
    fn norm8_of_345_triangle() {
        // [0.75, 1.0] → norm = 1.25 → Q4.4 code 20.
        let n = pipe().norm8(&[24, 32]);
        assert!((19..=20).contains(&n), "norm code {n}");
    }

    #[test]
    fn squash_vec_shrinks() {
        let p = pipe();
        let (v, norm) = p.squash_vec(&[32, 32, 32, 32]); // each 1.0, norm 2.0
        assert_eq!(norm, 32); // 2.0 in Q4.4
                              // gain g(2) = 0.4: each element → 0.4 in Q2.5 ≈ 13.
        for x in v {
            assert!((11..=14).contains(&x), "element {x}");
        }
    }

    #[test]
    fn uniform_coupling_matches_softmax_of_zeros() {
        // The paper's Sec. V claim: skipping the first softmax and
        // initializing c directly is *exact*. Check for every class count
        // the architecture could use.
        let p = pipe();
        for n in 1..=32usize {
            let direct = p.uniform_coupling(n);
            let via_softmax = p.softmax(&vec![0i8; n]);
            assert!(
                via_softmax.iter().all(|&c| c == direct),
                "mismatch at n={n}: direct={direct}, softmax={via_softmax:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero classes")]
    fn uniform_coupling_rejects_zero() {
        pipe().uniform_coupling(0);
    }

    #[test]
    fn norm8_is_permutation_invariant() {
        let p = pipe();
        assert_eq!(p.norm8(&[10, -20, 30]), p.norm8(&[30, 10, -20]));
    }

    proptest! {
        #[test]
        fn squash_output_norm_at_most_half_scale(v in proptest::collection::vec(any::<i8>(), 1..16)) {
            // Squashed vectors have norm < 1; with the default formats the
            // output elements stay well inside |code| ≤ 64 (real 2.0).
            let p = pipe();
            let (out, _) = p.squash_vec(&v);
            prop_assert!(out.iter().all(|&x| x.abs() <= 64));
        }

        #[test]
        fn norm8_monotone_under_element_growth(v in proptest::collection::vec(0i8..64, 1..8), idx in 0usize..8) {
            let p = pipe();
            let mut bigger = v.clone();
            let i = idx % v.len();
            bigger[i] = bigger[i].saturating_add(8);
            prop_assert!(p.norm8(&bigger) >= p.norm8(&v));
        }
    }
}
