//! Bit-exact 8-bit quantized CapsuleNet inference.
//!
//! This is the golden functional model of the accelerator: every
//! multiply, accumulate, requantization and LUT access here has a
//! one-to-one hardware counterpart in `capsacc-core`, and the simulator's
//! integration tests assert *bit-exact* agreement with the traces
//! produced here — the Rust analogue of the paper's gate-level-vs-PyTorch
//! validation (Fig. 15).

use capsacc_fixed::{requantize, Acc25};
use capsacc_tensor::{qops, qops::MacStats, u64_from, Tensor};

use crate::arch::CapsNetConfig;
use crate::float::primary_capsules;
use crate::params::QuantizedParams;
use crate::qfunc::QuantPipeline;
use crate::routing::RoutingVariant;

/// Final outputs of a quantized inference pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuantOutput {
    /// Per-class capsule norm codes of the final squashed capsules
    /// `‖v_j‖` (`norm_frac` fraction bits) — the classification scores
    /// the norm unit produces "to compute the classification prediction"
    /// (Sec. IV-C).
    pub class_norms: Vec<u8>,
    /// Predicted class (argmax of norms; ties break to the lower index).
    pub predicted: usize,
    /// Final class capsules `[classes, class_caps_dim]` (data codes).
    pub class_caps: Tensor<i8>,
    /// Final coupling coefficients `[in_caps, classes]` (coupling codes).
    pub couplings: Tensor<i8>,
    /// Aggregate MAC statistics across all layers.
    pub stats: MacStats,
}

/// Intermediate state of one routing iteration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoutingIterationTrace {
    /// Coupling coefficients used in this iteration `[in_caps, classes]`.
    pub couplings: Tensor<i8>,
    /// Requantized weighted sums `s_j` `[classes, dim]`.
    pub s: Tensor<i8>,
    /// Squashed class capsules `v_j` `[classes, dim]`.
    pub v: Tensor<i8>,
    /// Per-class norm codes of the *pre-squash* sums `‖s_j‖` (the norm
    /// the squash unit consumed).
    pub norms: Vec<u8>,
    /// Logits after this iteration's update, if an update ran.
    pub logits_after_update: Option<Tensor<i8>>,
}

/// A full inference trace: every intermediate tensor the simulator must
/// reproduce bit-exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuantTrace {
    /// Quantized input image.
    pub input_q: Tensor<i8>,
    /// Conv1 activations (post-ReLU).
    pub conv1_out: Tensor<i8>,
    /// PrimaryCaps convolution output (pre-squash).
    pub pc_out: Tensor<i8>,
    /// Squashed primary capsules `[in_caps, pc_caps_dim]`.
    pub capsules: Tensor<i8>,
    /// Prediction vectors `[in_caps, classes, class_caps_dim]`.
    pub u_hat: Tensor<i8>,
    /// Per-iteration routing state.
    pub iterations: Vec<RoutingIterationTrace>,
    /// Final outputs.
    pub output: QuantOutput,
}

/// Runs quantized inference, returning only the final outputs.
///
/// See [`infer_q8_traced`] for the full intermediate trace.
///
/// # Panics
///
/// Panics if `image` is not `[1, input_side, input_side]` or parameter
/// shapes disagree with `cfg`.
pub fn infer_q8(
    cfg: &CapsNetConfig,
    qparams: &QuantizedParams,
    pipeline: &QuantPipeline,
    image: &Tensor<f32>,
    variant: RoutingVariant,
) -> QuantOutput {
    infer_q8_traced(cfg, qparams, pipeline, image, variant).output
}

/// Runs quantized inference, retaining every intermediate tensor.
///
/// # Panics
///
/// Panics if `image` is not `[1, input_side, input_side]` or parameter
/// shapes disagree with `cfg`.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::{infer_q8_traced, CapsNetConfig, CapsNetParams,
///                       QuantPipeline, RoutingVariant};
/// use capsacc_fixed::NumericConfig;
/// use capsacc_tensor::Tensor;
/// let cfg = CapsNetConfig::tiny();
/// let qp = CapsNetParams::generate(&cfg, 1).quantize(NumericConfig::default());
/// let pipe = QuantPipeline::new(NumericConfig::default());
/// let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] as f32) / 12.0);
/// let trace = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
/// assert_eq!(trace.iterations.len(), cfg.routing_iterations);
/// assert!(trace.output.predicted < cfg.num_classes);
/// ```
pub fn infer_q8_traced(
    cfg: &CapsNetConfig,
    qparams: &QuantizedParams,
    pipeline: &QuantPipeline,
    image: &Tensor<f32>,
    variant: RoutingVariant,
) -> QuantTrace {
    let ncfg = pipeline.config();
    let g1 = cfg.conv1_geometry();
    let gp = cfg.primary_caps_geometry();
    let mut stats = MacStats::default();

    // Quantize the input image into the data format.
    let input_q = qparams.quantize_image(image);

    // Conv1 + ReLU.
    let (conv1_out, s1) = qops::conv2d_q8(
        &input_q,
        &qparams.conv1_w,
        Some(&qparams.conv1_b),
        &g1,
        ncfg.mac_shift(),
        true,
    );
    stats.merge(s1);

    // PrimaryCaps convolution (squash is the nonlinearity).
    let (pc_out, s2) = qops::conv2d_q8(
        &conv1_out,
        &qparams.pc_w,
        Some(&qparams.pc_b),
        &gp,
        ncfg.mac_shift(),
        false,
    );
    stats.merge(s2);

    // Rearrange into capsules and squash each one.
    let raw_caps = primary_capsules(&pc_out, cfg.pc_channels, cfg.pc_caps_dim);
    let dim = cfg.pc_caps_dim;
    let mut capsules: Tensor<i8> = Tensor::zeros(raw_caps.shape());
    for (dst, src) in capsules
        .data_mut()
        .chunks_mut(dim)
        .zip(raw_caps.data().chunks(dim))
    {
        let (v, _) = pipeline.squash_vec(src);
        dst.copy_from_slice(&v);
    }

    // ClassCaps prediction vectors û_{j|i} = W_ij · u_i.
    let (in_caps, classes, out_dim, in_dim) = (
        cfg.num_primary_caps(),
        cfg.num_classes,
        cfg.class_caps_dim,
        cfg.pc_caps_dim,
    );
    let mut u_hat: Tensor<i8> = Tensor::zeros(&[in_caps, classes, out_dim]);
    for cap in 0..in_caps {
        for class in 0..classes {
            for e in 0..out_dim {
                let wbase = ((cap * classes + class) * out_dim + e) * in_dim;
                let mut acc = Acc25::new();
                for d in 0..in_dim {
                    acc.add_product(
                        i64::from(qparams.w_class.data()[wbase + d])
                            * i64::from(capsules.data()[cap * in_dim + d]),
                    );
                }
                stats.macs += u64_from(in_dim);
                stats.saturations += u64::from(acc.saturation_events());
                u_hat.data_mut()[(cap * classes + class) * out_dim + e] =
                    requantize(acc.raw(), ncfg.mac_shift());
            }
        }
    }

    // Routing-by-agreement in fixed point.
    let mut logits: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
    let mut couplings: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
    let mut class_caps: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
    let mut class_norms = vec![0u8; classes];
    let mut iterations = Vec::with_capacity(cfg.routing_iterations);

    for r in 0..cfg.routing_iterations {
        // Coupling coefficients.
        if r == 0 && variant == RoutingVariant::SkipFirstSoftmax {
            couplings
                .data_mut()
                .fill(pipeline.uniform_coupling(classes));
        } else {
            for i in 0..in_caps {
                let row = &logits.data()[i * classes..(i + 1) * classes];
                let sm = pipeline.softmax(row);
                couplings.data_mut()[i * classes..(i + 1) * classes].copy_from_slice(&sm);
            }
        }

        // Weighted sums s_j = Σ_i c_ij û_{j|i} (coupling-format products,
        // 25-bit accumulation, requantized into the data format), then
        // squash through the LUTs.
        let mut s_t: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
        for (j, class_norm) in class_norms.iter_mut().enumerate() {
            for e in 0..out_dim {
                let mut acc = Acc25::new();
                for i in 0..in_caps {
                    acc.add_product(
                        i64::from(couplings.data()[i * classes + j])
                            * i64::from(u_hat.data()[(i * classes + j) * out_dim + e]),
                    );
                }
                stats.macs += u64_from(in_caps);
                stats.saturations += u64::from(acc.saturation_events());
                s_t.data_mut()[j * out_dim + e] = requantize(acc.raw(), ncfg.coupling_mac_shift());
            }
            let (v, norm) = pipeline.squash_vec(&s_t.data()[j * out_dim..(j + 1) * out_dim]);
            class_caps.data_mut()[j * out_dim..(j + 1) * out_dim].copy_from_slice(&v);
            *class_norm = norm;
        }

        // Logit update on all but the last iteration:
        // b_ij += requantize(û_{j|i} · v_j).
        let logits_after_update = if r + 1 < cfg.routing_iterations {
            for i in 0..in_caps {
                for j in 0..classes {
                    let base = (i * classes + j) * out_dim;
                    let mut acc = Acc25::new();
                    for e in 0..out_dim {
                        acc.add_product(
                            i64::from(u_hat.data()[base + e])
                                * i64::from(class_caps.data()[j * out_dim + e]),
                        );
                    }
                    stats.macs += u64_from(out_dim);
                    stats.saturations += u64::from(acc.saturation_events());
                    let delta = requantize(acc.raw(), ncfg.update_shift());
                    let cur = logits.data()[i * classes + j];
                    logits.data_mut()[i * classes + j] = cur.saturating_add(delta);
                }
            }
            Some(logits.clone())
        } else {
            None
        };

        iterations.push(RoutingIterationTrace {
            couplings: couplings.clone(),
            s: s_t,
            v: class_caps.clone(),
            norms: class_norms.clone(),
            logits_after_update,
        });
    }

    // Final classification scores: the norm unit runs once more over the
    // squashed class capsules v_j (Sec. IV-C: the norm "is used either as
    // it is to compute the classification prediction, or as an input for
    // the Squashing function").
    let final_norms: Vec<u8> = (0..classes)
        .map(|j| pipeline.norm8(&class_caps.data()[j * out_dim..(j + 1) * out_dim]))
        .collect();
    let predicted = final_norms
        .iter()
        .enumerate()
        .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .expect("at least one class");

    QuantTrace {
        input_q,
        conv1_out,
        pc_out,
        capsules,
        u_hat,
        iterations,
        output: QuantOutput {
            class_norms: final_norms,
            predicted,
            class_caps,
            couplings,
            stats,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CapsNetParams;
    use crate::routing::RoutingVariant;
    use capsacc_fixed::NumericConfig;

    fn setup(cfg: &CapsNetConfig, seed: u64) -> (QuantizedParams, QuantPipeline, Tensor<f32>) {
        let params = CapsNetParams::generate(cfg, seed);
        let ncfg = NumericConfig::default();
        let image = Tensor::from_fn(&[1, cfg.input_side, cfg.input_side], |i| {
            let (y, x) = (i[1] as f32, i[2] as f32);
            let c = cfg.input_side as f32 / 2.0;
            (-((y - c).powi(2) + (x - c).powi(2)) / 16.0).exp()
        });
        (params.quantize(ncfg), QuantPipeline::new(ncfg), image)
    }

    #[test]
    fn tiny_quantized_inference_runs() {
        let cfg = CapsNetConfig::tiny();
        let (qp, pipe, image) = setup(&cfg, 1);
        let trace = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(trace.conv1_out.shape(), &[8, 10, 10]);
        assert_eq!(trace.capsules.shape(), &[32, 4]);
        assert_eq!(trace.u_hat.shape(), &[32, 4, 4]);
        assert_eq!(trace.iterations.len(), 3);
        assert!(trace.output.predicted < 4);
        // No accumulator ever saturated on this workload.
        assert_eq!(trace.output.stats.saturations, 0);
    }

    #[test]
    fn quantized_variants_agree_bit_exactly() {
        // The Sec. V optimization must be functionality-preserving in
        // fixed point too (uniform_coupling == softmax(zeros)).
        let cfg = CapsNetConfig::tiny();
        let (qp, pipe, image) = setup(&cfg, 2);
        let a = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::Original);
        let b = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(a.output.class_caps, b.output.class_caps);
        assert_eq!(a.output.class_norms, b.output.class_norms);
        assert_eq!(a.output.couplings, b.output.couplings);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn quantized_tracks_float_loosely() {
        // With Q2.5 activations the quantized class norms should be
        // within a couple of LSBs of the float ones.
        let cfg = CapsNetConfig::tiny();
        let params = CapsNetParams::generate(&cfg, 3);
        let ncfg = NumericConfig::default();
        let (qp, pipe, image) = setup(&cfg, 3);
        let qf = crate::float::infer_f32(&cfg, &params, &image, RoutingVariant::SkipFirstSoftmax);
        let qq = infer_q8(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        for (fnorm, &qnorm) in qf.class_norms().iter().zip(&qq.class_norms) {
            let q = qnorm as f32 / (1u32 << ncfg.norm_frac) as f32;
            assert!((fnorm - q).abs() < 0.25, "float norm {fnorm} vs quant {q}");
        }
    }

    #[test]
    fn trace_iterations_chain_consistently() {
        let cfg = CapsNetConfig::tiny();
        let (qp, pipe, image) = setup(&cfg, 4);
        let t = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        // First iteration uses the uniform initialization everywhere.
        let uniform = pipe.uniform_coupling(cfg.num_classes);
        assert!(t.iterations[0].couplings.iter().all(|&c| c == uniform));
        // Every non-final iteration records updated logits; the final one
        // does not.
        for (r, it) in t.iterations.iter().enumerate() {
            assert_eq!(
                it.logits_after_update.is_some(),
                r + 1 < cfg.routing_iterations
            );
        }
        // Iteration r+1 couplings are the softmax of iteration r logits.
        for r in 0..t.iterations.len() - 1 {
            let logits = t.iterations[r]
                .logits_after_update
                .as_ref()
                .expect("updated");
            let classes = cfg.num_classes;
            for i in 0..cfg.num_primary_caps() {
                let row = &logits.data()[i * classes..(i + 1) * classes];
                let sm = pipe.softmax(row);
                assert_eq!(
                    &t.iterations[r + 1].couplings.data()[i * classes..(i + 1) * classes],
                    sm.as_slice()
                );
            }
        }
        // The last iteration's v equals the reported class capsules.
        assert_eq!(
            t.iterations.last().expect("non-empty").v,
            t.output.class_caps
        );
    }

    #[test]
    fn mac_count_matches_analytical() {
        let cfg = CapsNetConfig::tiny();
        let (qp, pipe, image) = setup(&cfg, 5);
        let t = infer_q8_traced(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        let g1 = cfg.conv1_geometry();
        let gp = cfg.primary_caps_geometry();
        let (caps, classes, od, id) = (
            cfg.num_primary_caps() as u64,
            cfg.num_classes as u64,
            cfg.class_caps_dim as u64,
            cfg.pc_caps_dim as u64,
        );
        let fc = caps * classes * od * id;
        let per_iter_sum = classes * od * caps;
        let per_update = caps * classes * od;
        let iters = cfg.routing_iterations as u64;
        let expected = g1.macs() + gp.macs() + fc + per_iter_sum * iters + per_update * (iters - 1);
        assert_eq!(t.output.stats.macs, expected);
    }

    #[test]
    fn small_config_also_runs() {
        let cfg = CapsNetConfig::small();
        let (qp, pipe, image) = setup(&cfg, 6);
        let out = infer_q8(&cfg, &qp, &pipe, &image, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(out.class_norms.len(), 10);
        assert_eq!(out.stats.saturations, 0);
    }
}
