//! # capsacc-capsnet — the reference CapsuleNet
//!
//! A from-scratch implementation of the CapsuleNet of Sabour, Frosst and
//! Hinton (NIPS 2017) as described in Sec. II of the CapsAcc paper — the
//! workload the accelerator runs:
//!
//! - [`CapsNetConfig`] — the architecture algebra: layer geometries,
//!   capsule counts and the Table I parameter accounting.
//! - [`CapsNetParams`] / [`QuantizedParams`] — float parameters and their
//!   8-bit quantization.
//! - [`infer_f32`] — floating-point inference (the paper's "software
//!   prediction" in the Fig. 15 validation flow).
//! - [`infer_q8`] — bit-exact 8-bit fixed-point inference using the
//!   hardware LUT pipelines; this is the golden model the cycle-accurate
//!   simulator in `capsacc-core` must match bit-for-bit.
//! - [`route_f32`] / routing in [`quant`] — the routing-by-agreement
//!   algorithm (Fig. 4), in both the original form and the paper's
//!   optimized form that skips the first softmax
//!   ([`RoutingVariant::SkipFirstSoftmax`], Sec. V).
//!
//! # Example
//!
//! ```
//! use capsacc_capsnet::CapsNetConfig;
//! let cfg = CapsNetConfig::mnist();
//! // Table I of the paper.
//! assert_eq!(cfg.conv1_parameters(), 20_992);
//! assert_eq!(cfg.primary_caps_parameters(), 5_308_672);
//! assert_eq!(cfg.class_caps_parameters(), 1_474_560);
//! assert_eq!(cfg.coupling_coefficient_count(), 11_520);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod float;
mod params;
pub mod qfunc;
pub mod quant;
mod routing;

pub use arch::{CapsNetConfig, LayerAccounting};
pub use float::{infer_f32, primary_capsules, FloatOutput};
pub use params::{CapsNetParams, QuantizedParams};
pub use qfunc::QuantPipeline;
pub use quant::{infer_q8, infer_q8_traced, QuantOutput, QuantTrace, RoutingIterationTrace};
pub use routing::{route_f32, RoutingResult, RoutingVariant};
