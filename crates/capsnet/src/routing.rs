//! Routing-by-agreement (Fig. 4 of the paper), floating point.

use capsacc_tensor::{ops, Tensor};

/// Which form of the routing algorithm to run.
///
/// The paper's Sec. V optimization observes that the first softmax is
/// "dummy" — all logits are zero, so its output is the uniform
/// distribution regardless of the data — and skips it by initializing the
/// coupling coefficients directly ([`RoutingVariant::SkipFirstSoftmax`],
/// the blue arrow in Fig. 4). Functionality is preserved exactly.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum RoutingVariant {
    /// The original algorithm: initialize `b_ij = 0` and softmax every
    /// iteration, including the first.
    Original,
    /// The paper's optimization: initialize `c_ij = 1/J` directly and
    /// skip the first softmax.
    #[default]
    SkipFirstSoftmax,
}

/// Result of a routing pass.
#[derive(Clone, PartialEq, Debug)]
pub struct RoutingResult {
    /// Squashed class capsules `[num_classes, class_caps_dim]`.
    pub class_caps: Tensor<f32>,
    /// Final coupling coefficients `[in_caps, num_classes]`.
    pub couplings: Tensor<f32>,
    /// How many softmax passes over the logits ran (3 for the original
    /// variant at 3 iterations, 2 for the optimized one).
    pub softmax_invocations: usize,
    /// How many logit-update passes ran (iterations − 1).
    pub update_invocations: usize,
}

impl RoutingResult {
    /// Per-class capsule norms (the classification scores).
    pub fn class_norms(&self) -> Vec<f32> {
        let dim = self.class_caps.shape()[1];
        self.class_caps.data().chunks(dim).map(ops::norm).collect()
    }

    /// Index of the class with the largest capsule norm.
    pub fn predicted(&self) -> usize {
        let norms = self.class_norms();
        norms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

/// Runs routing-by-agreement over prediction vectors
/// `u_hat[in_caps, num_classes, class_caps_dim]`.
///
/// # Panics
///
/// Panics if `u_hat` is not rank 3 or `iterations` is zero.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::{route_f32, RoutingVariant};
/// use capsacc_tensor::Tensor;
/// // Two input capsules agreeing on class 0.
/// let u_hat = Tensor::from_fn(&[2, 2, 4], |i| if i[1] == 0 { 0.8 } else { 0.1 });
/// let r = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
/// assert_eq!(r.predicted(), 0);
/// ```
pub fn route_f32(u_hat: &Tensor<f32>, iterations: usize, variant: RoutingVariant) -> RoutingResult {
    assert_eq!(u_hat.shape().len(), 3, "u_hat must be [caps, classes, dim]");
    assert!(iterations > 0, "at least one routing iteration required");
    let (in_caps, classes, dim) = (u_hat.shape()[0], u_hat.shape()[1], u_hat.shape()[2]);

    let mut logits: Tensor<f32> = Tensor::zeros(&[in_caps, classes]);
    let mut couplings: Tensor<f32> = Tensor::zeros(&[in_caps, classes]);
    let mut class_caps: Tensor<f32> = Tensor::zeros(&[classes, dim]);
    let mut softmax_invocations = 0;
    let mut update_invocations = 0;

    for r in 0..iterations {
        // Coupling coefficients: softmax over classes for each capsule,
        // or the direct uniform initialization on the optimized first
        // iteration.
        if r == 0 && variant == RoutingVariant::SkipFirstSoftmax {
            let uniform = 1.0 / classes as f32;
            couplings.data_mut().fill(uniform);
        } else {
            for i in 0..in_caps {
                let row = &logits.data()[i * classes..(i + 1) * classes];
                let sm = ops::softmax(row);
                couplings.data_mut()[i * classes..(i + 1) * classes].copy_from_slice(&sm);
            }
            softmax_invocations += 1;
        }

        // Weighted sums s_j = Σ_i c_ij û_{j|i}, then squash.
        for j in 0..classes {
            let mut s = vec![0.0f32; dim];
            for i in 0..in_caps {
                let c = couplings.data()[i * classes + j];
                let base = (i * classes + j) * dim;
                for (e, sv) in s.iter_mut().enumerate() {
                    *sv += c * u_hat.data()[base + e];
                }
            }
            let (v, _) = ops::squash(&s);
            class_caps.data_mut()[j * dim..(j + 1) * dim].copy_from_slice(&v);
        }

        // Logit update b_ij += û_{j|i} · v_j on all but the last
        // iteration.
        if r + 1 < iterations {
            for i in 0..in_caps {
                for j in 0..classes {
                    let base = (i * classes + j) * dim;
                    let dot: f32 = (0..dim)
                        .map(|e| u_hat.data()[base + e] * class_caps.data()[j * dim + e])
                        .sum();
                    logits.data_mut()[i * classes + j] += dot;
                }
            }
            update_invocations += 1;
        }
    }

    RoutingResult {
        class_caps,
        couplings,
        softmax_invocations,
        update_invocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agreeing_u_hat(in_caps: usize, classes: usize, dim: usize, target: usize) -> Tensor<f32> {
        Tensor::from_fn(&[in_caps, classes, dim], |i| {
            let (cap, class, e) = (i[0], i[1], i[2]);
            if class == target {
                // All capsules point the same way for the target class.
                0.6 + 0.02 * (e as f32)
            } else {
                // Disagreeing directions elsewhere.
                if (cap + e) % 2 == 0 {
                    0.3
                } else {
                    -0.3
                }
            }
        })
    }

    #[test]
    fn variants_agree_exactly() {
        // softmax(0) == uniform exactly, so the optimized variant must be
        // bit-identical to the original in f32 as well.
        let u_hat = agreeing_u_hat(8, 4, 6, 2);
        let a = route_f32(&u_hat, 3, RoutingVariant::Original);
        let b = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(a.class_caps, b.class_caps);
        assert_eq!(a.couplings, b.couplings);
    }

    #[test]
    fn optimized_variant_skips_one_softmax() {
        let u_hat = agreeing_u_hat(4, 3, 4, 0);
        let a = route_f32(&u_hat, 3, RoutingVariant::Original);
        let b = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(a.softmax_invocations, 3);
        assert_eq!(b.softmax_invocations, 2);
        assert_eq!(a.update_invocations, 2);
        assert_eq!(b.update_invocations, 2);
    }

    #[test]
    fn routing_converges_to_agreeing_class() {
        let u_hat = agreeing_u_hat(16, 5, 8, 3);
        let r = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(r.predicted(), 3);
        // The agreeing class's mean coupling grows above uniform.
        let classes = 5;
        let mean_c3: f32 = (0..16)
            .map(|i| r.couplings.data()[i * classes + 3])
            .sum::<f32>()
            / 16.0;
        assert!(mean_c3 > 1.0 / classes as f32, "mean coupling {mean_c3}");
    }

    #[test]
    fn couplings_are_distributions() {
        let u_hat = agreeing_u_hat(6, 4, 4, 1);
        let r = route_f32(&u_hat, 3, RoutingVariant::Original);
        for i in 0..6 {
            let row = &r.couplings.data()[i * 4..(i + 1) * 4];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn class_norms_below_one() {
        let u_hat = agreeing_u_hat(10, 3, 8, 0);
        let r = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
        for n in r.class_norms() {
            assert!((0.0..1.0).contains(&n));
        }
    }

    #[test]
    fn single_iteration_runs_no_updates() {
        let u_hat = agreeing_u_hat(4, 3, 4, 0);
        let r = route_f32(&u_hat, 1, RoutingVariant::SkipFirstSoftmax);
        assert_eq!(r.update_invocations, 0);
        assert_eq!(r.softmax_invocations, 0);
    }

    #[test]
    #[should_panic(expected = "at least one routing iteration")]
    fn zero_iterations_rejected() {
        let u_hat: Tensor<f32> = Tensor::zeros(&[2, 2, 2]);
        route_f32(&u_hat, 0, RoutingVariant::Original);
    }

    #[test]
    fn more_iterations_sharpen_couplings() {
        let u_hat = agreeing_u_hat(12, 4, 8, 2);
        let r1 = route_f32(&u_hat, 1, RoutingVariant::SkipFirstSoftmax);
        let r3 = route_f32(&u_hat, 3, RoutingVariant::SkipFirstSoftmax);
        let mass = |r: &RoutingResult| -> f32 {
            (0..12).map(|i| r.couplings.data()[i * 4 + 2]).sum::<f32>() / 12.0
        };
        assert!(mass(&r3) >= mass(&r1));
    }
}
