//! Network parameters: float generation and 8-bit quantization.

use capsacc_fixed::{Data8, Fx8, NumericConfig, Weight8};
use capsacc_tensor::Tensor;

use crate::arch::CapsNetConfig;

/// SplitMix64 — a tiny deterministic PRNG so parameter generation does
/// not pull in external dependencies. Used only for pseudo-trained
/// weights, whose values the paper's evaluation never depends on.
#[derive(Copy, Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-bound, bound)`.
    fn uniform(&mut self, bound: f32) -> f32 {
        let u = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
        (2.0 * u - 1.0) * bound
    }
}

/// Floating-point parameters of a CapsuleNet instance.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
/// let cfg = CapsNetConfig::tiny();
/// let params = CapsNetParams::generate(&cfg, 42);
/// assert_eq!(params.parameter_count(), cfg.total_parameters());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CapsNetParams {
    /// Conv1 weights `[conv1_channels, 1, k, k]`.
    pub conv1_w: Tensor<f32>,
    /// Conv1 per-channel biases.
    pub conv1_b: Vec<f32>,
    /// PrimaryCaps weights `[pc_channels · pc_caps_dim, conv1_channels, k, k]`.
    pub pc_w: Tensor<f32>,
    /// PrimaryCaps per-channel biases.
    pub pc_b: Vec<f32>,
    /// ClassCaps transforms `[num_primary_caps, num_classes,
    /// class_caps_dim, pc_caps_dim]` — one `W_ij` per capsule pair.
    pub w_class: Tensor<f32>,
}

impl CapsNetParams {
    /// Generates pseudo-trained parameters: Xavier-style uniform
    /// `U(−√(3/fan_in), √(3/fan_in))`, deterministic in `seed`.
    pub fn generate(cfg: &CapsNetConfig, seed: u64) -> Self {
        let mut rng = SplitMix64(seed ^ 0xCAB5_ACC0_CAB5_ACC0);
        let g1 = cfg.conv1_geometry();
        let gp = cfg.primary_caps_geometry();

        let b1 = (3.0 / g1.patch_len() as f32).sqrt();
        let conv1_w = Tensor::from_fn(&[g1.out_ch, g1.in_ch, g1.k_h, g1.k_w], |_| rng.uniform(b1));
        let conv1_b = (0..g1.out_ch).map(|_| rng.uniform(0.05)).collect();

        let bp = (3.0 / gp.patch_len() as f32).sqrt();
        let pc_w = Tensor::from_fn(&[gp.out_ch, gp.in_ch, gp.k_h, gp.k_w], |_| rng.uniform(bp));
        let pc_b = (0..gp.out_ch).map(|_| rng.uniform(0.05)).collect();

        let bc = (3.0 / cfg.pc_caps_dim as f32).sqrt();
        let w_class = Tensor::from_fn(
            &[
                cfg.num_primary_caps(),
                cfg.num_classes,
                cfg.class_caps_dim,
                cfg.pc_caps_dim,
            ],
            |_| rng.uniform(bc),
        );

        Self {
            conv1_w,
            conv1_b,
            pc_w,
            pc_b,
            w_class,
        }
    }

    /// Total parameter count (weights + biases), matching
    /// [`CapsNetConfig::total_parameters`].
    pub fn parameter_count(&self) -> usize {
        self.conv1_w.len()
            + self.conv1_b.len()
            + self.pc_w.len()
            + self.pc_b.len()
            + self.w_class.len()
    }

    /// Quantizes to the 8-bit formats of `ncfg`: weights to `Weight8`
    /// codes, biases staged at the product fraction width (as the
    /// accumulator receives them).
    pub fn quantize(&self, ncfg: NumericConfig) -> QuantizedParams {
        let quant_w = |t: &Tensor<f32>| t.map(|&v| Weight8::from_f32(v).raw());
        let quant_b = |b: &[f32]| {
            b.iter()
                .map(|&v| {
                    let scaled = (v * (1u64 << ncfg.product_frac()) as f32).round();
                    scaled.clamp(i32::MIN as f32, i32::MAX as f32) as i32
                })
                .collect()
        };
        QuantizedParams {
            conv1_w: quant_w(&self.conv1_w),
            conv1_b: quant_b(&self.conv1_b),
            pc_w: quant_w(&self.pc_w),
            pc_b: quant_b(&self.pc_b),
            w_class: quant_w(&self.w_class),
            ncfg,
        }
    }
}

/// 8-bit quantized parameters (raw `i8` weight codes, `i32` biases at the
/// product fraction width) plus the [`NumericConfig`] they were quantized
/// under.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuantizedParams {
    /// Conv1 weight codes.
    pub conv1_w: Tensor<i8>,
    /// Conv1 biases at product fraction width.
    pub conv1_b: Vec<i32>,
    /// PrimaryCaps weight codes.
    pub pc_w: Tensor<i8>,
    /// PrimaryCaps biases at product fraction width.
    pub pc_b: Vec<i32>,
    /// ClassCaps transform codes.
    pub w_class: Tensor<i8>,
    /// The quantization configuration.
    pub ncfg: NumericConfig,
}

impl QuantizedParams {
    /// Quantizes a float image into `Data8` codes.
    pub fn quantize_image(&self, image: &Tensor<f32>) -> Tensor<i8> {
        image.map(|&v| {
            debug_assert_eq!(self.ncfg.data_frac, Data8::FRAC_BITS);
            Fx8::<5>::from_f32(v).raw()
        })
    }

    /// Total byte count of the stored weights and biases (biases counted
    /// at one byte, as the paper's 8-bit memory estimate does).
    pub fn weight_bytes(&self) -> usize {
        self.conv1_w.len()
            + self.conv1_b.len()
            + self.pc_w.len()
            + self.pc_b.len()
            + self.w_class.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_counts_match_config() {
        for cfg in [CapsNetConfig::tiny(), CapsNetConfig::small()] {
            let p = CapsNetParams::generate(&cfg, 1);
            assert_eq!(p.parameter_count(), cfg.total_parameters());
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = CapsNetConfig::tiny();
        let a = CapsNetParams::generate(&cfg, 7);
        let b = CapsNetParams::generate(&cfg, 7);
        assert_eq!(a, b);
        let c = CapsNetParams::generate(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_respect_fan_in_bound() {
        let cfg = CapsNetConfig::tiny();
        let p = CapsNetParams::generate(&cfg, 3);
        let b1 = (3.0f32 / cfg.conv1_geometry().patch_len() as f32).sqrt();
        assert!(p.conv1_w.iter().all(|&v| v.abs() <= b1));
        let bc = (3.0f32 / cfg.pc_caps_dim as f32).sqrt();
        assert!(p.w_class.iter().all(|&v| v.abs() <= bc));
    }

    #[test]
    fn quantization_roundtrip_error_bounded() {
        let cfg = CapsNetConfig::tiny();
        let p = CapsNetParams::generate(&cfg, 5);
        let q = p.quantize(NumericConfig::default());
        for (&f, &code) in p.conv1_w.iter().zip(q.conv1_w.iter()) {
            let back = code as f32 / 64.0;
            assert!((f - back).abs() <= 0.5 / 64.0 + f32::EPSILON);
        }
    }

    #[test]
    fn bias_staged_at_product_frac() {
        let cfg = CapsNetConfig::tiny();
        let mut p = CapsNetParams::generate(&cfg, 5);
        p.conv1_b[0] = 0.5;
        let q = p.quantize(NumericConfig::default());
        assert_eq!(q.conv1_b[0], 1024); // 0.5 · 2^11
    }

    #[test]
    fn quantize_image_saturates() {
        let cfg = CapsNetConfig::tiny();
        let q = CapsNetParams::generate(&cfg, 1).quantize(NumericConfig::default());
        let img = Tensor::from_vec(&[1, 1, 2], vec![0.5f32, 99.0]).unwrap();
        let qi = q.quantize_image(&img);
        assert_eq!(qi.data(), &[16, 127]);
    }

    #[test]
    fn weight_bytes_match_parameter_count() {
        let cfg = CapsNetConfig::small();
        let p = CapsNetParams::generate(&cfg, 1);
        let q = p.quantize(NumericConfig::default());
        assert_eq!(q.weight_bytes(), cfg.total_parameters());
    }
}
