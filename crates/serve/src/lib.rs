//! # capsacc-serve — deterministic multi-worker request serving
//!
//! The ROADMAP's north star is an accelerator that *serves traffic*,
//! not one that runs a benchmark loop. This crate builds that serving
//! layer over the engine in `capsacc-core`, as a simulator with one
//! hard invariant: **everything is virtual time** — no wall clock, no
//! nondeterminism — so every run is byte-for-byte reproducible, even
//! though real OS threads do the engine work.
//!
//! The pipeline, each stage a pure function of the previous one:
//!
//! 1. [`arrival_trace`] — a seeded synthetic request stream
//!    ([`TraceConfig`]: rate + burstiness), arrival cycles only;
//! 2. [`form_batches`] — the dynamic micro-batcher ([`BatcherConfig`]):
//!    a batch closes on `max_batch` or on a `max_wait_cycles` deadline,
//!    whichever comes first;
//! 3. [`dispatch_batches`] — virtual-time dispatch onto N workers
//!    (earliest-free, lowest-id ties), with `service(n)` supplied by
//!    the engine's cycle model — batch cycle counts are
//!    data-independent, so one number per batch size is exact;
//! 4. [`ShardPool`] — N long-lived [`capsacc_core::BatchScheduler`]
//!    replicas on OS threads, weights resident across batches, for the
//!    runs that need real traces (bit-exact against sequential runs).
//!
//! Latency is reported per request (queue wait + batch position +
//! batch cycles → [`RequestStat`]) and aggregated into p50/p95/p99 and
//! throughput by [`SimOutcome`].
//!
//! Stages 2–3 are the *offline* pipeline: batch formation sees the
//! whole trace at once. [`run_runtime`] is its **online**
//! generalization — an event-driven loop ([`RuntimeConfig`]) that adds
//! admission control and load shedding (typed [`Rejection`]s),
//! SLO-aware early batch closing, priority classes, and an autoscaler
//! with explicit weight-fill warmup ([`worker_warmup_cycles`]) — and
//! with all of those disabled it reproduces the offline pipeline's
//! outcome bit-exactly (the equivalence anchor in
//! `tests/serve_equivalence.rs`). Multi-class overload traffic comes
//! from [`workload_trace`].
//!
//! # Example
//!
//! ```
//! use capsacc_capsnet::CapsNetConfig;
//! use capsacc_core::AcceleratorConfig;
//! use capsacc_serve::{simulate_serve, BatcherConfig, ServeConfig, TraceConfig};
//!
//! let cfg = ServeConfig {
//!     workers: 4,
//!     batcher: BatcherConfig { max_batch: 16, max_wait_cycles: 100_000 },
//!     trace: TraceConfig { seed: 7, requests: 64, mean_gap_cycles: 2_000.0, mean_burst: 4.0 },
//! };
//! let out = simulate_serve(&AcceleratorConfig::paper(), &CapsNetConfig::mnist(), &cfg);
//! assert_eq!(out.requests.len(), 64);
//! let [p50, p95, p99] = out.latency_percentiles();
//! assert!(p50 <= p95 && p95 <= p99);
//! // Byte-identical on rerun: the whole pipeline is virtual-time.
//! assert_eq!(out, simulate_serve(&AcceleratorConfig::paper(), &CapsNetConfig::mnist(), &cfg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod pool;
mod runtime;
mod sim;
pub mod telemetry;
mod trace;

pub use batcher::{form_batches, BatcherConfig, ConfigError, MicroBatch};
pub use pool::{PoolError, ShardPool};
pub use runtime::{
    run_runtime, run_runtime_resilient, run_runtime_with_sink, AutoscalerConfig, ClassStats,
    CloseCause, DegradeConfig, EventSink, FaultStats, HedgeConfig, LoggedEvent, NullSink,
    Rejection, RejectionRecord, ResilienceConfig, RetryConfig, RuntimeConfig, RuntimeOutcome,
    ScalingEvent, ServiceModel,
};
pub use sim::{dispatch_batches, percentile, BatchStat, RequestStat, SimOutcome};
pub use telemetry::RuntimeTelemetry;
pub use trace::{
    arrival_trace, workload_trace, ArrivalRegime, ClassConfig, Request, TraceConfig,
    WorkloadConfig, VIRTUAL_TIME_HORIZON,
};

use capsacc_capsnet::{CapsNetConfig, QuantTrace, QuantizedParams};
use capsacc_core::{timing, AcceleratorConfig, BatchScheduler};
use capsacc_memory::MemorySubsystem;
use capsacc_tensor::{u64_from, Tensor};

/// Full configuration of one simulated serve.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ServeConfig {
    /// Number of shard-pool workers (engine replicas).
    pub workers: usize,
    /// Micro-batching policy.
    pub batcher: BatcherConfig,
    /// Synthetic arrival trace.
    pub trace: TraceConfig,
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("at least one worker required".into());
        }
        self.batcher.validate().map_err(|e| e.to_string())?;
        self.trace.validate()
    }
}

/// Precomputes the closed-form cycle model for every batch size up to
/// `max_batch`, including memory-hierarchy stalls under `cfg.memory` —
/// the `service(n)` the dispatcher charges at MNIST scale, where
/// ticking the engine per batch would be prohibitive.
pub fn service_cycles_table(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    max_batch: usize,
) -> Vec<u64> {
    let mut table = vec![0u64; max_batch + 1];
    for (n, slot) in table.iter_mut().enumerate().skip(1) {
        *slot = timing::full_inference_batch_mem(cfg, net, u64_from(n)).total_cycles();
    }
    table
}

/// Measures the *engine's* [`capsacc_core::BatchRun`] cycle cost for
/// every batch size up to `max_batch`, by running scratch batches of
/// deterministic dummy images through a fresh scheduler per size.
///
/// Batch cycle counts are data-independent (the array ticks by shape,
/// not value) and independent of scheduler reuse, so this table is
/// exact for every real batch of the same size —
/// [`serve_with_engine`] asserts exactly that against each batch the
/// shard pool actually serves.
///
/// At MNIST scale, build the table with
/// `cfg.backend = EngineBackend::Functional` (and typically
/// `cfg.trace_level = TraceLevel::Outputs`): the functional backend
/// charges the identical cycles at wall-clock speed, so paper-scale
/// engine service tables are practical where ticking every PE was not
/// (pinned by `tests/serve_equivalence.rs::
/// engine_service_cycles_table_holds_at_mnist_scale`).
pub fn engine_service_cycles_table(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    max_batch: usize,
) -> Vec<u64> {
    let mut table = vec![0u64; max_batch + 1];
    for (n, slot) in table.iter_mut().enumerate().skip(1) {
        *slot = measure_batch_cycles(cfg, net, qparams, n);
    }
    table
}

/// Runs one scratch batch of `n` deterministic dummy images through a
/// fresh scheduler and returns its measured cycle cost.
fn measure_batch_cycles(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    n: usize,
) -> u64 {
    let dummy = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * 3 + i[2]) % 11) as f32 / 11.0
    });
    let mut sched = BatchScheduler::new(*cfg);
    let images = vec![dummy; n];
    sched
        .run(net, qparams, &images)
        .expect("dummy batch is valid")
        .total_cycles()
}

/// Runs the whole serving pipeline — trace → micro-batcher → worker
/// dispatch — against the closed-form cycle model (usable at MNIST
/// scale, where ticking the engine per request would be prohibitive).
///
/// Deterministic in `serve.trace.seed`: reruns are byte-identical.
///
/// # Panics
///
/// Panics if `serve` fails [`ServeConfig::validate`] or `cfg` fails
/// [`AcceleratorConfig::validate`].
pub fn simulate_serve(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    serve: &ServeConfig,
) -> SimOutcome {
    cfg.validate().expect("invalid accelerator configuration");
    let table = service_cycles_table(cfg, net, serve.batcher.max_batch);
    simulate_serve_with_table(serve, &table)
}

/// [`simulate_serve`] with an explicit `service(n)` cycle table —
/// entry `n` is the cycle cost of a batch of `n` images, so the table
/// must have at least `serve.batcher.max_batch + 1` entries.
///
/// This is how the sweep experiments serve from the *real engine*: at
/// MNIST scale an [`engine_service_cycles_table`] built with the
/// functional backend supplies measured [`capsacc_core::BatchRun`]
/// cycles where the closed-form [`service_cycles_table`] was previously
/// the only practical option — same dispatcher, same determinism,
/// engine-backed numbers.
///
/// # Panics
///
/// Panics if `serve` fails [`ServeConfig::validate`] or the table is
/// shorter than `max_batch + 1`.
pub fn simulate_serve_with_table(serve: &ServeConfig, table: &[u64]) -> SimOutcome {
    serve.validate().expect("invalid serve configuration");
    assert!(
        table.len() > serve.batcher.max_batch,
        "service table has {} entries; need max_batch + 1 = {}",
        table.len(),
        serve.batcher.max_batch + 1
    );
    let arrivals = arrival_trace(&serve.trace);
    let batches = form_batches(&arrivals, &serve.batcher);
    dispatch_batches(&arrivals, &batches, serve.workers, &|n| table[n])
}

/// Cycles an autoscaled worker spin-up spends filling its weight
/// memory: the whole parameter set (`dram_weight_bytes ==
/// total_parameters()`, 8-bit weights) streamed through the
/// [`MemorySubsystem`]'s weight channel under `cfg.memory`. Zero under
/// the ideal memory model — spin-ups are then instantaneous, exactly
/// as the rest of the cycle model treats weights as resident.
pub fn worker_warmup_cycles(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> u64 {
    MemorySubsystem::new(cfg.memory).stage_weights(u64_from(net.total_parameters()))
}

/// Runs the **online** serving runtime — admission control, SLO-aware
/// batching, priority classes, autoscaling — over a request trace,
/// with service times from the closed-form cycle model
/// ([`service_cycles_table`]) and autoscaler warmup from
/// [`worker_warmup_cycles`].
///
/// Deterministic: reruns are byte-identical, event log included.
///
/// # Panics
///
/// Panics if `rt` fails [`RuntimeConfig::validate`], `cfg` fails
/// [`AcceleratorConfig::validate`], or `requests` is unsorted.
pub fn simulate_runtime(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    rt: &RuntimeConfig,
    requests: &[Request],
) -> RuntimeOutcome {
    cfg.validate().expect("invalid accelerator configuration");
    let table = service_cycles_table(cfg, net, rt.batcher.max_batch);
    let warmup = worker_warmup_cycles(cfg, net);
    simulate_runtime_with_table(rt, requests, &table, warmup)
}

/// [`simulate_runtime`] with an explicit `service(n)` cycle table and
/// warmup cost — the engine-backed counterpart, same contract as
/// [`simulate_serve_with_table`]: entry `n` is a batch-of-`n`'s cycle
/// cost, table length must cover `rt.batcher.max_batch`.
///
/// # Panics
///
/// Panics if `rt` fails [`RuntimeConfig::validate`], `requests` is
/// unsorted, or the table is shorter than `max_batch + 1`.
pub fn simulate_runtime_with_table(
    rt: &RuntimeConfig,
    requests: &[Request],
    table: &[u64],
    warmup_cycles: u64,
) -> RuntimeOutcome {
    rt.validate().expect("invalid runtime configuration");
    assert!(
        table.len() > rt.batcher.max_batch,
        "service table has {} entries; need max_batch + 1 = {}",
        table.len(),
        rt.batcher.max_batch + 1
    );
    run_runtime(rt, requests, &|n| table[n], warmup_cycles)
}

/// [`worker_warmup_cycles`] under a seeded [`capsacc_faults::FaultPlan`]:
/// the respawned replica's bulk weight fill runs burst by burst through
/// [`MemorySubsystem::stage_weights_faulted`], so DRAM transfer errors
/// and SPM parity failures during the fill are re-charged honestly.
/// Each respawn draws in its own burst-sequence window
/// (`respawn_seq << 32`), so successive respawns see independent —
/// but still seed-deterministic — fault schedules. With no memory
/// faults in the plan this equals [`worker_warmup_cycles`] exactly.
pub fn worker_warmup_cycles_faulted(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    plan: &capsacc_faults::FaultPlan,
    respawn_seq: u64,
) -> u64 {
    MemorySubsystem::new(cfg.memory)
        .stage_weights_faulted(u64_from(net.total_parameters()), plan, respawn_seq << 32)
        .cycles
}

/// Per-degradation-level service tables: level `l` sheds routing
/// iterations (3 → 2 → 1 under the paper network), never below one, and
/// prices each level with the closed-form cycle model. `tables[l][n]`
/// is a batch-of-`n`'s cycle cost at degradation level `l`; level 0 is
/// exactly [`service_cycles_table`].
pub fn degraded_service_tables(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    max_batch: usize,
    max_level: u32,
) -> Vec<Vec<u64>> {
    (0..=usize::try_from(max_level).expect("degradation level fits usize"))
        .map(|l| {
            let mut shed = *net;
            shed.routing_iterations = shed.routing_iterations.saturating_sub(l).max(1);
            service_cycles_table(cfg, &shed, max_batch)
        })
        .collect()
}

/// [`simulate_runtime`] with fault injection and recovery armed from
/// [`RuntimeConfig::resilience`]: service times come from
/// [`degraded_service_tables`] (graceful degradation sheds routing
/// iterations per level), and crash-replacement warmups are staged
/// through [`worker_warmup_cycles_faulted`] so memory-layer faults
/// surface as honestly charged, longer spin-ups.
///
/// With [`ResilienceConfig::none`] this is byte-identical to
/// [`simulate_runtime`] — same events, same digest, same outcome.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_runtime`].
pub fn simulate_runtime_resilient(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    rt: &RuntimeConfig,
    requests: &[Request],
) -> RuntimeOutcome {
    cfg.validate().expect("invalid accelerator configuration");
    let max_level = rt.resilience.degrade.map_or(0, |d| d.max_level);
    let tables = degraded_service_tables(cfg, net, rt.batcher.max_batch, max_level);
    let plan = rt.resilience.faults;
    let mem_cfg = cfg.memory;
    let param_bytes = u64_from(net.total_parameters());
    let service = |level: u32, n: usize| {
        let l = usize::try_from(level.min(max_level)).expect("degradation level fits usize");
        tables[l][n]
    };
    let respawn = |seq: u64| {
        MemorySubsystem::new(mem_cfg)
            .stage_weights_faulted(param_bytes, &plan, seq << 32)
            .cycles
    };
    let model = ServiceModel {
        service: &service,
        respawn_warmup: &respawn,
    };
    let warmup = worker_warmup_cycles(cfg, net);
    run_runtime_resilient(rt, requests, &model, warmup, &mut NullSink)
}

/// Runs the serving pipeline with the batches *actually executed* by a
/// [`ShardPool`] of engine replicas on OS threads, and returns the
/// virtual-time outcome plus every request's functional trace in
/// request order.
///
/// The dispatcher charges the **engine's own** `BatchRun` cycle costs
/// ([`engine_service_cycles_table`]) as service times, and every batch
/// the pool serves is asserted to cost exactly its table entry — the
/// simulated latencies *are* engine latencies, not estimates.
///
/// `image_for(r)` supplies request `r`'s input. Each returned
/// [`QuantTrace`] is bit-exact against a fresh-accelerator sequential
/// run of the same image — the serving generalization of the
/// batch-equivalence invariant, pinned by `tests/serve_equivalence.rs`.
///
/// # Errors
///
/// Returns [`PoolError::Batch`] if any generated image has the wrong
/// shape, [`PoolError::WorkerPanicked`] if a pool thread died.
///
/// # Panics
///
/// Panics if `serve` fails [`ServeConfig::validate`] or a served
/// batch's measured cycles diverge from the service table (which would
/// mean batch cycles are not data-independent — a broken engine
/// invariant).
pub fn serve_with_engine(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    serve: &ServeConfig,
    image_for: &dyn Fn(usize) -> Tensor<f32>,
) -> Result<(SimOutcome, Vec<QuantTrace>), PoolError> {
    serve.validate().expect("invalid serve configuration");
    let arrivals = arrival_trace(&serve.trace);
    let batches = form_batches(&arrivals, &serve.batcher);
    // Measure only the batch sizes this trace actually formed (a
    // saturating trace mostly produces `max_batch` plus a ragged tail):
    // the full 1..=max_batch table would cost O(max_batch²) warm-up
    // images for nothing.
    let mut sizes: Vec<usize> = batches.iter().map(|b| b.len).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut table = vec![0u64; serve.batcher.max_batch + 1];
    for n in sizes {
        table[n] = measure_batch_cycles(cfg, net, qparams, n);
    }
    let outcome = dispatch_batches(&arrivals, &batches, serve.workers, &|n| table[n]);

    // Materialize each worker's batch list and run the pool.
    let assignments = outcome.assignments();
    let work: Vec<Vec<Vec<Tensor<f32>>>> = assignments
        .iter()
        .map(|batch_ids| {
            batch_ids
                .iter()
                .map(|&b| batches[b].requests().map(image_for).collect())
                .collect()
        })
        .collect();
    let pool = ShardPool::new(*cfg, serve.workers);
    let runs = pool.run_assignments(net, qparams, &work)?;

    // Reassemble per-request traces into request order, checking that
    // every measured batch cost matches what the dispatcher charged.
    let mut traces: Vec<Option<QuantTrace>> = vec![None; arrivals.len()];
    for (worker, batch_ids) in assignments.iter().enumerate() {
        for (pos, &b) in batch_ids.iter().enumerate() {
            let run = &runs[worker][pos];
            assert_eq!(
                run.total_cycles(),
                table[run.batch],
                "measured batch cycles diverged from the service table \
                 (batch of {} on worker {worker})",
                run.batch
            );
            for (slot, req) in batches[b].requests().enumerate() {
                traces[req] = Some(run.traces[slot].clone());
            }
        }
    }
    let traces = traces
        .into_iter()
        .map(|t| t.expect("every request served exactly once"))
        .collect();
    Ok((outcome, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetParams;

    #[test]
    fn serve_config_validation_composes() {
        let ok = ServeConfig {
            workers: 2,
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait_cycles: 100,
            },
            trace: TraceConfig {
                seed: 1,
                requests: 8,
                mean_gap_cycles: 10.0,
                mean_burst: 1.0,
            },
        };
        assert!(ok.validate().is_ok());
        assert!(ServeConfig { workers: 0, ..ok }.validate().is_err());
        let mut bad = ok;
        bad.batcher.max_batch = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.trace.requests = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn service_table_is_monotone_and_subadditive() {
        let cfg = AcceleratorConfig::paper();
        let net = CapsNetConfig::mnist();
        let table = service_cycles_table(&cfg, &net, 8);
        assert_eq!(table[0], 0);
        for n in 1..table.len() {
            assert!(table[n] > table[n - 1], "bigger batches cost more total");
        }
        // ...but amortize per image: the whole point of micro-batching.
        assert!(table[8] < 8 * table[1]);
    }

    #[test]
    fn engine_backed_serve_reproduces_its_own_dispatch() {
        // The pool-backed path charges the engine's measured batch
        // costs: its outcome must equal a bare dispatch over the same
        // trace with the engine service table, and be rerun-identical.
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
        let serve = ServeConfig {
            workers: 2,
            batcher: BatcherConfig {
                max_batch: 3,
                max_wait_cycles: 50_000,
            },
            trace: TraceConfig {
                seed: 11,
                requests: 10,
                mean_gap_cycles: 3_000.0,
                mean_burst: 2.0,
            },
        };
        let image = |s: usize| {
            Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
                ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
            })
        };
        let (outcome, traces) =
            serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
        assert_eq!(traces.len(), 10);
        let arrivals = arrival_trace(&serve.trace);
        let batches = form_batches(&arrivals, &serve.batcher);
        let table = engine_service_cycles_table(&cfg, &net, &qparams, serve.batcher.max_batch);
        let bare = dispatch_batches(&arrivals, &batches, serve.workers, &|n| table[n]);
        assert_eq!(outcome, bare);
        let (again, traces_again) =
            serve_with_engine(&cfg, &net, &qparams, &serve, &image).expect("valid serve");
        assert_eq!(outcome, again);
        assert_eq!(traces, traces_again);
    }
}
