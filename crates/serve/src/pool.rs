//! The shard pool: N long-lived `BatchScheduler` workers on OS threads.
//!
//! Each worker owns one [`BatchScheduler`] for its whole lifetime —
//! weights stay resident in its accelerator across every batch it
//! serves, exactly like a real serving replica — and executes its
//! assigned batch list in order on its own OS thread. Moving the
//! schedulers onto threads is what the `Send` audit in
//! `capsacc_core::batch` exists for: the whole engine is plain owned
//! data, so the pool needs no locks and no `unsafe`.
//!
//! Determinism: thread scheduling affects *wall-clock* finishing order
//! only. Each worker's result vector is keyed by its position in the
//! assignment list, every trace is bit-exact against a sequential run
//! of the same image (the batch-equivalence invariant), and cycle
//! counts are pure functions of batch shapes — so the pool's output is
//! identical no matter how the OS interleaves the threads.

use capsacc_capsnet::{CapsNetConfig, QuantizedParams};
use capsacc_core::{AcceleratorConfig, BatchError, BatchRun, BatchScheduler};
use capsacc_tensor::Tensor;

/// A pool of `workers` weight-resident engine replicas.
///
/// # Example
///
/// ```
/// use capsacc_serve::ShardPool;
/// use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
/// use capsacc_core::AcceleratorConfig;
/// use capsacc_tensor::Tensor;
///
/// let net = CapsNetConfig::tiny();
/// let cfg = AcceleratorConfig::test_4x4();
/// let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
/// let image = |s: usize| {
///     Tensor::from_fn(&[1, 12, 12], move |i| ((i[1] * (s + 2) + i[2]) % 7) as f32 / 7.0)
/// };
/// let pool = ShardPool::new(cfg, 2);
/// // Worker 0 serves two batches, worker 1 serves one.
/// let work = vec![
///     vec![vec![image(0), image(1)], vec![image(2)]],
///     vec![vec![image(3), image(4)]],
/// ];
/// let runs = pool.run_assignments(&net, &qparams, &work).expect("valid batches");
/// assert_eq!(runs[0].len(), 2);
/// assert_eq!(runs[1][0].traces.len(), 2);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct ShardPool {
    cfg: AcceleratorConfig,
    workers: usize,
}

impl ShardPool {
    /// Builds a pool of `workers` replicas of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the configuration fails
    /// [`AcceleratorConfig::validate`].
    pub fn new(cfg: AcceleratorConfig, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker required");
        cfg.validate().expect("invalid accelerator configuration");
        Self { cfg, workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes per-worker batch lists in parallel, one OS thread per
    /// worker, each on its own long-lived weight-resident scheduler.
    ///
    /// `work[w]` is worker `w`'s ordered batch list (as produced by
    /// [`crate::SimOutcome::assignments`]); the result mirrors its
    /// shape. Traces are bit-exact against fresh sequential runs and
    /// independent of thread interleaving.
    ///
    /// # Errors
    ///
    /// Returns the first [`BatchError`] any worker hit (empty batch or
    /// mis-shaped image), by lowest worker id.
    ///
    /// # Panics
    ///
    /// Panics if `work.len()` differs from the pool's worker count or a
    /// worker thread panics.
    pub fn run_assignments(
        &self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        work: &[Vec<Vec<Tensor<f32>>>],
    ) -> Result<Vec<Vec<BatchRun>>, BatchError> {
        assert_eq!(work.len(), self.workers, "one batch list per worker");
        // Schedulers are built outside the threads and moved in: this is
        // the `Send` requirement the core crate's audit pins down.
        let schedulers: Vec<BatchScheduler> = (0..self.workers)
            .map(|_| BatchScheduler::new(self.cfg))
            .collect();
        let results: Vec<Result<Vec<BatchRun>, BatchError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedulers
                .into_iter()
                .zip(work)
                .map(|(mut sched, batches)| {
                    scope.spawn(move || {
                        batches
                            .iter()
                            .map(|images| sched.run(net, qparams, images))
                            .collect::<Result<Vec<BatchRun>, BatchError>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker thread panicked"))
                .collect()
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetParams;

    fn image(net: &CapsNetConfig, s: usize) -> Tensor<f32> {
        Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
            ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
        })
    }

    #[test]
    fn pool_results_mirror_assignment_shape() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
        let pool = ShardPool::new(cfg, 3);
        let work = vec![
            vec![vec![image(&net, 0)], vec![image(&net, 1), image(&net, 2)]],
            vec![],
            vec![vec![image(&net, 3)]],
        ];
        let runs = pool.run_assignments(&net, &qparams, &work).expect("valid");
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len(), 2);
        assert!(runs[1].is_empty());
        assert_eq!(runs[0][1].traces.len(), 2);
    }

    #[test]
    fn pool_surfaces_batch_errors_instead_of_panicking() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
        let pool = ShardPool::new(cfg, 2);
        let work = vec![vec![vec![image(&net, 0)]], vec![vec![]]];
        assert_eq!(
            pool.run_assignments(&net, &qparams, &work).unwrap_err(),
            BatchError::EmptyBatch
        );
    }
}
