//! The shard pool: N long-lived `BatchScheduler` workers on OS threads.
//!
//! Each worker owns one [`BatchScheduler`] for its whole lifetime —
//! weights stay resident in its accelerator across every batch it
//! serves, exactly like a real serving replica — and executes its
//! assigned batch list in order on its own OS thread. Moving the
//! schedulers onto threads is what the `Send` audit in
//! `capsacc_core::batch` exists for: the whole engine is plain owned
//! data, so the pool needs no locks and no `unsafe`.
//!
//! Determinism: thread scheduling affects *wall-clock* finishing order
//! only. Each worker's result vector is keyed by its position in the
//! assignment list, every trace is bit-exact against a sequential run
//! of the same image (the batch-equivalence invariant), and cycle
//! counts are pure functions of batch shapes — so the pool's output is
//! identical no matter how the OS interleaves the threads.

use capsacc_capsnet::{CapsNetConfig, QuantizedParams};
use capsacc_core::{AcceleratorConfig, BatchError, BatchRun, BatchScheduler};
use capsacc_faults::FaultPlan;
use capsacc_tensor::{u64_from, Tensor};

/// A failure of a pool run — either a worker refused its input
/// (typed [`BatchError`]) or a worker *thread* died mid-batch. Both
/// surface as values: a crashed replica must never hang the pool or
/// leak a partial result as if it were complete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PoolError {
    /// A worker hit a batch-level input error (empty batch, mis-shaped
    /// image).
    Batch(BatchError),
    /// A worker thread panicked; the payload names the lowest such
    /// worker id and carries the panic message.
    WorkerPanicked {
        /// Id of the crashed worker.
        worker: usize,
        /// The thread's panic payload (`&str`/`String` payloads are
        /// captured verbatim; anything else is summarized).
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Batch(e) => write!(f, "worker batch error: {e}"),
            PoolError::WorkerPanicked { worker, message } => {
                write!(f, "shard worker {worker} panicked mid-run: {message}")
            }
        }
    }
}

/// Extracts a human-readable message from a thread's panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Batch(e) => Some(e),
            PoolError::WorkerPanicked { .. } => None,
        }
    }
}

impl From<BatchError> for PoolError {
    fn from(e: BatchError) -> Self {
        PoolError::Batch(e)
    }
}

/// A pool of `workers` weight-resident engine replicas.
///
/// # Example
///
/// ```
/// use capsacc_serve::ShardPool;
/// use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
/// use capsacc_core::AcceleratorConfig;
/// use capsacc_tensor::Tensor;
///
/// let net = CapsNetConfig::tiny();
/// let cfg = AcceleratorConfig::test_4x4();
/// let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
/// let image = |s: usize| {
///     Tensor::from_fn(&[1, 12, 12], move |i| ((i[1] * (s + 2) + i[2]) % 7) as f32 / 7.0)
/// };
/// let pool = ShardPool::new(cfg, 2);
/// // Worker 0 serves two batches, worker 1 serves one.
/// let work = vec![
///     vec![vec![image(0), image(1)], vec![image(2)]],
///     vec![vec![image(3), image(4)]],
/// ];
/// let runs = pool.run_assignments(&net, &qparams, &work).expect("valid batches");
/// assert_eq!(runs[0].len(), 2);
/// assert_eq!(runs[1][0].traces.len(), 2);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct ShardPool {
    cfg: AcceleratorConfig,
    workers: usize,
    /// Seeded fault plan: `(worker, batch)` slots whose execution
    /// panics are drawn from [`FaultPlan::pool_panic`], exercising the
    /// [`PoolError::WorkerPanicked`] recovery path deterministically.
    /// [`FaultPlan::none`] by default — no slot is ever poisoned.
    plan: FaultPlan,
}

impl ShardPool {
    /// Builds a pool of `workers` replicas of the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the configuration fails
    /// [`AcceleratorConfig::validate`].
    pub fn new(cfg: AcceleratorConfig, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker required");
        cfg.validate().expect("invalid accelerator configuration");
        Self {
            cfg,
            workers,
            plan: FaultPlan::none(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Arms a seeded [`FaultPlan`]: every `(worker, batch)` slot for
    /// which [`FaultPlan::pool_panic`] draws true panics mid-execution,
    /// and the pool must surface it as a typed
    /// [`PoolError::WorkerPanicked`]. Byte-invisible when the plan
    /// carries no pool faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The armed fault plan ([`FaultPlan::none`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Executes per-worker batch lists in parallel, one OS thread per
    /// worker, each on its own long-lived weight-resident scheduler.
    ///
    /// `work[w]` is worker `w`'s ordered batch list (as produced by
    /// [`crate::SimOutcome::assignments`]); the result mirrors its
    /// shape. Traces are bit-exact against fresh sequential runs and
    /// independent of thread interleaving.
    ///
    /// # Errors
    ///
    /// [`PoolError::WorkerPanicked`] if a worker thread died mid-run
    /// (lowest such worker id, panic message captured — every thread
    /// is still joined, so no replica leaks), else the first
    /// [`PoolError::Batch`] any worker hit (empty batch or mis-shaped
    /// image), by lowest worker id.
    ///
    /// # Panics
    ///
    /// Panics if `work.len()` differs from the pool's worker count.
    pub fn run_assignments(
        &self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        work: &[Vec<Vec<Tensor<f32>>>],
    ) -> Result<Vec<Vec<BatchRun>>, PoolError> {
        assert_eq!(work.len(), self.workers, "one batch list per worker");
        // Schedulers are built outside the threads and moved in: this is
        // the `Send` requirement the core crate's audit pins down.
        let schedulers: Vec<BatchScheduler> = (0..self.workers)
            .map(|_| BatchScheduler::new(self.cfg))
            .collect();
        let plan = self.plan;
        let joined: Vec<Result<Result<Vec<BatchRun>, BatchError>, String>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = schedulers
                    .into_iter()
                    .zip(work)
                    .enumerate()
                    .map(|(worker, (mut sched, batches))| {
                        scope.spawn(move || {
                            batches
                                .iter()
                                .enumerate()
                                .map(|(b, images)| {
                                    if plan.pool_panic(u64_from(worker), u64_from(b)) {
                                        panic!("injected shard-worker fault");
                                    }
                                    sched.run(net, qparams, images)
                                })
                                .collect::<Result<Vec<BatchRun>, BatchError>>()
                        })
                    })
                    .collect();
                // Join every thread before reporting anything: a crash
                // must not leave siblings running past the call.
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|p| panic_message(p.as_ref())))
                    .collect()
            });
        for (worker, r) in joined.iter().enumerate() {
            if let Err(message) = r {
                return Err(PoolError::WorkerPanicked {
                    worker,
                    message: message.clone(),
                });
            }
        }
        joined
            .into_iter()
            .map(|r| r.expect("panics handled above"))
            .collect::<Result<Vec<Vec<BatchRun>>, BatchError>>()
            .map_err(PoolError::Batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetParams;

    fn image(net: &CapsNetConfig, s: usize) -> Tensor<f32> {
        Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
            ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
        })
    }

    #[test]
    fn pool_results_mirror_assignment_shape() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
        let pool = ShardPool::new(cfg, 3);
        let work = vec![
            vec![vec![image(&net, 0)], vec![image(&net, 1), image(&net, 2)]],
            vec![],
            vec![vec![image(&net, 3)]],
        ];
        let runs = pool.run_assignments(&net, &qparams, &work).expect("valid");
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len(), 2);
        assert!(runs[1].is_empty());
        assert_eq!(runs[0][1].traces.len(), 2);
    }

    #[test]
    fn pool_surfaces_batch_errors_instead_of_panicking() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
        let pool = ShardPool::new(cfg, 2);
        let work = vec![vec![vec![image(&net, 0)]], vec![vec![]]];
        assert_eq!(
            pool.run_assignments(&net, &qparams, &work).unwrap_err(),
            PoolError::Batch(BatchError::EmptyBatch)
        );
    }

    /// Searches seeds for a plan that poisons exactly the `target`
    /// slot among `slots` — a deterministic stand-in for "inject a
    /// fault here" built from the real seeded draw.
    fn plan_poisoning(target: (u64, u64), slots: &[(u64, u64)]) -> FaultPlan {
        (0..u64::MAX)
            .map(|seed| {
                let mut p = FaultPlan::seeded(seed);
                p.serve.pool_panic_per_batch = 0.2;
                p
            })
            .find(|p| {
                slots
                    .iter()
                    .all(|&(w, b)| p.pool_panic(w, b) == ((w, b) == target))
            })
            .expect("a poisoning seed exists")
    }

    #[test]
    fn pool_surfaces_worker_panics_as_typed_errors() {
        // A replica that dies mid-batch must come back as a value, not
        // a hang or a partial result dressed up as success.
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
        let slots = [(0, 0), (1, 0), (1, 1), (2, 0)];
        let plan = plan_poisoning((1, 1), &slots);
        let pool = ShardPool::new(cfg, 3).with_fault_plan(plan);
        let work = vec![
            vec![vec![image(&net, 0)]],
            vec![vec![image(&net, 1)], vec![image(&net, 2)]],
            vec![vec![image(&net, 3)]],
        ];
        // The worker thread's panic message is expected on stderr; the
        // call itself must return cleanly with the typed error, panic
        // payload captured verbatim.
        assert_eq!(
            pool.run_assignments(&net, &qparams, &work).unwrap_err(),
            PoolError::WorkerPanicked {
                worker: 1,
                message: "injected shard-worker fault".to_string(),
            }
        );
        // A faultless plan on the same work still succeeds.
        let clean = ShardPool::new(cfg, 3);
        assert_eq!(*clean.fault_plan(), FaultPlan::none());
        assert!(clean.run_assignments(&net, &qparams, &work).is_ok());
        // A thread panic outranks a sibling's batch error: the pool
        // must still join everything and report the crash.
        let crash_plan = plan_poisoning((0, 0), &[(0, 0), (1, 0)]);
        let crash_and_error = ShardPool::new(cfg, 2).with_fault_plan(crash_plan);
        let bad = vec![vec![vec![image(&net, 0)]], vec![vec![]]];
        match crash_and_error
            .run_assignments(&net, &qparams, &bad)
            .unwrap_err()
        {
            PoolError::WorkerPanicked { worker: 0, .. } => {}
            other => panic!("expected worker 0 panic, got {other:?}"),
        }
    }
}
