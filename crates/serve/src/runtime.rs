//! The online, deterministic virtual-time serving runtime.
//!
//! The offline pipeline (`form_batches` + `dispatch_batches`) replays a
//! complete trace it can see end to end. This module is the *online*
//! generalization: arrivals, batch closings, worker completions and
//! autoscaler decisions are timestamped events processed in one fixed
//! total order, so the runtime makes every decision with only the past
//! in view — and still reruns byte-identically, because the only clock
//! is virtual time.
//!
//! # Event model
//!
//! Every event carries a `(cycle, rank, tiebreak)` key and the heap
//! pops the minimum. Ranks fix the intra-cycle order:
//!
//! 1. **worker-free** (rank 0, tiebreak = worker id) — capacity
//!    appears before anything else on a cycle uses it;
//! 2. **arrival** (rank 1, merged from the sorted trace cursor, never
//!    heap-resident) — requests arriving *on* a batch's deadline still
//!    join it, exactly like the offline batcher;
//! 3. **batch close** (rank 2, tiebreak = generation; stale closes are
//!    skipped by generation mismatch);
//! 4. **scale evaluation** (rank 3) — the autoscaler sees the cycle's
//!    settled state.
//!
//! # Admission, shedding, SLO-aware closing, autoscaling
//!
//! A bounded queue rejects work instead of growing without bound
//! ([`Rejection::QueueFull`]); under pressure the lowest-priority
//! member of the forming batch is evicted in favor of a
//! higher-priority newcomer ([`Rejection::ShedLowPriority`]); requests
//! whose SLO cannot be met even by a solo batch are refused up front
//! ([`Rejection::DeadlineInfeasible`]). With
//! [`RuntimeConfig::deadline_aware`] set, a forming batch closes early
//! when its most-constrained member's budget is at risk (predicted via
//! the service-cycles table at the worst-case batch size). The
//! autoscaler spins workers up on queue depth and down on idleness,
//! charging every spin-up an explicit weight-fill warmup in cycles —
//! initial workers are weight-resident and pay nothing.
//!
//! With shedding, deadlines, priorities and autoscaling all disabled,
//! this runtime reproduces the offline pipeline's [`SimOutcome`]
//! bit-exactly (pinned by `tests/serve_equivalence.rs`).
//!
//! # Fault tolerance
//!
//! [`ResilienceConfig`] arms the runtime against a seeded
//! [`FaultPlan`] (see `capsacc-faults`): a dispatch attempt may crash
//! its worker mid-batch, stall before recovering, or straggle at a ×k
//! service multiplier. The recovery half lives here:
//!
//! - **crash → requeue with backoff** — the crashed worker's batch
//!   returns to the head of the admission queue as a typed
//!   [`EvKind::Requeue`] event after a deterministic exponential
//!   backoff; a bounded retry budget converts persistent failures
//!   into typed [`Rejection::RetryExhausted`] refusals instead of
//!   losing requests, and a replacement worker spawns through the
//!   autoscaler's warmup path, its weight re-staging charged by the
//!   caller's respawn model ([`ServiceModel::respawn_warmup`]);
//! - **straggler hedging** — once an attempt outlives a p99-derived
//!   deadline (over the observed service durations), a duplicate
//!   dispatch is hedged onto a free worker; the first completion wins
//!   and the loser is cancelled, its unfinished work un-charged;
//! - **graceful degradation** — under sustained queue pressure a
//!   global degradation level (0..=2) sheds routing iterations per
//!   priority class (higher classes degrade last) via the level-aware
//!   service model, trading accuracy for goodput instead of shedding
//!   requests outright.
//!
//! Every decision is a [`LoggedEvent`] folded into the digest, so
//! faults-on reruns are byte-identical; with
//! [`ResilienceConfig::none`] no fault event is ever scheduled and
//! the event stream is byte-identical to the fault-free runtime.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use capsacc_faults::{FaultPlan, CRASH_FRACTION_DENOM};
use capsacc_tensor::u64_from;

use crate::batcher::{BatcherConfig, ConfigError};
use crate::sim::{percentile, BatchStat, RequestStat, SimOutcome};
use crate::trace::{Request, VIRTUAL_TIME_HORIZON};

/// Why the runtime refused a request.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Rejection {
    /// The admission queue (forming batch + closed-but-undispatched
    /// backlog) was at capacity and the newcomer did not outrank any
    /// forming-batch member.
    QueueFull,
    /// The request's SLO is shorter than a solo batch's service time —
    /// it could never be met, so it is refused at arrival instead of
    /// wasting capacity.
    DeadlineInfeasible,
    /// The request was admitted but later evicted from the forming
    /// batch in favor of a higher-priority newcomer.
    ShedLowPriority,
    /// The request's batch was dispatched, crashed, and requeued until
    /// the bounded retry budget ran out.
    RetryExhausted,
}

/// One refused request: who, when, why, and (for evictions) the batch
/// it was evicted from.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RejectionRecord {
    /// Index of the request in the input trace.
    pub request: usize,
    /// Cycle of the rejection decision.
    pub cycle: u64,
    /// Why it was refused.
    pub rejection: Rejection,
    /// The forming batch it was evicted from, if it had been admitted.
    pub batch: Option<usize>,
}

/// Why a batch closed.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CloseCause {
    /// The `max_batch`-th request arrived.
    Size,
    /// The batcher's `max_wait_cycles` deadline passed.
    Deadline,
    /// A member's SLO budget was at risk (deadline-aware early close).
    SloRisk,
}

/// One autoscaler action.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ScalingEvent {
    /// A worker was spun up; it becomes dispatchable at `ready_at`
    /// after its weight-fill warmup.
    Up {
        /// Decision cycle.
        cycle: u64,
        /// Id of the new worker.
        worker: usize,
        /// Cycle the worker finishes warming up.
        ready_at: u64,
    },
    /// An idle worker was retired.
    Down {
        /// Decision cycle.
        cycle: u64,
        /// Id of the retired worker.
        worker: usize,
    },
}

/// One entry of the runtime's event log — the byte-identical-rerun
/// artifact the determinism proptests compare.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LoggedEvent {
    /// A request arrived.
    Arrival {
        /// Cycle of the event.
        cycle: u64,
        /// Request index.
        request: usize,
        /// Priority class.
        class: usize,
    },
    /// A request joined the forming batch.
    Admitted {
        /// Cycle of the event.
        cycle: u64,
        /// Request index.
        request: usize,
        /// Batch it joined.
        batch: usize,
    },
    /// A request was refused.
    Rejected {
        /// Cycle of the event.
        cycle: u64,
        /// Request index.
        request: usize,
        /// Why.
        rejection: Rejection,
    },
    /// The forming batch closed.
    BatchClosed {
        /// Cycle of the event.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Members at close.
        len: usize,
        /// Why it closed.
        cause: CloseCause,
    },
    /// A closed batch started on a worker.
    Dispatched {
        /// Cycle of the event.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Worker it runs on.
        worker: usize,
        /// Batch size.
        len: usize,
    },
    /// A batch completed.
    Completed {
        /// Cycle of the event.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Worker it ran on.
        worker: usize,
    },
    /// The autoscaler spun up a worker.
    ScaledUp {
        /// Cycle of the event.
        cycle: u64,
        /// New worker id.
        worker: usize,
        /// Cycle its warmup completes.
        ready_at: u64,
    },
    /// The autoscaler retired a worker.
    ScaledDown {
        /// Cycle of the event.
        cycle: u64,
        /// Retired worker id.
        worker: usize,
    },
    /// A worker crashed partway through its batch (injected by the
    /// [`FaultPlan`]); the partial work is wasted.
    WorkerCrashed {
        /// Cycle of the event.
        cycle: u64,
        /// Batch whose attempt died.
        batch: usize,
        /// Crashed worker id.
        worker: usize,
        /// Cycles of partial work lost.
        wasted: u64,
    },
    /// A crashed batch re-enters the admission queue after its
    /// exponential backoff.
    Requeued {
        /// Crash-decision cycle.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Dispatch attempts consumed so far.
        attempt: u32,
        /// Cycle the batch becomes dispatchable again.
        ready_at: u64,
    },
    /// A dispatch attempt stalls for `stall` extra cycles before
    /// recovering (injected by the [`FaultPlan`]).
    WorkerStalled {
        /// Dispatch cycle.
        cycle: u64,
        /// Stalled worker id.
        worker: usize,
        /// Batch being served.
        batch: usize,
        /// Extra cycles charged.
        stall: u64,
    },
    /// A dispatch attempt runs as a straggler at a ×`factor` service
    /// multiplier (injected by the [`FaultPlan`]).
    Straggling {
        /// Dispatch cycle.
        cycle: u64,
        /// Straggling worker id.
        worker: usize,
        /// Batch being served.
        batch: usize,
        /// Service multiplier.
        factor: u64,
    },
    /// A duplicate of a slow batch was hedged onto a second worker
    /// after the p99-derived deadline passed.
    HedgeDispatched {
        /// Cycle of the event.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Worker running the duplicate.
        worker: usize,
        /// Worker running the original attempt.
        primary: usize,
    },
    /// First-completion-wins: the losing copy of a hedged batch was
    /// cancelled and its worker freed.
    HedgeCancelled {
        /// Cycle of the event.
        cycle: u64,
        /// Batch id.
        batch: usize,
        /// Worker whose copy was cancelled.
        worker: usize,
    },
    /// The graceful-degradation controller moved the global
    /// degradation level.
    Degraded {
        /// Cycle of the event.
        cycle: u64,
        /// New global level (0 = full quality).
        level: u32,
    },
}

/// Per-priority-class serving statistics.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ClassStats {
    /// Requests of this class that arrived.
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed by admission control ([`Rejection::QueueFull`] or
    /// [`Rejection::ShedLowPriority`]).
    pub shed: usize,
    /// Requests refused as [`Rejection::DeadlineInfeasible`].
    pub infeasible: usize,
    /// Served requests that met their SLO (best-effort requests always
    /// count as met).
    pub slo_met: usize,
    /// Requests refused as [`Rejection::RetryExhausted`] after their
    /// batch ran out of crash retries.
    pub retry_exhausted: usize,
    /// Served requests whose batch ran at a degraded routing level
    /// (quality traded for goodput; subset of `served`).
    pub degraded: usize,
}

/// Autoscaler policy: queue-depth-driven scale-up, idleness-driven
/// scale-down, evaluated on a fixed virtual-time period.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct AutoscalerConfig {
    /// Never retire below this many active workers.
    pub min_workers: usize,
    /// Never spin up beyond this many active workers.
    pub max_workers: usize,
    /// Spin up one worker when queued requests exceed this many per
    /// active worker.
    pub scale_up_queue_per_worker: usize,
    /// Retire an idle worker once it has sat free this many cycles.
    pub scale_down_idle_cycles: u64,
    /// Cycles between autoscaler evaluations.
    pub eval_period_cycles: u64,
}

/// Crash-retry policy: how many dispatch attempts a batch gets and
/// how the requeue backoff grows.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RetryConfig {
    /// Maximum dispatch attempts per batch (including the first); once
    /// exhausted the members are refused as
    /// [`Rejection::RetryExhausted`].
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base_cycles << (n - 1)`,
    /// deterministic and in virtual cycles.
    pub backoff_base_cycles: u64,
}

impl RetryConfig {
    /// The default budget: three attempts, 1000-cycle base backoff.
    pub fn standard() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff_base_cycles: 1_000,
        }
    }
}

/// Straggler-hedging policy: when an attempt outlives a p99-derived
/// deadline, duplicate it onto a free worker; first completion wins.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HedgeConfig {
    /// Observed completions needed before the p99 estimate is trusted.
    pub min_samples: usize,
    /// Until then, hedge after `expected_service * cold_factor_pct /
    /// 100` cycles (must be >= 100).
    pub cold_factor_pct: u64,
}

impl HedgeConfig {
    /// The default detector: 32 samples, 3× cold deadline.
    pub fn standard() -> Self {
        HedgeConfig {
            min_samples: 32,
            cold_factor_pct: 300,
        }
    }
}

/// Graceful-degradation policy: a global level in `0..=max_level`
/// stepped on queue-occupancy watermarks; the level-aware service
/// model sheds routing iterations per class instead of shedding
/// requests.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct DegradeConfig {
    /// Step the level up when admitted-but-undispatched occupancy
    /// reaches this many requests.
    pub high_occupancy: usize,
    /// Step the level down once occupancy falls back to this bound.
    pub low_occupancy: usize,
    /// Cycles between controller evaluations.
    pub eval_period_cycles: u64,
    /// Highest global level (2 for the 3→2→1 routing ladder).
    pub max_level: u32,
}

/// Fault-tolerance configuration: the seeded [`FaultPlan`] plus the
/// recovery policies. [`ResilienceConfig::none`] is byte-invisible —
/// no fault event is ever drawn or scheduled.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ResilienceConfig {
    /// The seeded fault schedule (serve-layer rates apply here).
    pub faults: FaultPlan,
    /// Crash-retry budget and backoff.
    pub retry: RetryConfig,
    /// Straggler hedging, or `None` to never duplicate work.
    pub hedge: Option<HedgeConfig>,
    /// Graceful degradation, or `None` to keep full quality always.
    pub degrade: Option<DegradeConfig>,
}

impl ResilienceConfig {
    /// Fault-free, hedge-free, full-quality: the exact pre-fault
    /// runtime behavior.
    pub fn none() -> Self {
        ResilienceConfig {
            faults: FaultPlan::none(),
            retry: RetryConfig::standard(),
            hedge: None,
            degrade: None,
        }
    }

    /// True when this configuration can never perturb a run.
    pub fn is_none(&self) -> bool {
        self.faults.is_none() && self.hedge.is_none() && self.degrade.is_none()
    }
}

/// Fault and recovery counters for one run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct FaultStats {
    /// Worker crashes injected.
    pub crashes: usize,
    /// Stall faults injected.
    pub stalls: usize,
    /// Straggler faults injected.
    pub stragglers: usize,
    /// Batches requeued after a crash.
    pub requeues: usize,
    /// Batches whose retry budget ran out.
    pub exhausted_batches: usize,
    /// Duplicate dispatches hedged.
    pub hedges: usize,
    /// Hedged duplicates that won the race.
    pub hedge_wins: usize,
    /// Global degradation-level transitions.
    pub degrade_shifts: usize,
    /// Cycles of crashed partial work plus cancelled hedge work.
    pub wasted_cycles: u64,
}

/// The level-aware service and respawn model consumed by
/// [`run_runtime_resilient`].
pub struct ServiceModel<'a> {
    /// `service(level, n)` = cycles to serve a batch of `n` at global
    /// degradation `level` (level 0 = full quality; must be positive
    /// and defined for every level up to the configured maximum).
    pub service: &'a dyn Fn(u32, usize) -> u64,
    /// Warmup charged to the `k`-th crash-replacement worker (weights
    /// re-staged through the memory subsystem, possibly under memory
    /// faults). Autoscaler spin-ups keep the flat `warmup_cycles`.
    pub respawn_warmup: &'a dyn Fn(u64) -> u64,
}

/// Full configuration of the online runtime.
#[derive(Clone, PartialEq, Debug)]
pub struct RuntimeConfig {
    /// Initial (weight-resident) workers.
    pub workers: usize,
    /// Micro-batching policy.
    pub batcher: BatcherConfig,
    /// Admission-queue bound over *waiting* requests (forming batch +
    /// closed backlog); `None` is unbounded and never sheds.
    pub queue_capacity: Option<usize>,
    /// Enables SLO-aware early closing and infeasibility rejection.
    pub deadline_aware: bool,
    /// Autoscaler policy, or `None` for a fixed pool.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Retain the full [`LoggedEvent`] stream in the outcome (the FNV
    /// digest is always computed; the log itself costs memory on
    /// million-request runs).
    pub record_events: bool,
    /// Fault injection + recovery policy;
    /// [`ResilienceConfig::none()`] is byte-invisible.
    pub resilience: ResilienceConfig,
}

impl RuntimeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// The first violated constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        self.batcher.validate()?;
        if self.queue_capacity == Some(0) {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if let Some(a) = &self.autoscaler {
            if a.min_workers == 0 {
                return Err(ConfigError::InvalidAutoscaler(
                    "min_workers must be at least 1",
                ));
            }
            if a.max_workers < a.min_workers {
                return Err(ConfigError::InvalidAutoscaler(
                    "max_workers below min_workers",
                ));
            }
            if a.eval_period_cycles == 0 {
                return Err(ConfigError::InvalidAutoscaler(
                    "eval_period_cycles must be at least 1",
                ));
            }
            if self.workers < a.min_workers || self.workers > a.max_workers {
                return Err(ConfigError::InvalidAutoscaler(
                    "initial workers outside [min_workers, max_workers]",
                ));
            }
        }
        let res = &self.resilience;
        if let Err(msg) = res.faults.validate() {
            return Err(ConfigError::InvalidResilience(msg));
        }
        if res.retry.max_attempts == 0 {
            return Err(ConfigError::InvalidResilience(
                "retry.max_attempts must be at least 1",
            ));
        }
        if res.retry.backoff_base_cycles == 0 {
            return Err(ConfigError::InvalidResilience(
                "retry.backoff_base_cycles must be at least 1",
            ));
        }
        if let Some(h) = &res.hedge {
            if h.min_samples == 0 {
                return Err(ConfigError::InvalidResilience(
                    "hedge.min_samples must be at least 1",
                ));
            }
            if h.cold_factor_pct < 100 {
                return Err(ConfigError::InvalidResilience(
                    "hedge.cold_factor_pct must be at least 100",
                ));
            }
        }
        if let Some(d) = &res.degrade {
            if d.max_level == 0 {
                return Err(ConfigError::InvalidResilience(
                    "degrade.max_level must be at least 1",
                ));
            }
            if d.low_occupancy >= d.high_occupancy {
                return Err(ConfigError::InvalidResilience(
                    "degrade.low_occupancy must be below high_occupancy",
                ));
            }
            if d.eval_period_cycles == 0 {
                return Err(ConfigError::InvalidResilience(
                    "degrade.eval_period_cycles must be at least 1",
                ));
            }
        }
        Ok(())
    }
}

/// Everything one online run produced.
#[derive(Clone, PartialEq, Debug)]
pub struct RuntimeOutcome {
    /// The served subset in the offline pipeline's shape: per-request
    /// stats (ascending request index), per-batch stats (close order,
    /// completed batches only — retry-exhausted batches are absent and
    /// later batch indices shift down), per-worker busy cycles (every
    /// worker ever active), makespan.
    pub sim: SimOutcome,
    /// Input indices of the served requests, ascending — `sim.requests[i]`
    /// describes request `served[i]`.
    pub served: Vec<usize>,
    /// Every refused request, in decision order.
    pub rejections: Vec<RejectionRecord>,
    /// Why each batch closed, aligned with `sim.batches` (completed
    /// batches in close order).
    pub close_causes: Vec<CloseCause>,
    /// Autoscaler actions, in decision order.
    pub scaling: Vec<ScalingEvent>,
    /// Per-class statistics, indexed by class.
    pub class_stats: Vec<ClassStats>,
    /// Warmup charged to each autoscaled spin-up, in cycles.
    pub warmup_cycles: u64,
    /// Requests offered (served + rejected).
    pub total_requests: usize,
    /// FNV-1a digest of the full event stream — always computed, so
    /// byte-identical-rerun checks don't need the log in memory.
    pub event_digest: u64,
    /// The full event stream, when [`RuntimeConfig::record_events`].
    pub events: Vec<LoggedEvent>,
    /// Fault and recovery counters (all zero under
    /// [`ResilienceConfig::none`]).
    pub faults: FaultStats,
}

impl RuntimeOutcome {
    /// Requests shed by admission control (full queue or priority
    /// eviction); excludes infeasible-SLO refusals.
    pub fn shed_count(&self) -> usize {
        self.rejections
            .iter()
            .filter(|r| {
                matches!(
                    r.rejection,
                    Rejection::QueueFull | Rejection::ShedLowPriority
                )
            })
            .count()
    }

    /// All refused requests.
    pub fn rejected_count(&self) -> usize {
        self.rejections.len()
    }

    /// Requests refused after their batch's retry budget ran out.
    pub fn retry_exhausted_count(&self) -> usize {
        self.rejections
            .iter()
            .filter(|r| r.rejection == Rejection::RetryExhausted)
            .count()
    }

    /// Served requests as a fraction of everything offered — the
    /// crash-recovery goodput metric (1.0 when nothing was offered).
    pub fn served_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        self.served.len() as f64 / self.total_requests as f64
    }

    /// Shed requests as a fraction of everything offered.
    pub fn shed_rate(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.shed_count() as f64 / self.total_requests as f64
    }

    /// Requests served *within their own SLO* per cycle of makespan —
    /// the overload metric: throughput counts late work, goodput does
    /// not.
    pub fn goodput_per_cycle(&self) -> f64 {
        if self.sim.makespan_cycles == 0 {
            return 0.0;
        }
        let good: usize = self.class_stats.iter().map(|c| c.slo_met).sum();
        good as f64 / self.sim.makespan_cycles as f64
    }

    /// Fraction of this class's served requests that met their SLO
    /// (1.0 when the class served nothing).
    pub fn slo_attainment(&self, class: usize) -> f64 {
        let c = &self.class_stats[class];
        if c.served == 0 {
            return 1.0;
        }
        c.slo_met as f64 / c.served as f64
    }
}

const RANK_WORKER_FREE: u8 = 0;
const RANK_ARRIVAL: u8 = 1;
const RANK_CLOSE: u8 = 2;
const RANK_SCALE: u8 = 3;

#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum EvKind {
    /// `epoch` guards staleness: crashes and hedge cancellations bump
    /// the worker's epoch, orphaning the completion event already in
    /// the heap.
    WorkerFree {
        worker: usize,
        epoch: u64,
    },
    Close {
        generation: u64,
    },
    /// A crashed batch re-enters the queue (tiebreak drawn from the
    /// shared generation counter).
    Requeue {
        batch: usize,
    },
    /// Straggler probe for a batch; `epoch` is the batch's dispatch
    /// count at scheduling time, so probes for a requeued attempt
    /// don't act on a later one.
    HedgeCheck {
        batch: usize,
        epoch: u32,
    },
    ScaleEval,
    DegradeEval,
}

/// Heap key: `(cycle, rank, tiebreak)` is unique per pending event
/// except for orphaned worker-free events (same worker, same cycle,
/// different epoch), where the derived `kind` order — epoch ascending
/// — keeps the total order deterministic.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Ev {
    cycle: u64,
    rank: u8,
    tiebreak: u64,
    kind: EvKind,
}

struct Worker {
    free_at: u64,
    busy: u64,
    active: bool,
    current: Option<usize>,
    /// Bumped on every dispatch, crash and cancellation; a
    /// [`EvKind::WorkerFree`] event only acts when its epoch matches.
    epoch: u64,
}

/// One live dispatch attempt (primary or hedged duplicate).
struct Attempt {
    worker: usize,
    start: u64,
    /// Scheduled end: completion, or the crash point when `crash`.
    end: u64,
    crash: bool,
    hedge: bool,
}

/// A dispatched batch that has not completed: its members, the
/// degradation level it runs at, and its live copies (two while a
/// hedge is racing).
struct Inflight {
    members: Vec<usize>,
    close_cycle: u64,
    level: u32,
    hedged: bool,
    copies: Vec<Attempt>,
}

struct Forming {
    id: usize,
    members: Vec<usize>,
    deadline: u64,
    close_at: u64,
    generation: u64,
}

struct ClosedBatch {
    id: usize,
    members: Vec<usize>,
    close_cycle: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(h: &mut u64, word: u64) {
    *h ^= word;
    *h = h.wrapping_mul(FNV_PRIME);
}

fn digest_event(h: &mut u64, e: &LoggedEvent) {
    match *e {
        LoggedEvent::Arrival {
            cycle,
            request,
            class,
        } => {
            fnv_mix(h, 1);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(request));
            fnv_mix(h, u64_from(class));
        }
        LoggedEvent::Admitted {
            cycle,
            request,
            batch,
        } => {
            fnv_mix(h, 2);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(request));
            fnv_mix(h, u64_from(batch));
        }
        LoggedEvent::Rejected {
            cycle,
            request,
            rejection,
        } => {
            fnv_mix(h, 3);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(request));
            fnv_mix(h, u64::from(rejection as u8));
        }
        LoggedEvent::BatchClosed {
            cycle,
            batch,
            len,
            cause,
        } => {
            fnv_mix(h, 4);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(len));
            fnv_mix(h, u64::from(cause as u8));
        }
        LoggedEvent::Dispatched {
            cycle,
            batch,
            worker,
            len,
        } => {
            fnv_mix(h, 5);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, u64_from(len));
        }
        LoggedEvent::Completed {
            cycle,
            batch,
            worker,
        } => {
            fnv_mix(h, 6);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(worker));
        }
        LoggedEvent::ScaledUp {
            cycle,
            worker,
            ready_at,
        } => {
            fnv_mix(h, 7);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, ready_at);
        }
        LoggedEvent::ScaledDown { cycle, worker } => {
            fnv_mix(h, 8);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(worker));
        }
        LoggedEvent::WorkerCrashed {
            cycle,
            batch,
            worker,
            wasted,
        } => {
            fnv_mix(h, 9);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, wasted);
        }
        LoggedEvent::Requeued {
            cycle,
            batch,
            attempt,
            ready_at,
        } => {
            fnv_mix(h, 10);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64::from(attempt));
            fnv_mix(h, ready_at);
        }
        LoggedEvent::WorkerStalled {
            cycle,
            worker,
            batch,
            stall,
        } => {
            fnv_mix(h, 11);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, stall);
        }
        LoggedEvent::Straggling {
            cycle,
            worker,
            batch,
            factor,
        } => {
            fnv_mix(h, 12);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, factor);
        }
        LoggedEvent::HedgeDispatched {
            cycle,
            batch,
            worker,
            primary,
        } => {
            fnv_mix(h, 13);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(worker));
            fnv_mix(h, u64_from(primary));
        }
        LoggedEvent::HedgeCancelled {
            cycle,
            batch,
            worker,
        } => {
            fnv_mix(h, 14);
            fnv_mix(h, cycle);
            fnv_mix(h, u64_from(batch));
            fnv_mix(h, u64_from(worker));
        }
        LoggedEvent::Degraded { cycle, level } => {
            fnv_mix(h, 15);
            fnv_mix(h, cycle);
            fnv_mix(h, u64::from(level));
        }
    }
}

/// Streaming consumer of the runtime's event stream.
///
/// The runtime hands every [`LoggedEvent`] to its sink *in the total
/// event order*, immediately after folding it into the FNV digest —
/// whether or not [`RuntimeConfig::record_events`] retains the log.
/// Observers (e.g. the telemetry recorder in [`crate::telemetry`]) can
/// thus build timelines and windowed metrics over million-request runs
/// without the runtime materializing a `Vec<LoggedEvent>`. A sink
/// never feeds back into the runtime, so it cannot perturb the
/// outcome or the digest.
pub trait EventSink {
    /// Observes one event. Called in the runtime's total event order.
    fn event(&mut self, e: &LoggedEvent);
}

/// The do-nothing sink behind [`run_runtime`].
#[derive(Copy, Clone, Default, Debug)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _e: &LoggedEvent) {}
}

/// Observed service durations kept for the p99 hedge deadline: a
/// fixed ring so million-request runs stay O(1) per completion.
const HEDGE_HISTORY: usize = 1024;

struct Runtime<'a> {
    cfg: &'a RuntimeConfig,
    requests: &'a [Request],
    model: &'a ServiceModel<'a>,
    warmup: u64,

    heap: BinaryHeap<Reverse<Ev>>,
    workers: Vec<Worker>,
    forming: Option<Forming>,
    queue: VecDeque<ClosedBatch>,
    next_batch_id: usize,
    next_generation: u64,

    /// In-flight batches by id (`None` once completed, exhausted, or
    /// awaiting requeue).
    inflight: Vec<Option<Inflight>>,
    /// Dispatch attempts consumed, by batch id.
    attempts: Vec<u32>,
    /// Monotone dispatch-attempt ordinal — the fault plan's index.
    attempt_seq: u64,
    /// Monotone crash-replacement ordinal — the respawn model's index.
    respawn_seq: u64,
    /// Ring of observed service durations for the hedge deadline.
    svc_hist: Vec<u64>,
    svc_hist_pos: usize,
    /// Global graceful-degradation level.
    degrade_level: u32,
    fault_stats: FaultStats,

    request_stats: Vec<Option<RequestStat>>,
    /// By batch id; filled at successful completion (satellite of the
    /// conservation fix: a requeued-then-served request is counted
    /// exactly once, at completion).
    batch_stats: Vec<Option<BatchStat>>,
    rejections: Vec<RejectionRecord>,
    close_causes: Vec<CloseCause>,
    scaling: Vec<ScalingEvent>,
    class_stats: Vec<ClassStats>,
    digest: u64,
    sink: &'a mut dyn EventSink,
    events: Vec<LoggedEvent>,
}

impl<'a> Runtime<'a> {
    fn log(&mut self, e: LoggedEvent) {
        digest_event(&mut self.digest, &e);
        self.sink.event(&e);
        if self.cfg.record_events {
            self.events.push(e);
        }
    }

    /// Admitted-but-undispatched requests: forming members + closed
    /// backlog — the population the queue bound covers.
    fn occupancy(&self) -> usize {
        let forming = self.forming.as_ref().map_or(0, |f| f.members.len());
        forming + self.queue.iter().map(|b| b.members.len()).sum::<usize>()
    }

    fn active_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.active).count()
    }

    /// Latest cycle the forming batch may close and still (by the
    /// worst-case service estimate, at full quality) meet every
    /// member's SLO.
    fn slo_close_bound(&self, members: &[usize]) -> u64 {
        let worst = (self.model.service)(0, self.cfg.batcher.max_batch);
        members
            .iter()
            .filter_map(|&r| {
                self.requests[r]
                    .slo_cycles
                    .map(|slo| (self.requests[r].arrival + slo).saturating_sub(worst))
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Recomputes the forming batch's close cycle and (re)schedules its
    /// close event when the target moved.
    fn schedule_close(&mut self, now: u64) {
        let deadline_aware = self.cfg.deadline_aware;
        let slo_bound = if deadline_aware {
            self.slo_close_bound(&self.forming.as_ref().expect("forming batch open").members)
        } else {
            u64::MAX
        };
        let f = self.forming.as_mut().expect("forming batch open");
        let close_at = f.deadline.min(slo_bound).max(now);
        // `generation == 0` marks a batch whose close was never
        // scheduled; otherwise reschedule only when the target moved
        // (the generation bump invalidates the stale event).
        if f.generation == 0 || close_at != f.close_at {
            f.close_at = close_at;
            self.next_generation += 1;
            f.generation = self.next_generation;
            let generation = f.generation;
            self.heap.push(Reverse(Ev {
                cycle: close_at,
                rank: RANK_CLOSE,
                tiebreak: generation,
                kind: EvKind::Close { generation },
            }));
        }
    }

    fn on_arrival(&mut self, req: usize, now: u64) {
        let r = self.requests[req];
        self.log(LoggedEvent::Arrival {
            cycle: now,
            request: req,
            class: r.class,
        });
        self.class_stats[r.class].offered += 1;

        // Infeasible SLOs are refused before they consume queue space.
        if self.cfg.deadline_aware {
            if let Some(slo) = r.slo_cycles {
                if slo < (self.model.service)(0, 1) {
                    self.class_stats[r.class].infeasible += 1;
                    self.reject(req, now, Rejection::DeadlineInfeasible, None);
                    return;
                }
            }
        }

        // Admission control: at capacity, evict the worst of (forming
        // members ∪ newcomer) — lowest class first, then latest
        // arrival, then highest index (newest work is cheapest to
        // lose).
        if let Some(cap) = self.cfg.queue_capacity {
            if self.occupancy() >= cap {
                let key = |idx: usize| {
                    let q = self.requests[idx];
                    (q.class, Reverse(q.arrival), Reverse(idx))
                };
                let member_victim = self
                    .forming
                    .as_ref()
                    .and_then(|f| f.members.iter().copied().min_by_key(|&m| key(m)));
                match member_victim {
                    Some(victim) if key(victim) < key(req) => {
                        let f = self.forming.as_mut().expect("victim came from forming");
                        let batch = f.id;
                        let pos = f
                            .members
                            .iter()
                            .position(|&m| m == victim)
                            .expect("victim is a member");
                        f.members.remove(pos);
                        self.class_stats[self.requests[victim].class].shed += 1;
                        self.reject(victim, now, Rejection::ShedLowPriority, Some(batch));
                    }
                    _ => {
                        self.class_stats[r.class].shed += 1;
                        self.reject(req, now, Rejection::QueueFull, None);
                        return;
                    }
                }
            }
        }

        // Admit into the forming batch (opening one if needed).
        if self.forming.is_none() {
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            let deadline = now
                .checked_add(self.cfg.batcher.max_wait_cycles)
                .expect("deadline overflows u64: arrival beyond the virtual-time horizon");
            self.forming = Some(Forming {
                id,
                members: Vec::new(),
                deadline,
                close_at: 0,
                generation: 0,
            });
        }
        let f = self.forming.as_mut().expect("forming batch open");
        let batch = f.id;
        f.members.push(req);
        let len = f.members.len();
        self.log(LoggedEvent::Admitted {
            cycle: now,
            request: req,
            batch,
        });
        if len == self.cfg.batcher.max_batch {
            self.close_forming(now, CloseCause::Size);
        } else {
            self.schedule_close(now);
        }
    }

    fn reject(&mut self, req: usize, now: u64, rejection: Rejection, batch: Option<usize>) {
        self.log(LoggedEvent::Rejected {
            cycle: now,
            request: req,
            rejection,
        });
        self.rejections.push(RejectionRecord {
            request: req,
            cycle: now,
            rejection,
            batch,
        });
    }

    fn on_close_event(&mut self, generation: u64, now: u64) {
        let live = self
            .forming
            .as_ref()
            .is_some_and(|f| f.generation == generation);
        if !live {
            return; // stale: the batch size-closed or was rescheduled
        }
        let f = self.forming.as_ref().expect("live close event");
        let cause = if f.close_at >= f.deadline {
            CloseCause::Deadline
        } else {
            CloseCause::SloRisk
        };
        self.close_forming(now, cause);
    }

    fn close_forming(&mut self, now: u64, cause: CloseCause) {
        let f = self.forming.take().expect("forming batch to close");
        debug_assert!(!f.members.is_empty(), "empty batches never form");
        self.log(LoggedEvent::BatchClosed {
            cycle: now,
            batch: f.id,
            len: f.members.len(),
            cause,
        });
        debug_assert_eq!(self.close_causes.len(), f.id, "close order is id order");
        self.close_causes.push(cause);
        self.batch_stats.push(None);
        self.inflight.push(None);
        self.attempts.push(0);
        self.queue.push_back(ClosedBatch {
            id: f.id,
            members: f.members,
            close_cycle: now,
        });
        self.try_dispatch(now);
    }

    /// Lowest-id free active worker at `now`, if any.
    fn free_worker(&self, now: u64) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.active && w.current.is_none() && w.free_at <= now)
            .min_by_key(|(id, w)| (w.free_at, *id))
            .map(|(id, _)| id)
    }

    fn try_dispatch(&mut self, now: u64) {
        while !self.queue.is_empty() {
            // Earliest-freed active worker, lowest id on ties — the
            // online analogue of the offline dispatcher's
            // `min_by_key((free_at, id))`, restricted to workers whose
            // capacity exists at `now`.
            let Some(worker) = self.free_worker(now) else {
                break;
            };
            let b = self.queue.pop_front().expect("non-empty queue");
            self.dispatch(b, worker, now);
        }
    }

    /// Degradation level a batch runs at: the minimum over its members
    /// of `global_level - class` (higher classes degrade last), so one
    /// premium member keeps the whole batch at its quality.
    fn batch_level(&self, members: &[usize]) -> u32 {
        if self.degrade_level == 0 {
            return 0;
        }
        members
            .iter()
            .map(|&m| {
                let class = u32::try_from(self.requests[m].class).expect("class fits u32");
                self.degrade_level.saturating_sub(class)
            })
            .min()
            .unwrap_or(0)
    }

    /// Perturbed service cycles plus crash fate for one dispatch
    /// attempt, drawing the fault plan at this attempt's ordinal.
    fn attempt_outcome(
        &mut self,
        batch: usize,
        worker: usize,
        level: u32,
        len: usize,
        now: u64,
    ) -> (u64, bool) {
        let base = (self.model.service)(level, len);
        let plan = &self.cfg.resilience.faults;
        if !plan.has_serve_faults() {
            return (base, false);
        }
        let seq = self.attempt_seq;
        self.attempt_seq += 1;
        let mut cycles = base;
        if let Some(factor) = plan.straggler(seq) {
            cycles = cycles
                .checked_mul(factor)
                .expect("straggler service overflows u64");
            self.fault_stats.stragglers += 1;
            self.log(LoggedEvent::Straggling {
                cycle: now,
                worker,
                batch,
                factor,
            });
        }
        if let Some(stall) = plan.worker_stall(seq) {
            cycles = cycles
                .checked_add(stall)
                .expect("stalled service overflows u64");
            self.fault_stats.stalls += 1;
            self.log(LoggedEvent::WorkerStalled {
                cycle: now,
                worker,
                batch,
                stall,
            });
        }
        match plan.worker_crash(seq) {
            Some(frac) => {
                // The crash lands strictly inside the service window
                // (clamped to at least one cycle of wasted work).
                let offset = cycles.checked_mul(frac).expect("crash point overflows u64")
                    / CRASH_FRACTION_DENOM;
                (offset.clamp(1, cycles), true)
            }
            None => (cycles, false),
        }
    }

    /// Charges `worker` with an attempt on batch `id` ending (or
    /// crashing) at `now + cycles` and schedules its worker-free
    /// event.
    fn charge_attempt(&mut self, id: usize, worker: usize, now: u64, cycles: u64) -> u64 {
        let end = now
            .checked_add(cycles)
            .expect("completion overflows u64: virtual time out of range");
        let w = &mut self.workers[worker];
        w.free_at = end;
        w.busy += cycles;
        w.current = Some(id);
        w.epoch += 1;
        let epoch = w.epoch;
        self.heap.push(Reverse(Ev {
            cycle: end,
            rank: RANK_WORKER_FREE,
            tiebreak: u64_from(worker),
            kind: EvKind::WorkerFree { worker, epoch },
        }));
        end
    }

    fn dispatch(&mut self, b: ClosedBatch, worker: usize, now: u64) {
        let len = b.members.len();
        let level = self.batch_level(&b.members);
        self.attempts[b.id] += 1;
        self.log(LoggedEvent::Dispatched {
            cycle: now,
            batch: b.id,
            worker,
            len,
        });
        let (cycles, crash) = self.attempt_outcome(b.id, worker, level, len, now);
        let end = self.charge_attempt(b.id, worker, now, cycles);
        self.inflight[b.id] = Some(Inflight {
            members: b.members,
            close_cycle: b.close_cycle,
            level,
            hedged: false,
            copies: vec![Attempt {
                worker,
                start: now,
                end,
                crash,
                hedge: false,
            }],
        });
        if self.cfg.resilience.hedge.is_some() {
            let deadline = self.hedge_deadline((self.model.service)(level, len));
            let at = now
                .checked_add(deadline)
                .expect("hedge deadline overflows u64");
            self.next_generation += 1;
            self.heap.push(Reverse(Ev {
                cycle: at,
                rank: RANK_CLOSE,
                tiebreak: self.next_generation,
                kind: EvKind::HedgeCheck {
                    batch: b.id,
                    epoch: self.attempts[b.id],
                },
            }));
        }
    }

    /// Cycles after dispatch at which an attempt is declared a
    /// straggler: the p99 of observed service durations once enough
    /// completions exist, else `cold_factor_pct` of the expected
    /// service — never earlier than the expected completion itself.
    fn hedge_deadline(&self, expected: u64) -> u64 {
        let h = self.cfg.resilience.hedge.expect("hedging configured");
        let floor = expected.saturating_add(1);
        if self.svc_hist.len() >= h.min_samples {
            let mut sorted = self.svc_hist.clone();
            sorted.sort_unstable();
            percentile(&sorted, 0.99).max(floor)
        } else {
            (expected.saturating_mul(h.cold_factor_pct) / 100).max(floor)
        }
    }

    /// Spawns a crash-replacement worker through the autoscaler
    /// warmup path; its weight re-staging is charged by the respawn
    /// model (memory faults may inflate it).
    fn spawn_replacement(&mut self, now: u64) {
        let worker = self.workers.len();
        let warmup = (self.model.respawn_warmup)(self.respawn_seq);
        self.respawn_seq += 1;
        let ready_at = now
            .checked_add(warmup)
            .expect("respawn warmup overflows u64");
        self.workers.push(Worker {
            free_at: ready_at,
            busy: 0,
            active: true,
            current: None,
            epoch: 0,
        });
        self.heap.push(Reverse(Ev {
            cycle: ready_at,
            rank: RANK_WORKER_FREE,
            tiebreak: u64_from(worker),
            kind: EvKind::WorkerFree { worker, epoch: 0 },
        }));
        self.log(LoggedEvent::ScaledUp {
            cycle: now,
            worker,
            ready_at,
        });
        self.scaling.push(ScalingEvent::Up {
            cycle: now,
            worker,
            ready_at,
        });
    }

    /// A copy of batch `id` crashed on `worker` at `now`: waste the
    /// partial work, retire the worker, spawn a replacement, and — if
    /// no hedged copy survives — requeue with backoff or exhaust the
    /// retry budget.
    fn on_crash(&mut self, id: usize, worker: usize, start: u64, now: u64) {
        let wasted = now - start;
        self.log(LoggedEvent::WorkerCrashed {
            cycle: now,
            batch: id,
            worker,
            wasted,
        });
        self.fault_stats.crashes += 1;
        self.fault_stats.wasted_cycles += wasted;
        let w = &mut self.workers[worker];
        w.active = false;
        w.current = None;
        w.epoch += 1;
        self.spawn_replacement(now);

        let fl = self.inflight[id].as_mut().expect("crashed batch in flight");
        fl.copies.retain(|c| c.worker != worker);
        if !fl.copies.is_empty() {
            return; // a hedged copy is still racing
        }
        let attempt = self.attempts[id];
        if attempt >= self.cfg.resilience.retry.max_attempts {
            self.exhaust(id, now);
            return;
        }
        // Deterministic exponential backoff: base << (attempt - 1),
        // saturating so deep retries stay finite.
        let retry = self.cfg.resilience.retry;
        let shift = (attempt - 1).min(32);
        let backoff = retry
            .backoff_base_cycles
            .saturating_mul(1u64 << shift)
            .min(VIRTUAL_TIME_HORIZON);
        let ready_at = now
            .checked_add(backoff)
            .expect("requeue backoff overflows u64");
        self.log(LoggedEvent::Requeued {
            cycle: now,
            batch: id,
            attempt,
            ready_at,
        });
        self.fault_stats.requeues += 1;
        self.next_generation += 1;
        self.heap.push(Reverse(Ev {
            cycle: ready_at,
            rank: RANK_CLOSE,
            tiebreak: self.next_generation,
            kind: EvKind::Requeue { batch: id },
        }));
    }

    /// The retry budget for batch `id` ran out: refuse every member as
    /// [`Rejection::RetryExhausted`]. The batch never completes, so it
    /// is absent from `sim.batches`.
    fn exhaust(&mut self, id: usize, now: u64) {
        let fl = self.inflight[id].take().expect("exhausted batch in flight");
        self.fault_stats.exhausted_batches += 1;
        for &req in &fl.members {
            self.class_stats[self.requests[req].class].retry_exhausted += 1;
            self.reject(req, now, Rejection::RetryExhausted, Some(id));
        }
    }

    /// A crashed batch's backoff expired: push it back to the *front*
    /// of the queue (retried work is oldest) and dispatch if possible.
    fn on_requeue(&mut self, id: usize, now: u64) {
        let fl = self.inflight[id].take().expect("requeued batch in flight");
        debug_assert!(fl.copies.is_empty(), "requeued batch still has live copies");
        self.queue.push_front(ClosedBatch {
            id,
            members: fl.members,
            close_cycle: fl.close_cycle,
        });
        self.try_dispatch(now);
    }

    /// Straggler probe: if the batch's dispatch attempt from
    /// scheduling time is still the one running, un-hedged, and a
    /// worker is free, race a duplicate against it.
    fn on_hedge_check(&mut self, id: usize, epoch: u32, now: u64) {
        let stale = match self.inflight[id].as_ref() {
            None => true,
            Some(fl) => fl.hedged || fl.copies.len() != 1 || self.attempts[id] != epoch,
        };
        if stale {
            return;
        }
        let Some(worker) = self.free_worker(now) else {
            return; // no spare capacity: never steal from queued work
        };
        let (level, len, primary) = {
            let fl = self.inflight[id].as_ref().expect("probe checked inflight");
            (fl.level, fl.members.len(), fl.copies[0].worker)
        };
        self.log(LoggedEvent::HedgeDispatched {
            cycle: now,
            batch: id,
            worker,
            primary,
        });
        self.fault_stats.hedges += 1;
        let (cycles, crash) = self.attempt_outcome(id, worker, level, len, now);
        let end = self.charge_attempt(id, worker, now, cycles);
        let fl = self.inflight[id].as_mut().expect("probe checked inflight");
        fl.hedged = true;
        fl.copies.push(Attempt {
            worker,
            start: now,
            end,
            crash,
            hedge: true,
        });
    }

    /// A copy of batch `id` completed on `worker`: first completion
    /// wins. Cancel any racing copy (un-charging its unfinished
    /// cycles), then fill the per-request and per-batch stats — the
    /// single counting point, so a requeued-then-served request is
    /// counted exactly once.
    fn on_completion(&mut self, id: usize, worker: usize, start: u64, now: u64) {
        self.log(LoggedEvent::Completed {
            cycle: now,
            batch: id,
            worker,
        });
        let fl = self.inflight[id].take().expect("completed batch in flight");
        let winner = fl
            .copies
            .iter()
            .find(|c| c.worker == worker)
            .expect("winning copy recorded");
        if winner.hedge {
            self.fault_stats.hedge_wins += 1;
        }
        for loser in fl.copies.iter().filter(|c| c.worker != worker) {
            self.log(LoggedEvent::HedgeCancelled {
                cycle: now,
                batch: id,
                worker: loser.worker,
            });
            self.fault_stats.wasted_cycles += now - loser.start;
            let lw = &mut self.workers[loser.worker];
            lw.busy -= loser.end - now; // un-charge the unrun remainder
            lw.free_at = now;
            lw.current = None;
            lw.epoch += 1;
        }
        self.workers[worker].current = None;
        // Feed the hedge detector with the winning duration.
        if self.cfg.resilience.hedge.is_some() {
            let duration = now - start;
            if self.svc_hist.len() < HEDGE_HISTORY {
                self.svc_hist.push(duration);
            } else {
                self.svc_hist[self.svc_hist_pos] = duration;
            }
            self.svc_hist_pos = (self.svc_hist_pos + 1) % HEDGE_HISTORY;
        }
        debug_assert!(self.batch_stats[id].is_none(), "batch completed twice");
        self.batch_stats[id] = Some(BatchStat {
            worker,
            len: fl.members.len(),
            close_cycle: fl.close_cycle,
            start_cycle: start,
            end_cycle: now,
        });
        for (slot, &req) in fl.members.iter().enumerate() {
            let r = self.requests[req];
            debug_assert!(self.request_stats[req].is_none(), "request served twice");
            self.request_stats[req] = Some(RequestStat {
                arrival: r.arrival,
                dispatch: start,
                completion: now,
                worker,
                batch: id,
                slot,
            });
            let c = &mut self.class_stats[r.class];
            c.served += 1;
            if r.slo_cycles.is_none_or(|slo| now - r.arrival <= slo) {
                c.slo_met += 1;
            }
            if fl.level > 0 {
                c.degraded += 1;
            }
        }
    }

    fn on_worker_free(&mut self, worker: usize, epoch: u64, now: u64) {
        let w = &self.workers[worker];
        if !w.active || w.epoch != epoch {
            return; // orphaned by a crash or hedge cancellation
        }
        debug_assert!(w.free_at == now, "stale worker-free event");
        if let Some(id) = w.current {
            let copy = self.inflight[id]
                .as_ref()
                .and_then(|fl| fl.copies.iter().find(|c| c.worker == worker))
                .expect("freed worker's copy in flight");
            let (start, crash) = (copy.start, copy.crash);
            debug_assert_eq!(copy.end, now, "copy ends at its scheduled cycle");
            if crash {
                self.on_crash(id, worker, start, now);
            } else {
                self.on_completion(id, worker, start, now);
            }
        }
        self.try_dispatch(now);
    }

    /// Graceful-degradation controller: one watermark step per
    /// evaluation, every transition logged.
    fn on_degrade_eval(&mut self, now: u64, arrivals_pending: bool) {
        let d = self
            .cfg
            .resilience
            .degrade
            .expect("degrade event without config");
        let occ = self.occupancy();
        let old = self.degrade_level;
        if occ >= d.high_occupancy && self.degrade_level < d.max_level {
            self.degrade_level += 1;
        } else if occ <= d.low_occupancy && self.degrade_level > 0 {
            self.degrade_level -= 1;
        }
        if self.degrade_level != old {
            self.fault_stats.degrade_shifts += 1;
            self.log(LoggedEvent::Degraded {
                cycle: now,
                level: self.degrade_level,
            });
        }
        // Keep evaluating while work remains or quality is still shed,
        // so the system always recovers to full quality.
        let work_remains = arrivals_pending
            || self.occupancy() > 0
            || self.degrade_level > 0
            || self
                .workers
                .iter()
                .any(|w| w.active && (w.current.is_some() || w.free_at > now));
        if work_remains {
            let cycle = now
                .checked_add(d.eval_period_cycles)
                .expect("degrade period overflows u64");
            self.heap.push(Reverse(Ev {
                cycle,
                rank: RANK_SCALE,
                tiebreak: 1,
                kind: EvKind::DegradeEval,
            }));
        }
    }

    fn on_scale_eval(&mut self, now: u64, arrivals_pending: bool) {
        let a = self.cfg.autoscaler.expect("scale event without autoscaler");
        let active = self.active_workers();
        let queued = self.occupancy();
        if queued > a.scale_up_queue_per_worker.saturating_mul(active) && active < a.max_workers {
            let worker = self.workers.len();
            let ready_at = now
                .checked_add(self.warmup)
                .expect("warmup overflows u64: virtual time out of range");
            self.workers.push(Worker {
                free_at: ready_at,
                busy: 0,
                active: true,
                current: None,
                epoch: 0,
            });
            self.heap.push(Reverse(Ev {
                cycle: ready_at,
                rank: RANK_WORKER_FREE,
                tiebreak: u64_from(worker),
                kind: EvKind::WorkerFree { worker, epoch: 0 },
            }));
            self.log(LoggedEvent::ScaledUp {
                cycle: now,
                worker,
                ready_at,
            });
            self.scaling.push(ScalingEvent::Up {
                cycle: now,
                worker,
                ready_at,
            });
        } else if active > a.min_workers {
            // Retire the highest-id sufficiently idle worker.
            let candidate = self
                .workers
                .iter()
                .enumerate()
                .rev()
                .find(|(_, w)| {
                    w.active
                        && w.current.is_none()
                        && w.free_at <= now
                        && now - w.free_at >= a.scale_down_idle_cycles
                })
                .map(|(id, _)| id);
            if let Some(worker) = candidate {
                self.workers[worker].active = false;
                self.log(LoggedEvent::ScaledDown { cycle: now, worker });
                self.scaling.push(ScalingEvent::Down { cycle: now, worker });
            }
        }
        // Keep evaluating while anything is in flight — or while the
        // pool is still above its floor, so a drained system scales
        // back down to `min_workers` instead of freezing mid-size.
        let work_remains = arrivals_pending
            || self.occupancy() > 0
            || self.active_workers() > a.min_workers
            || self
                .workers
                .iter()
                .any(|w| w.active && (w.current.is_some() || w.free_at > now));
        if work_remains {
            let cycle = now
                .checked_add(a.eval_period_cycles)
                .expect("scale period overflows u64");
            self.heap.push(Reverse(Ev {
                cycle,
                rank: RANK_SCALE,
                tiebreak: 0,
                kind: EvKind::ScaleEval,
            }));
        }
    }
}

/// Runs the online runtime over a sorted request trace with `service(n)`
/// cycles per batch of `n`, charging `warmup_cycles` to every
/// autoscaled spin-up (initial workers are weight-resident and pay
/// nothing).
///
/// Deterministic: reruns are byte-identical, including the event log
/// and its digest.
///
/// # Panics
///
/// Panics if the configuration fails [`RuntimeConfig::validate`], the
/// trace is unsorted or exceeds [`VIRTUAL_TIME_HORIZON`], the warmup
/// exceeds the horizon, or `service` returns zero cycles for a
/// non-empty batch.
pub fn run_runtime(
    cfg: &RuntimeConfig,
    requests: &[Request],
    service: &dyn Fn(usize) -> u64,
    warmup_cycles: u64,
) -> RuntimeOutcome {
    run_runtime_with_sink(cfg, requests, service, warmup_cycles, &mut NullSink)
}

/// [`run_runtime`] with a streaming [`EventSink`] observing every
/// logged event as it happens.
///
/// The sink is purely an observer: for any sink, the returned
/// [`RuntimeOutcome`] — including [`RuntimeOutcome::event_digest`] —
/// is byte-identical to a [`run_runtime`] call with the same inputs
/// (pinned by `tests/telemetry_equivalence.rs`).
///
/// # Panics
///
/// Panics under the same conditions as [`run_runtime`].
pub fn run_runtime_with_sink(
    cfg: &RuntimeConfig,
    requests: &[Request],
    service: &dyn Fn(usize) -> u64,
    warmup_cycles: u64,
    sink: &mut dyn EventSink,
) -> RuntimeOutcome {
    let model = ServiceModel {
        service: &|_, n| service(n),
        respawn_warmup: &|_| warmup_cycles,
    };
    run_runtime_resilient(cfg, requests, &model, warmup_cycles, sink)
}

/// The fault-tolerant generalization: a level-aware [`ServiceModel`]
/// replaces the flat service table, and
/// [`RuntimeConfig::resilience`] arms fault injection and recovery.
/// With [`ResilienceConfig::none`] and a level-ignoring model this is
/// byte-identical to [`run_runtime`] — same events, same digest, same
/// outcome.
///
/// # Panics
///
/// Panics under [`run_runtime`]'s conditions, or if the model returns
/// zero service cycles for any configured degradation level.
pub fn run_runtime_resilient(
    cfg: &RuntimeConfig,
    requests: &[Request],
    model: &ServiceModel,
    warmup_cycles: u64,
    sink: &mut dyn EventSink,
) -> RuntimeOutcome {
    cfg.validate().expect("invalid runtime configuration");
    assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "request trace must be sorted by arrival"
    );
    assert!(
        requests.iter().all(|r| r.arrival <= VIRTUAL_TIME_HORIZON
            && r.slo_cycles.is_none_or(|s| s <= VIRTUAL_TIME_HORIZON)),
        "request coordinates must fit under the virtual-time horizon"
    );
    assert!(
        warmup_cycles <= VIRTUAL_TIME_HORIZON,
        "warmup exceeds the virtual-time horizon"
    );
    let max_level = cfg.resilience.degrade.map_or(0, |d| d.max_level);
    for level in 0..=max_level {
        for n in 1..=cfg.batcher.max_batch {
            assert!(
                (model.service)(level, n) > 0,
                "service cycles must be positive at every degradation level"
            );
        }
    }
    let classes = requests.iter().map(|r| r.class).max().map_or(1, |c| c + 1);

    let mut rt = Runtime {
        cfg,
        requests,
        model,
        warmup: warmup_cycles,
        heap: BinaryHeap::new(),
        workers: (0..cfg.workers)
            .map(|_| Worker {
                free_at: 0,
                busy: 0,
                active: true,
                current: None,
                epoch: 0,
            })
            .collect(),
        forming: None,
        queue: VecDeque::new(),
        next_batch_id: 0,
        next_generation: 0,
        inflight: Vec::new(),
        attempts: Vec::new(),
        attempt_seq: 0,
        respawn_seq: 0,
        svc_hist: Vec::new(),
        svc_hist_pos: 0,
        degrade_level: 0,
        fault_stats: FaultStats::default(),
        request_stats: vec![None; requests.len()],
        batch_stats: Vec::new(),
        rejections: Vec::new(),
        close_causes: Vec::new(),
        scaling: Vec::new(),
        class_stats: vec![ClassStats::default(); classes],
        digest: FNV_OFFSET,
        sink,
        events: Vec::new(),
    };
    if let Some(a) = &cfg.autoscaler {
        rt.heap.push(Reverse(Ev {
            cycle: a.eval_period_cycles,
            rank: RANK_SCALE,
            tiebreak: 0,
            kind: EvKind::ScaleEval,
        }));
    }
    if let Some(d) = &cfg.resilience.degrade {
        rt.heap.push(Reverse(Ev {
            cycle: d.eval_period_cycles,
            rank: RANK_SCALE,
            tiebreak: 1,
            kind: EvKind::DegradeEval,
        }));
    }

    // The main loop merges the heap against the sorted arrival cursor;
    // arrivals (rank 1) never enter the heap.
    let mut cursor = 0usize;
    loop {
        let heap_key = rt.heap.peek().map(|Reverse(e)| (e.cycle, e.rank));
        let arrival_key =
            (cursor < requests.len()).then(|| (requests[cursor].arrival, RANK_ARRIVAL));
        let take_heap = match (heap_key, arrival_key) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(h), Some(a)) => h <= a,
        };
        if take_heap {
            let Reverse(ev) = rt.heap.pop().expect("peeked event");
            match ev.kind {
                EvKind::WorkerFree { worker, epoch } => rt.on_worker_free(worker, epoch, ev.cycle),
                EvKind::Close { generation } => rt.on_close_event(generation, ev.cycle),
                EvKind::Requeue { batch } => rt.on_requeue(batch, ev.cycle),
                EvKind::HedgeCheck { batch, epoch } => rt.on_hedge_check(batch, epoch, ev.cycle),
                EvKind::ScaleEval => {
                    let arrivals_pending = cursor < requests.len();
                    rt.on_scale_eval(ev.cycle, arrivals_pending);
                }
                EvKind::DegradeEval => {
                    let arrivals_pending = cursor < requests.len();
                    rt.on_degrade_eval(ev.cycle, arrivals_pending);
                }
            }
        } else {
            let now = requests[cursor].arrival;
            rt.on_arrival(cursor, now);
            cursor += 1;
        }
    }

    debug_assert!(rt.forming.is_none(), "forming batch left open at drain");
    debug_assert!(rt.queue.is_empty(), "closed batches left undispatched");
    debug_assert!(
        rt.inflight.iter().all(Option::is_none),
        "batches left in flight at drain"
    );

    // Conservation: every request was served exactly once XOR rejected
    // exactly once (rejection includes retry exhaustion).
    let mut rejected = vec![false; requests.len()];
    for r in &rt.rejections {
        assert!(!rejected[r.request], "request rejected twice");
        rejected[r.request] = true;
    }
    let mut served = Vec::new();
    let mut request_stats = Vec::new();
    for (i, stat) in rt.request_stats.iter().enumerate() {
        match stat {
            Some(s) => {
                assert!(!rejected[i], "request both served and rejected");
                served.push(i);
                request_stats.push(*s);
            }
            None => assert!(rejected[i], "request lost: neither served nor rejected"),
        }
    }
    debug_assert!(
        rt.class_stats
            .iter()
            .all(|c| c.offered == c.served + c.shed + c.infeasible + c.retry_exhausted),
        "per-class ledger does not sum"
    );

    // Retry-exhausted batches never completed: compact them out of the
    // batch list (identity when every batch completed) and remap the
    // per-request batch indices.
    let mut batches = Vec::with_capacity(rt.batch_stats.len());
    let mut close_causes = Vec::with_capacity(rt.close_causes.len());
    let mut batch_map = vec![usize::MAX; rt.batch_stats.len()];
    for (id, stat) in rt.batch_stats.iter().enumerate() {
        if let Some(s) = stat {
            batch_map[id] = batches.len();
            batches.push(*s);
            close_causes.push(rt.close_causes[id]);
        }
    }
    for s in &mut request_stats {
        s.batch = batch_map[s.batch];
        debug_assert!(s.batch != usize::MAX, "served request's batch completed");
    }

    let makespan_cycles = batches.iter().map(|b| b.end_cycle).max().unwrap_or(0);
    let worker_busy_cycles = rt.workers.iter().map(|w| w.busy).collect();
    RuntimeOutcome {
        sim: SimOutcome {
            requests: request_stats,
            batches,
            worker_busy_cycles,
            makespan_cycles,
        },
        served,
        rejections: rt.rejections,
        close_causes,
        scaling: rt.scaling,
        class_stats: rt.class_stats,
        warmup_cycles,
        total_requests: requests.len(),
        event_digest: rt.digest,
        events: rt.events,
        faults: rt.fault_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::form_batches;
    use crate::sim::dispatch_batches;

    fn flat_service(n: usize) -> u64 {
        100 + 10 * n as u64
    }

    fn anchor_cfg(workers: usize, max_batch: usize, max_wait: u64) -> RuntimeConfig {
        RuntimeConfig {
            workers,
            batcher: BatcherConfig {
                max_batch,
                max_wait_cycles: max_wait,
            },
            queue_capacity: None,
            deadline_aware: false,
            autoscaler: None,
            record_events: false,
            resilience: ResilienceConfig::none(),
        }
    }

    #[test]
    fn runtime_config_validation_is_typed() {
        let ok = RuntimeConfig {
            workers: 2,
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait_cycles: 100,
            },
            queue_capacity: Some(8),
            deadline_aware: true,
            autoscaler: Some(AutoscalerConfig {
                min_workers: 1,
                max_workers: 4,
                scale_up_queue_per_worker: 4,
                scale_down_idle_cycles: 1_000,
                eval_period_cycles: 500,
            }),
            record_events: false,
            resilience: ResilienceConfig::none(),
        };
        assert_eq!(ok.validate(), Ok(()));
        assert_eq!(
            RuntimeConfig {
                workers: 0,
                ..ok.clone()
            }
            .validate(),
            Err(ConfigError::ZeroWorkers)
        );
        assert_eq!(
            RuntimeConfig {
                queue_capacity: Some(0),
                ..ok.clone()
            }
            .validate(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        let mut bad = ok.clone();
        bad.batcher.max_wait_cycles = u64::MAX;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::UnrepresentableWait { .. })
        ));
        let mut bad = ok.clone();
        bad.autoscaler.as_mut().unwrap().max_workers = 1;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidAutoscaler(_))
        ));
        let mut bad = ok.clone();
        bad.autoscaler.as_mut().unwrap().eval_period_cycles = 0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidAutoscaler(_))
        ));
        let mut bad = ok;
        bad.workers = 8; // above max_workers
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidAutoscaler(_))
        ));
    }

    #[test]
    fn anchor_matches_offline_pipeline_on_a_zero_wait_burst() {
        // Zero wait + same-cycle arrivals is the trickiest equivalence
        // corner: the close event fires on the opening cycle but must
        // still let the rest of the burst join first.
        let arrivals = [3u64, 3, 3, 4, 9];
        let requests: Vec<Request> = arrivals.iter().map(|&a| Request::best_effort(a)).collect();
        let cfg = anchor_cfg(2, 8, 0);
        let out = run_runtime(&cfg, &requests, &flat_service, 0);
        let batches = form_batches(&arrivals, &cfg.batcher);
        let offline = dispatch_batches(&arrivals, &batches, 2, &flat_service);
        assert_eq!(out.sim, offline);
        assert_eq!(out.served, vec![0, 1, 2, 3, 4]);
        assert!(out.rejections.is_empty());
        assert_eq!(
            out.close_causes,
            vec![
                CloseCause::Deadline,
                CloseCause::Deadline,
                CloseCause::Deadline
            ]
        );
    }

    #[test]
    fn full_queue_sheds_the_newcomer() {
        // Queue bound 2 over *waiting* work: a burst of 4 same-cycle
        // requests fills the forming batch with two and refuses the
        // rest as QueueFull (all best-effort, so the newcomer never
        // outranks a member).
        let requests = vec![Request::best_effort(5); 4];
        let cfg = RuntimeConfig {
            queue_capacity: Some(2),
            ..anchor_cfg(1, 8, 1_000)
        };
        let out = run_runtime(&cfg, &requests, &flat_service, 0);
        assert_eq!(out.served, vec![0, 1]);
        assert_eq!(out.rejections.len(), 2);
        for (r, want_req) in out.rejections.iter().zip([2usize, 3]) {
            assert_eq!(
                (r.request, r.cycle, r.rejection),
                (want_req, 5, Rejection::QueueFull)
            );
        }
        assert_eq!(out.shed_count(), 2);
        assert!((out.shed_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn priority_eviction_sheds_the_lowest_class_member() {
        // Queue bound 1: a class-1 newcomer evicts the class-0 member
        // of the forming batch and takes its place.
        let requests = vec![
            Request {
                arrival: 10,
                class: 0,
                slo_cycles: None,
            },
            Request {
                arrival: 11,
                class: 1,
                slo_cycles: None,
            },
        ];
        let cfg = RuntimeConfig {
            queue_capacity: Some(1),
            ..anchor_cfg(1, 4, 1_000)
        };
        let out = run_runtime(&cfg, &requests, &flat_service, 0);
        assert_eq!(out.served, vec![1]);
        assert_eq!(out.rejections.len(), 1);
        let r = out.rejections[0];
        assert_eq!(
            (r.request, r.cycle, r.rejection, r.batch),
            (0, 11, Rejection::ShedLowPriority, Some(0))
        );
        assert_eq!(out.class_stats[0].shed, 1);
        assert_eq!(out.class_stats[1].served, 1);
    }

    #[test]
    fn slo_risk_closes_a_forming_batch_early() {
        // max_wait is huge, but the first member's SLO only leaves room
        // for service at the worst-case batch size: the batch closes at
        // the SLO bound, not the deadline.
        let requests = vec![Request {
            arrival: 0,
            class: 0,
            slo_cycles: Some(500),
        }];
        let cfg = RuntimeConfig {
            deadline_aware: true,
            ..anchor_cfg(1, 4, 100_000)
        };
        let out = run_runtime(&cfg, &requests, &flat_service, 0);
        // latest close = 0 + 500 - service(4) = 500 - 140 = 360.
        assert_eq!(out.close_causes, vec![CloseCause::SloRisk]);
        assert_eq!(out.sim.batches[0].close_cycle, 360);
        assert_eq!(out.sim.requests[0].completion, 360 + flat_service(1));
        assert_eq!(out.slo_attainment(0), 1.0);
    }

    #[test]
    fn infeasible_slo_is_rejected_on_arrival() {
        let requests = vec![Request {
            arrival: 7,
            class: 0,
            slo_cycles: Some(50), // < service(1) = 110
        }];
        let cfg = RuntimeConfig {
            deadline_aware: true,
            ..anchor_cfg(1, 4, 1_000)
        };
        let out = run_runtime(&cfg, &requests, &flat_service, 0);
        assert!(out.served.is_empty());
        assert_eq!(out.rejections[0].rejection, Rejection::DeadlineInfeasible);
        assert_eq!(out.class_stats[0].infeasible, 1);
        // Infeasible refusals are not "shed" — the queue had room.
        assert_eq!(out.shed_count(), 0);
    }

    #[test]
    fn autoscaler_spins_up_with_warmup_and_back_down() {
        // A same-cycle burst of solo batches on one worker: the first
        // evaluation sees a deep queue and spawns a worker that is only
        // dispatchable after its warmup; once drained, the idle spawn
        // is retired.
        let requests: Vec<Request> = (0..8).map(|_| Request::best_effort(0)).collect();
        let cfg = RuntimeConfig {
            autoscaler: Some(AutoscalerConfig {
                min_workers: 1,
                max_workers: 2,
                scale_up_queue_per_worker: 2,
                scale_down_idle_cycles: 50,
                eval_period_cycles: 10,
            }),
            record_events: true,
            ..anchor_cfg(1, 1, 0)
        };
        let warmup = 25u64;
        let out = run_runtime(&cfg, &requests, &flat_service, warmup);
        assert_eq!(out.served.len(), 8);
        let up = out
            .scaling
            .iter()
            .find_map(|s| match *s {
                ScalingEvent::Up {
                    cycle,
                    worker,
                    ready_at,
                } => Some((cycle, worker, ready_at)),
                _ => None,
            })
            .expect("autoscaler must spin up under an 8-deep queue");
        assert_eq!(up.1, 1, "second worker gets the next id");
        assert_eq!(up.2, up.0 + warmup, "warmup charged in full");
        // The spawned worker must not serve anything before ready_at.
        for b in out.sim.batches.iter().filter(|b| b.worker == 1) {
            assert!(b.start_cycle >= up.2);
        }
        assert!(
            out.scaling
                .iter()
                .any(|s| matches!(s, ScalingEvent::Down { .. })),
            "an idle worker must be retired after the drain"
        );
        assert_eq!(out.sim.worker_busy_cycles.len(), 2);
    }

    #[test]
    fn reruns_are_byte_identical_including_the_event_log() {
        let requests: Vec<Request> = (0..40)
            .map(|i| Request {
                arrival: (i as u64) * 37 % 1_000,
                class: i % 3,
                slo_cycles: if i % 2 == 0 { Some(5_000) } else { None },
            })
            .collect();
        let mut requests = requests;
        requests.sort_by_key(|r| r.arrival);
        let cfg = RuntimeConfig {
            queue_capacity: Some(6),
            deadline_aware: true,
            autoscaler: Some(AutoscalerConfig {
                min_workers: 1,
                max_workers: 3,
                scale_up_queue_per_worker: 2,
                scale_down_idle_cycles: 100,
                eval_period_cycles: 50,
            }),
            record_events: true,
            ..anchor_cfg(1, 3, 200)
        };
        let a = run_runtime(&cfg, &requests, &flat_service, 10);
        let b = run_runtime(&cfg, &requests, &flat_service, 10);
        assert_eq!(a, b);
        assert_eq!(a.event_digest, b.event_digest);
        assert!(!a.events.is_empty());
        // The digest is computed even when the log is not retained.
        let lean = RuntimeConfig {
            record_events: false,
            ..cfg
        };
        let c = run_runtime(&lean, &requests, &flat_service, 10);
        assert_eq!(c.event_digest, a.event_digest);
        assert!(c.events.is_empty());
    }

    #[test]
    fn empty_trace_yields_an_empty_outcome() {
        let out = run_runtime(&anchor_cfg(2, 4, 100), &[], &flat_service, 0);
        assert!(out.served.is_empty());
        assert!(out.rejections.is_empty());
        assert_eq!(out.sim.makespan_cycles, 0);
        assert_eq!(out.shed_rate(), 0.0);
        assert_eq!(out.goodput_per_cycle(), 0.0);
    }
}
