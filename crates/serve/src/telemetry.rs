//! The serving-side telemetry sink: turns the runtime's streamed
//! [`LoggedEvent`]s into a request/worker timeline and windowed
//! metrics on a [`capsacc_telemetry::Recorder`].
//!
//! [`RuntimeTelemetry`] is an [`EventSink`] handed to
//! [`crate::run_runtime_with_sink`]. It is a pure observer — the
//! runtime's outcome and event digest are byte-identical with or
//! without it (pinned by `tests/telemetry_equivalence.rs`) — that
//! builds, entirely from the event stream plus the request trace it
//! was constructed with:
//!
//! - **request lifecycle spans** on [`TRACK_REQUEST_BASE`] fan tracks:
//!   one `"request"` span per served request (arrival → completion)
//!   with nested `"queued"` (admitted → dispatched) and `"service"`
//!   (dispatched → completed) phases;
//! - **batch service spans** on per-worker tracks
//!   ([`TRACK_WORKER_BASE`]` + worker`);
//! - **windowed gauges** sampled once per [`RuntimeTelemetry::new`]
//!   window: queue depth, shed rate, per-class SLO attainment, and —
//!   computed at [`RuntimeTelemetry::finish`] from the recorded busy
//!   intervals — per-worker utilization;
//! - **counters and histograms**: arrivals, admissions, rejections by
//!   cause, batch closes by cause, queue-wait / service / end-to-end
//!   latency distributions, batch sizes.

use capsacc_telemetry::{Recorder, TelemetryConfig};
use capsacc_tensor::u64_from;

use crate::runtime::{CloseCause, EventSink, LoggedEvent, Rejection};
use crate::trace::Request;

/// Track (Chrome-trace `tid`) of worker 0's batch timeline; worker `w`
/// renders on `TRACK_WORKER_BASE + w`.
pub const TRACK_WORKER_BASE: u32 = 100;

/// First request fan track; request `r` renders on
/// `TRACK_REQUEST_BASE + (r % REQUEST_FAN)`.
pub const TRACK_REQUEST_BASE: u32 = 1000;

/// Number of fan tracks request lifecycle spans are spread over —
/// enough that concurrent requests rarely share a row, without a
/// million-track trace on big runs.
pub const REQUEST_FAN: u32 = 16;

const NOT_ADMITTED: u64 = u64::MAX;
const NO_BATCH: usize = usize::MAX;

#[derive(Clone, Default)]
struct ClassWindow {
    offered: usize,
    shed: usize,
    served: usize,
    slo_met: usize,
}

struct BatchState {
    members: Vec<usize>,
    dispatch: u64,
    worker: usize,
    len: usize,
    /// A racing hedged duplicate, when one was dispatched.
    hedge_worker: Option<usize>,
    hedge_start: u64,
}

/// An [`EventSink`] that records the serving timeline and windowed
/// metrics. Construct with the request trace the runtime will see,
/// stream a run through it, then call
/// [`RuntimeTelemetry::finish`] for the populated [`Recorder`].
pub struct RuntimeTelemetry {
    rec: Recorder,
    window_cycles: u64,
    /// SLO budget per request, copied from the trace (events don't
    /// carry it).
    slos: Vec<Option<u64>>,
    arrival: Vec<u64>,
    class: Vec<usize>,
    admitted_at: Vec<u64>,
    batch_of: Vec<usize>,
    batches: Vec<BatchState>,
    /// Admitted-but-undispatched requests right now — the runtime's
    /// queue-bound population, reconstructed from the stream.
    occupancy: usize,
    /// Per-worker `[start, end)` busy intervals, for utilization.
    busy: Vec<Vec<(u64, u64)>>,
    window: u64,
    win_total: ClassWindow,
    win_class: Vec<ClassWindow>,
    last_cycle: u64,
}

impl RuntimeTelemetry {
    /// A sink over `requests` (the same slice the runtime will run),
    /// emitting one gauge sample per `window_cycles` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn new(requests: &[Request], window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window_cycles must be positive");
        let classes = requests.iter().map(|r| r.class).max().map_or(1, |c| c + 1);
        Self {
            rec: Recorder::new(TelemetryConfig::default()),
            window_cycles,
            slos: requests.iter().map(|r| r.slo_cycles).collect(),
            arrival: vec![0; requests.len()],
            class: vec![0; requests.len()],
            admitted_at: vec![NOT_ADMITTED; requests.len()],
            batch_of: vec![NO_BATCH; requests.len()],
            batches: Vec::new(),
            occupancy: 0,
            busy: Vec::new(),
            window: 0,
            win_total: ClassWindow::default(),
            win_class: vec![ClassWindow::default(); classes],
            last_cycle: 0,
        }
    }

    /// Emits every complete window up to `cycle`, then window stats
    /// for anything still in flight stay accumulated.
    fn flush_windows(&mut self, cycle: u64) {
        while (self.window + 1).saturating_mul(self.window_cycles) <= cycle {
            let end = (self.window + 1) * self.window_cycles;
            self.emit_window(end);
            self.window += 1;
        }
    }

    fn emit_window(&mut self, end: u64) {
        let depth = self.occupancy as f64;
        let shed_rate = if self.win_total.offered == 0 {
            0.0
        } else {
            self.win_total.shed as f64 / self.win_total.offered as f64
        };
        self.rec.gauge_sample("serve.queue_depth", end, depth);
        self.rec.gauge_sample("serve.shed_rate", end, shed_rate);
        for c in 0..self.win_class.len() {
            let cw = &self.win_class[c];
            // An idle window attains trivially — same convention as
            // RuntimeOutcome::slo_attainment.
            let att = if cw.served == 0 {
                1.0
            } else {
                cw.slo_met as f64 / cw.served as f64
            };
            let name = format!("serve.slo_attainment.class{c}");
            self.rec.gauge_sample(&name, end, att);
            self.win_class[c] = ClassWindow::default();
        }
        self.win_total = ClassWindow::default();
    }

    fn ensure_request(&mut self, req: usize) {
        if req >= self.arrival.len() {
            // Only reachable if the sink was built over a shorter
            // trace than the runtime ran; degrade gracefully.
            self.arrival.resize(req + 1, 0);
            self.class.resize(req + 1, 0);
            self.admitted_at.resize(req + 1, NOT_ADMITTED);
            self.batch_of.resize(req + 1, NO_BATCH);
            self.slos.resize(req + 1, None);
        }
    }

    /// Closes out the run: emits the final (partial) window, the
    /// per-worker per-window utilization series, and track names, and
    /// returns the populated recorder.
    pub fn finish(mut self) -> Recorder {
        self.flush_windows(self.last_cycle);
        // The last partial window still gets its sample (at the cycle
        // the stream ended) so short runs aren't invisible.
        if self.last_cycle > self.window * self.window_cycles || self.window == 0 {
            let end = self.last_cycle.max(1);
            self.emit_window(end);
        }
        // Per-worker utilization per window, from the busy intervals.
        let windows = self.last_cycle.div_ceil(self.window_cycles).max(1);
        for (w, intervals) in self.busy.iter().enumerate() {
            let name = format!("serve.worker_util.w{w}");
            for win in 0..windows {
                let (ws, we) = (win * self.window_cycles, (win + 1) * self.window_cycles);
                let busy: u64 = intervals
                    .iter()
                    .map(|&(s, e)| e.min(we).saturating_sub(s.max(ws)))
                    .sum();
                let util = busy as f64 / self.window_cycles as f64;
                self.rec.gauge_sample(&name, we, util);
            }
            self.rec
                .set_track_name(TRACK_WORKER_BASE + w as u32, &format!("worker {w}"));
        }
        for k in 0..REQUEST_FAN {
            let track = TRACK_REQUEST_BASE + k;
            if self.rec.spans().iter().any(|s| s.track == track) {
                self.rec
                    .set_track_name(track, &format!("requests (mod {REQUEST_FAN} = {k})"));
            }
        }
        self.rec
    }

    /// Read access to the recorder mid-stream (tests).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }
}

fn request_track(req: usize) -> u32 {
    TRACK_REQUEST_BASE + (req as u32 % REQUEST_FAN)
}

impl EventSink for RuntimeTelemetry {
    fn event(&mut self, e: &LoggedEvent) {
        let cycle = match *e {
            LoggedEvent::Arrival { cycle, .. }
            | LoggedEvent::Admitted { cycle, .. }
            | LoggedEvent::Rejected { cycle, .. }
            | LoggedEvent::BatchClosed { cycle, .. }
            | LoggedEvent::Dispatched { cycle, .. }
            | LoggedEvent::Completed { cycle, .. }
            | LoggedEvent::ScaledUp { cycle, .. }
            | LoggedEvent::ScaledDown { cycle, .. }
            | LoggedEvent::WorkerCrashed { cycle, .. }
            | LoggedEvent::Requeued { cycle, .. }
            | LoggedEvent::WorkerStalled { cycle, .. }
            | LoggedEvent::Straggling { cycle, .. }
            | LoggedEvent::HedgeDispatched { cycle, .. }
            | LoggedEvent::HedgeCancelled { cycle, .. }
            | LoggedEvent::Degraded { cycle, .. } => cycle,
        };
        self.flush_windows(cycle);
        self.last_cycle = self.last_cycle.max(cycle);
        match *e {
            LoggedEvent::Arrival {
                cycle,
                request,
                class,
            } => {
                self.ensure_request(request);
                self.arrival[request] = cycle;
                self.class[request] = class;
                self.rec.counter_add("serve.arrivals", 1);
                self.win_total.offered += 1;
                let c = class.min(self.win_class.len() - 1);
                self.win_class[c].offered += 1;
            }
            LoggedEvent::Admitted {
                cycle,
                request,
                batch,
            } => {
                self.ensure_request(request);
                self.admitted_at[request] = cycle;
                self.batch_of[request] = batch;
                while self.batches.len() <= batch {
                    self.batches.push(BatchState {
                        members: Vec::new(),
                        dispatch: 0,
                        worker: 0,
                        len: 0,
                        hedge_worker: None,
                        hedge_start: 0,
                    });
                }
                self.batches[batch].members.push(request);
                self.occupancy += 1;
                self.rec.counter_add("serve.admitted", 1);
            }
            LoggedEvent::Rejected {
                request, rejection, ..
            } => {
                self.ensure_request(request);
                let name = match rejection {
                    Rejection::QueueFull => "serve.rejected.queue_full",
                    Rejection::DeadlineInfeasible => "serve.rejected.infeasible",
                    Rejection::ShedLowPriority => "serve.rejected.shed_priority",
                    Rejection::RetryExhausted => "serve.rejected.retry_exhausted",
                };
                self.rec.counter_add(name, 1);
                if rejection != Rejection::DeadlineInfeasible {
                    self.win_total.shed += 1;
                    let c = self.class[request].min(self.win_class.len() - 1);
                    self.win_class[c].shed += 1;
                }
                // A ShedLowPriority rejection evicts an *admitted*
                // forming-batch member: undo its admission. RetryExhausted
                // members were already dispatched (their occupancy was
                // released at Dispatched), so admission stands as-is.
                if rejection != Rejection::RetryExhausted
                    && self.admitted_at[request] != NOT_ADMITTED
                {
                    let b = self.batch_of[request];
                    if let Some(batch) = self.batches.get_mut(b) {
                        batch.members.retain(|&m| m != request);
                    }
                    self.admitted_at[request] = NOT_ADMITTED;
                    self.batch_of[request] = NO_BATCH;
                    self.occupancy -= 1;
                }
            }
            LoggedEvent::BatchClosed { len, cause, .. } => {
                let name = match cause {
                    CloseCause::Size => "serve.batch_closed.size",
                    CloseCause::Deadline => "serve.batch_closed.deadline",
                    CloseCause::SloRisk => "serve.batch_closed.slo_risk",
                };
                self.rec.counter_add(name, 1);
                self.rec.hist_record("serve.batch_size", u64_from(len));
            }
            LoggedEvent::Dispatched {
                cycle,
                batch,
                worker,
                len,
            } => {
                self.rec.counter_add("serve.dispatches", 1);
                if let Some(b) = self.batches.get_mut(batch) {
                    b.dispatch = cycle;
                    b.worker = worker;
                    b.len = len;
                    b.hedge_worker = None;
                    b.hedge_start = 0;
                }
                if worker >= self.busy.len() {
                    self.busy.resize_with(worker + 1, Vec::new);
                }
                let members = self
                    .batches
                    .get(batch)
                    .map(|b| b.members.clone())
                    .unwrap_or_default();
                self.occupancy -= members.len();
                for req in members {
                    let wait = cycle - self.admitted_at[req];
                    self.rec.hist_record("serve.queue_wait_cycles", wait);
                }
            }
            LoggedEvent::Completed {
                cycle,
                batch,
                worker,
                ..
            } => {
                self.rec.counter_add("serve.completions", 1);
                let Some(b) = self.batches.get(batch) else {
                    return;
                };
                // A hedged duplicate may win the race: attribute the
                // service span to the worker that actually finished.
                let start = if Some(worker) == b.hedge_worker {
                    b.hedge_start
                } else {
                    b.dispatch
                };
                let len = b.len;
                let members = b.members.clone();
                self.rec.record_span(
                    TRACK_WORKER_BASE + worker as u32,
                    "batch",
                    start,
                    cycle,
                    vec![("batch", u64_from(batch)), ("len", u64_from(len))],
                );
                self.busy[worker].push((start, cycle));
                self.rec.hist_record("serve.service_cycles", cycle - start);
                for req in members {
                    let (arrival, admitted) = (self.arrival[req], self.admitted_at[req]);
                    let latency = cycle - arrival;
                    let class = self.class[req];
                    let track = request_track(req);
                    self.rec.record_span(
                        track,
                        "request",
                        arrival,
                        cycle,
                        vec![
                            ("req", u64_from(req)),
                            ("class", u64_from(class)),
                            ("batch", u64_from(batch)),
                        ],
                    );
                    self.rec.record_span(
                        track,
                        "queued",
                        admitted,
                        start,
                        vec![("req", u64_from(req))],
                    );
                    self.rec.record_span(
                        track,
                        "service",
                        start,
                        cycle,
                        vec![("req", u64_from(req))],
                    );
                    self.rec.hist_record("serve.latency_cycles", latency);
                    let met = self
                        .slos
                        .get(req)
                        .copied()
                        .flatten()
                        .is_none_or(|slo| latency <= slo);
                    let c = class.min(self.win_class.len() - 1);
                    self.win_class[c].served += 1;
                    if met {
                        self.win_class[c].slo_met += 1;
                    }
                    self.win_total.served += 1;
                }
            }
            LoggedEvent::ScaledUp { .. } => {
                self.rec.counter_add("serve.scale_ups", 1);
            }
            LoggedEvent::ScaledDown { .. } => {
                self.rec.counter_add("serve.scale_downs", 1);
            }
            LoggedEvent::WorkerCrashed {
                cycle,
                batch,
                worker,
                wasted,
            } => {
                self.rec.counter_add("serve.faults.crashes", 1);
                if worker >= self.busy.len() {
                    self.busy.resize_with(worker + 1, Vec::new);
                }
                let start = cycle - wasted;
                self.rec.record_span(
                    TRACK_WORKER_BASE + worker as u32,
                    "crashed",
                    start,
                    cycle,
                    vec![("batch", u64_from(batch))],
                );
                self.busy[worker].push((start, cycle));
            }
            LoggedEvent::Requeued { batch, attempt, .. } => {
                self.rec.counter_add("serve.faults.requeues", 1);
                self.rec
                    .hist_record("serve.retry_attempt", u64::from(attempt));
                // The batch re-enters the queued population until its
                // next dispatch releases it again.
                let n = self.batches.get(batch).map_or(0, |b| b.members.len());
                self.occupancy += n;
            }
            LoggedEvent::WorkerStalled { stall, .. } => {
                self.rec.counter_add("serve.faults.stalls", 1);
                self.rec.hist_record("serve.stall_cycles", stall);
            }
            LoggedEvent::Straggling { .. } => {
                self.rec.counter_add("serve.faults.stragglers", 1);
            }
            LoggedEvent::HedgeDispatched {
                cycle,
                batch,
                worker,
                ..
            } => {
                self.rec.counter_add("serve.faults.hedges", 1);
                if worker >= self.busy.len() {
                    self.busy.resize_with(worker + 1, Vec::new);
                }
                if let Some(b) = self.batches.get_mut(batch) {
                    b.hedge_worker = Some(worker);
                    b.hedge_start = cycle;
                }
            }
            LoggedEvent::HedgeCancelled {
                cycle,
                batch,
                worker,
            } => {
                self.rec.counter_add("serve.faults.hedge_cancelled", 1);
                let start = self.batches.get(batch).map_or(cycle, |b| {
                    if Some(worker) == b.hedge_worker {
                        b.hedge_start
                    } else {
                        b.dispatch
                    }
                });
                if worker >= self.busy.len() {
                    self.busy.resize_with(worker + 1, Vec::new);
                }
                self.rec.record_span(
                    TRACK_WORKER_BASE + worker as u32,
                    "cancelled",
                    start,
                    cycle,
                    vec![("batch", u64_from(batch))],
                );
                self.busy[worker].push((start, cycle));
            }
            LoggedEvent::Degraded { cycle, level } => {
                self.rec.counter_add("serve.faults.degrade_shifts", 1);
                self.rec
                    .gauge_sample("serve.degrade_level", cycle, f64::from(level));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatcherConfig;
    use crate::runtime::{run_runtime, run_runtime_with_sink, ResilienceConfig, RuntimeConfig};

    fn flat_service(n: usize) -> u64 {
        100 + 10 * n as u64
    }

    fn trace(n: usize) -> Vec<Request> {
        let mut requests: Vec<Request> = (0..n)
            .map(|i| Request {
                arrival: (i as u64) * 41 % 2_000,
                class: i % 2,
                slo_cycles: if i % 3 == 0 { Some(4_000) } else { None },
            })
            .collect();
        requests.sort_by_key(|r| r.arrival);
        requests
    }

    fn cfg() -> RuntimeConfig {
        RuntimeConfig {
            workers: 2,
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait_cycles: 150,
            },
            queue_capacity: Some(6),
            deadline_aware: true,
            autoscaler: None,
            record_events: false,
            resilience: ResilienceConfig::none(),
        }
    }

    #[test]
    fn sink_is_invisible_to_the_outcome() {
        let requests = trace(30);
        let cfg = cfg();
        let plain = run_runtime(&cfg, &requests, &flat_service, 0);
        let mut sink = RuntimeTelemetry::new(&requests, 500);
        let observed = run_runtime_with_sink(&cfg, &requests, &flat_service, 0, &mut sink);
        assert_eq!(plain, observed);
        assert_eq!(plain.event_digest, observed.event_digest);
    }

    #[test]
    fn timeline_covers_every_served_request_exactly_once() {
        let requests = trace(30);
        let cfg = cfg();
        let mut sink = RuntimeTelemetry::new(&requests, 500);
        let out = run_runtime_with_sink(&cfg, &requests, &flat_service, 0, &mut sink);
        let rec = sink.finish();
        let mut served: Vec<u64> = rec
            .spans()
            .iter()
            .filter(|s| s.name == "request")
            .map(|s| s.args.iter().find(|(k, _)| *k == "req").unwrap().1)
            .collect();
        served.sort_unstable();
        let want: Vec<u64> = out.served.iter().map(|&r| r as u64).collect();
        assert_eq!(served, want);
        // Each request span brackets its queued + service phases.
        for s in rec.spans().iter().filter(|s| s.name == "request") {
            assert!(s.start <= s.end);
        }
        // Batch spans cover every dispatched batch once.
        let batch_spans = rec.spans().iter().filter(|s| s.name == "batch").count();
        assert_eq!(batch_spans, out.sim.batches.len());
        // Counters reconcile with the outcome.
        assert_eq!(
            rec.metrics().counter("serve.completions"),
            out.sim.batches.len() as u64
        );
        assert_eq!(
            rec.metrics().counter("serve.arrivals"),
            out.total_requests as u64
        );
    }

    #[test]
    fn windowed_gauges_and_utilization_are_emitted() {
        let requests = trace(40);
        let cfg = cfg();
        let mut sink = RuntimeTelemetry::new(&requests, 400);
        let out = run_runtime_with_sink(&cfg, &requests, &flat_service, 0, &mut sink);
        let rec = sink.finish();
        let depth = rec.metrics().gauge("serve.queue_depth");
        assert!(!depth.is_empty());
        assert!(depth.windows(2).all(|w| w[0].0 < w[1].0), "samples ordered");
        let util0 = rec.metrics().gauge("serve.worker_util.w0");
        assert!(!util0.is_empty());
        assert!(util0.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
        // Utilization integrates back to the worker's busy cycles.
        let integrated: f64 = util0.iter().map(|&(_, v)| v * 400.0).sum();
        assert!((integrated - out.sim.worker_busy_cycles[0] as f64).abs() < 1e-6);
        for c in 0..2 {
            let att = rec
                .metrics()
                .gauge(&format!("serve.slo_attainment.class{c}"));
            assert!(!att.is_empty());
            assert!(att.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn eviction_keeps_occupancy_and_shed_accounting_consistent() {
        // Queue bound 1: a class-1 newcomer evicts the class-0 member.
        let requests = vec![
            Request {
                arrival: 10,
                class: 0,
                slo_cycles: None,
            },
            Request {
                arrival: 11,
                class: 1,
                slo_cycles: None,
            },
        ];
        let cfg = RuntimeConfig {
            queue_capacity: Some(1),
            workers: 1,
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait_cycles: 1_000,
            },
            deadline_aware: false,
            autoscaler: None,
            record_events: false,
            resilience: ResilienceConfig::none(),
        };
        let mut sink = RuntimeTelemetry::new(&requests, 100);
        run_runtime_with_sink(&cfg, &requests, &flat_service, 0, &mut sink);
        let rec = sink.finish();
        assert_eq!(rec.metrics().counter("serve.rejected.shed_priority"), 1);
        let served: Vec<u64> = rec
            .spans()
            .iter()
            .filter(|s| s.name == "request")
            .map(|s| s.args.iter().find(|(k, _)| *k == "req").unwrap().1)
            .collect();
        assert_eq!(served, vec![1], "only the evictor is served");
    }
}
