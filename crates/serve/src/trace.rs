//! Seeded synthetic arrival traces in virtual time.
//!
//! A serving simulator needs traffic, and reproducible experiments need
//! the *same* traffic every run: arrivals here are pure functions of a
//! [`TraceConfig`] — no wall clock anywhere. Time is measured in
//! accelerator cycles ("virtual time"), so a trace composes directly
//! with the engine's cycle model.
//!
//! The process is a bursty Poisson stream: bursts are separated by
//! exponentially distributed gaps of mean [`TraceConfig::mean_gap_cycles`],
//! and each burst carries a geometrically distributed number of requests
//! of mean [`TraceConfig::mean_burst`] that arrive on the same cycle —
//! the "thundering herd" shape a deployed accelerator actually sees.
//! `mean_burst == 1.0` degenerates to a plain Poisson process.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Upper bound on every virtual-time coordinate a trace may produce.
///
/// Arrival generators clamp the virtual clock here instead of letting
/// it saturate at `u64::MAX`, and config validation rejects wait/SLO
/// budgets beyond it ([`crate::ConfigError::UnrepresentableWait`]).
/// Together the two guarantees make every `arrival + budget` sum in the
/// batcher and the online runtime provably free of `u64` overflow
/// (`2 * (1 << 62) < u64::MAX`), so deadlines are computed with
/// `checked_add` — no silent saturation pinning them to `u64::MAX`.
pub const VIRTUAL_TIME_HORIZON: u64 = 1 << 62;

/// Configuration of one synthetic arrival trace.
///
/// # Example
///
/// ```
/// use capsacc_serve::{arrival_trace, TraceConfig};
/// let cfg = TraceConfig { seed: 7, requests: 100, mean_gap_cycles: 500.0, mean_burst: 4.0 };
/// let a = arrival_trace(&cfg);
/// assert_eq!(a.len(), 100);
/// // Same seed ⇒ byte-identical trace; different seed ⇒ different trace.
/// assert_eq!(a, arrival_trace(&cfg));
/// assert_ne!(a, arrival_trace(&TraceConfig { seed: 8, ..cfg }));
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TraceConfig {
    /// RNG seed; every value derives deterministically from it.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-burst gap in cycles (exponentially distributed).
    pub mean_gap_cycles: f64,
    /// Mean requests per burst (geometric, ≥ 1). `1.0` = no burstiness.
    pub mean_burst: f64,
}

impl TraceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// requests, non-positive or non-finite gap, burst mean below one).
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("trace must contain at least one request".into());
        }
        if !(self.mean_gap_cycles > 0.0 && self.mean_gap_cycles.is_finite()) {
            return Err("mean_gap_cycles must be positive and finite".into());
        }
        if !(self.mean_burst >= 1.0 && self.mean_burst.is_finite()) {
            return Err("mean_burst must be at least 1".into());
        }
        Ok(())
    }
}

/// Generates the sorted arrival cycles of a trace — deterministic in
/// [`TraceConfig::seed`], independent of host, thread count or wall
/// clock.
///
/// # Panics
///
/// Panics if the configuration fails [`TraceConfig::validate`].
pub fn arrival_trace(cfg: &TraceConfig) -> Vec<u64> {
    cfg.validate().expect("invalid trace configuration");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    // P(burst continues) for a geometric burst length of the given mean.
    let p_continue = 1.0 - 1.0 / cfg.mean_burst;
    while arrivals.len() < cfg.requests {
        // Exponential inter-burst gap via inverse CDF; `1 - u` keeps the
        // argument of `ln` in (0, 1].
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() * cfg.mean_gap_cycles;
        // Clamp to the horizon instead of wrapping or saturating at
        // `u64::MAX`: an absurd-but-valid mean gap must still yield a
        // sorted trace whose deadlines cannot overflow downstream.
        // lint:allow(cast-audit, f64-to-u64 is the sampling quantization itself; negative and NaN draws are impossible by construction)
        now = now.saturating_add(gap as u64).min(VIRTUAL_TIME_HORIZON);
        arrivals.push(now);
        while arrivals.len() < cfg.requests && rng.gen_range(0.0..1.0) < p_continue {
            arrivals.push(now);
        }
    }
    arrivals
}

/// One serving request in virtual time, as the online runtime sees it:
/// an arrival cycle, a priority class and an optional latency SLO.
///
/// Higher `class` means more important: the runtime's load shedder
/// evicts lowest-class requests first. `slo_cycles` is the end-to-end
/// latency budget measured from `arrival`; `None` is best-effort (never
/// rejected as infeasible, always counted as within-SLO when served).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Request {
    /// Arrival cycle.
    pub arrival: u64,
    /// Priority class (index into [`WorkloadConfig::classes`]; higher
    /// is more important).
    pub class: usize,
    /// End-to-end latency budget in cycles from arrival, if any.
    pub slo_cycles: Option<u64>,
}

impl Request {
    /// A best-effort request: lowest class, no deadline. This is the
    /// shape the offline pipeline implicitly serves, and the one the
    /// offline-equivalence anchor feeds the online runtime.
    pub fn best_effort(arrival: u64) -> Self {
        Self {
            arrival,
            class: 0,
            slo_cycles: None,
        }
    }
}

/// One priority class of a workload: a sampling weight and the SLO its
/// requests carry.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ClassConfig {
    /// Relative sampling weight (classes are drawn independently per
    /// request, proportional to weight).
    pub weight: u32,
    /// Latency budget of this class's requests, or `None` for
    /// best-effort traffic.
    pub slo_cycles: Option<u64>,
}

/// The arrival process of a workload trace.
///
/// All three regimes draw exponential inter-arrival gaps; they differ
/// in how the mean gap evolves over virtual time.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum ArrivalRegime {
    /// The stationary bursty-Poisson stream of [`arrival_trace`]:
    /// exponential gaps of the given mean between bursts, geometric
    /// burst sizes of mean `mean_burst` arriving on one cycle.
    Bursty {
        /// Mean inter-burst gap in cycles.
        mean_gap_cycles: f64,
        /// Mean requests per burst (≥ 1).
        mean_burst: f64,
    },
    /// A day/night load cycle: the mean gap interpolates linearly from
    /// `offpeak_gap_cycles` at the period boundaries to
    /// `peak_gap_cycles` at mid-period (triangle wave), so traffic
    /// swells and recedes smoothly — the regime autoscalers live in.
    Diurnal {
        /// Length of one load cycle in cycles.
        period_cycles: u64,
        /// Mean gap at the trough (slowest traffic; the larger gap).
        offpeak_gap_cycles: f64,
        /// Mean gap at the peak (heaviest traffic; the smaller gap).
        peak_gap_cycles: f64,
    },
    /// A flash crowd: stationary base traffic with one dense spike
    /// window — the overload-and-recovery regime the admission
    /// controller and shedder are sized against.
    Spike {
        /// Mean gap outside the spike window.
        base_gap_cycles: f64,
        /// Cycle the spike begins.
        spike_start_cycle: u64,
        /// Spike duration in cycles.
        spike_cycles: u64,
        /// Mean gap inside the spike window (smaller = heavier).
        spike_gap_cycles: f64,
    },
}

impl ArrivalRegime {
    fn validate(&self) -> Result<(), String> {
        let gap_ok = |g: f64| g > 0.0 && g.is_finite();
        match *self {
            ArrivalRegime::Bursty {
                mean_gap_cycles,
                mean_burst,
            } => {
                if !gap_ok(mean_gap_cycles) {
                    return Err("mean_gap_cycles must be positive and finite".into());
                }
                if !(mean_burst >= 1.0 && mean_burst.is_finite()) {
                    return Err("mean_burst must be at least 1".into());
                }
            }
            ArrivalRegime::Diurnal {
                period_cycles,
                offpeak_gap_cycles,
                peak_gap_cycles,
            } => {
                if period_cycles == 0 {
                    return Err("diurnal period must be at least one cycle".into());
                }
                if !gap_ok(offpeak_gap_cycles) || !gap_ok(peak_gap_cycles) {
                    return Err("diurnal gaps must be positive and finite".into());
                }
                if peak_gap_cycles > offpeak_gap_cycles {
                    return Err("peak gap must not exceed off-peak gap".into());
                }
            }
            ArrivalRegime::Spike {
                base_gap_cycles,
                spike_cycles,
                spike_gap_cycles,
                ..
            } => {
                if !gap_ok(base_gap_cycles) || !gap_ok(spike_gap_cycles) {
                    return Err("spike gaps must be positive and finite".into());
                }
                if spike_cycles == 0 {
                    return Err("spike window must be at least one cycle".into());
                }
            }
        }
        Ok(())
    }
}

/// Configuration of one multi-class workload trace.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadConfig {
    /// RNG seed; the whole workload derives deterministically from it.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// The arrival process.
    pub regime: ArrivalRegime,
    /// Priority classes (index = class, higher = more important). Must
    /// be non-empty with at least one positive weight; SLO budgets must
    /// fit under [`VIRTUAL_TIME_HORIZON`].
    pub classes: Vec<ClassConfig>,
}

impl WorkloadConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("workload must contain at least one request".into());
        }
        self.regime.validate()?;
        if self.classes.is_empty() {
            return Err("workload needs at least one priority class".into());
        }
        if self.classes.iter().all(|c| c.weight == 0) {
            return Err("at least one class must have positive weight".into());
        }
        for c in &self.classes {
            if let Some(slo) = c.slo_cycles {
                if slo > VIRTUAL_TIME_HORIZON {
                    return Err(format!(
                        "class SLO of {slo} cycles exceeds the virtual-time horizon"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Generates a multi-class workload trace: sorted arrivals under the
/// configured regime, each request tagged with a weight-sampled
/// priority class and its class's SLO. Deterministic in
/// [`WorkloadConfig::seed`]; arrivals are clamped to
/// [`VIRTUAL_TIME_HORIZON`].
///
/// # Panics
///
/// Panics if the configuration fails [`WorkloadConfig::validate`].
pub fn workload_trace(cfg: &WorkloadConfig) -> Vec<Request> {
    cfg.validate().expect("invalid workload configuration");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_weight: u64 = cfg.classes.iter().map(|c| u64::from(c.weight)).sum();
    let draw_class = |rng: &mut StdRng| -> usize {
        // lint:allow(cast-audit, f64-to-u64 is the sampling quantization itself; the draw is below total_weight and non-negative so the cast is lossless)
        let mut ticket = (rng.gen_range(0.0..1.0) * total_weight as f64) as u64;
        for (i, c) in cfg.classes.iter().enumerate() {
            let w = u64::from(c.weight);
            if ticket < w {
                return i;
            }
            ticket -= w;
        }
        cfg.classes.len() - 1
    };
    let exp_gap = |rng: &mut StdRng, mean: f64| -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // lint:allow(cast-audit, f64-to-u64 is the sampling quantization itself; the draw is non-negative by construction)
        (-(1.0 - u).ln() * mean) as u64
    };
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    let push = |requests: &mut Vec<Request>, rng: &mut StdRng, arrival: u64| {
        let class = draw_class(rng);
        requests.push(Request {
            arrival,
            class,
            slo_cycles: cfg.classes[class].slo_cycles,
        });
    };
    match cfg.regime {
        ArrivalRegime::Bursty {
            mean_gap_cycles,
            mean_burst,
        } => {
            let p_continue = 1.0 - 1.0 / mean_burst;
            while requests.len() < cfg.requests {
                now = now
                    .saturating_add(exp_gap(&mut rng, mean_gap_cycles))
                    .min(VIRTUAL_TIME_HORIZON);
                push(&mut requests, &mut rng, now);
                while requests.len() < cfg.requests && rng.gen_range(0.0..1.0) < p_continue {
                    push(&mut requests, &mut rng, now);
                }
            }
        }
        ArrivalRegime::Diurnal {
            period_cycles,
            offpeak_gap_cycles,
            peak_gap_cycles,
        } => {
            while requests.len() < cfg.requests {
                let phase = (now % period_cycles) as f64 / period_cycles as f64;
                // Triangle wave: 0 at the period boundaries, 1 mid-period.
                let swell = 1.0 - (2.0 * phase - 1.0).abs();
                let mean = offpeak_gap_cycles + (peak_gap_cycles - offpeak_gap_cycles) * swell;
                now = now
                    .saturating_add(exp_gap(&mut rng, mean))
                    .min(VIRTUAL_TIME_HORIZON);
                push(&mut requests, &mut rng, now);
            }
        }
        ArrivalRegime::Spike {
            base_gap_cycles,
            spike_start_cycle,
            spike_cycles,
            spike_gap_cycles,
        } => {
            let spike_end = spike_start_cycle.saturating_add(spike_cycles);
            while requests.len() < cfg.requests {
                let in_spike = now >= spike_start_cycle && now < spike_end;
                let mean = if in_spike {
                    spike_gap_cycles
                } else {
                    base_gap_cycles
                };
                now = now
                    .saturating_add(exp_gap(&mut rng, mean))
                    .min(VIRTUAL_TIME_HORIZON);
                push(&mut requests, &mut rng, now);
            }
        }
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation_rejects_degenerate_traces() {
        let ok = TraceConfig {
            seed: 1,
            requests: 10,
            mean_gap_cycles: 100.0,
            mean_burst: 2.0,
        };
        assert!(ok.validate().is_ok());
        assert!(TraceConfig { requests: 0, ..ok }.validate().is_err());
        assert!(TraceConfig {
            mean_gap_cycles: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(TraceConfig {
            mean_gap_cycles: f64::INFINITY,
            ..ok
        }
        .validate()
        .is_err());
        assert!(TraceConfig {
            mean_burst: 0.5,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn burstiness_concentrates_arrivals() {
        // With mean_burst = 1 every request gets its own burst (gaps can
        // still floor to the same integer cycle occasionally); with a
        // large burst mean, most arrivals share cycles.
        let base = TraceConfig {
            seed: 3,
            requests: 200,
            mean_gap_cycles: 1000.0,
            mean_burst: 1.0,
        };
        let plain = arrival_trace(&base);
        let distinct = |a: &[u64]| {
            let mut v = a.to_vec();
            v.dedup();
            v.len()
        };
        assert!(distinct(&plain) * 10 >= plain.len() * 9);
        let bursty = arrival_trace(&TraceConfig {
            mean_burst: 8.0,
            ..base
        });
        assert!(distinct(&bursty) < bursty.len() / 2);
        assert!(distinct(&bursty) < distinct(&plain));
    }

    #[test]
    fn absurd_gap_saturates_instead_of_wrapping() {
        // A valid-but-enormous mean gap must saturate the virtual clock,
        // not wrap it into an unsorted trace.
        let cfg = TraceConfig {
            seed: 0,
            requests: 4,
            mean_gap_cycles: 1e18,
            mean_burst: 1.0,
        };
        let a = arrival_trace(&cfg);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "trace must stay sorted");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Traces are sorted, the right length, and deterministic in the
        /// seed.
        #[test]
        fn traces_are_sorted_and_deterministic(
            seed in 0u64..1000,
            requests in 1usize..300,
            gap in 1u64..10_000,
            burst in 1u64..8,
        ) {
            let cfg = TraceConfig {
                seed,
                requests,
                mean_gap_cycles: gap as f64,
                mean_burst: burst as f64,
            };
            let a = arrival_trace(&cfg);
            prop_assert_eq!(a.len(), requests);
            prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "unsorted trace");
            prop_assert_eq!(a, arrival_trace(&cfg));
        }
    }

    #[test]
    fn workload_validation_rejects_degenerate_configs() {
        let ok = WorkloadConfig {
            seed: 1,
            requests: 10,
            regime: ArrivalRegime::Bursty {
                mean_gap_cycles: 100.0,
                mean_burst: 2.0,
            },
            classes: vec![ClassConfig {
                weight: 1,
                slo_cycles: Some(1_000),
            }],
        };
        assert!(ok.validate().is_ok());
        assert!(WorkloadConfig {
            requests: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            classes: vec![],
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            classes: vec![ClassConfig {
                weight: 0,
                slo_cycles: None
            }],
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            classes: vec![ClassConfig {
                weight: 1,
                slo_cycles: Some(VIRTUAL_TIME_HORIZON + 1),
            }],
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            regime: ArrivalRegime::Diurnal {
                period_cycles: 0,
                offpeak_gap_cycles: 100.0,
                peak_gap_cycles: 10.0,
            },
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            regime: ArrivalRegime::Diurnal {
                period_cycles: 100,
                offpeak_gap_cycles: 10.0,
                peak_gap_cycles: 100.0,
            },
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(WorkloadConfig {
            regime: ArrivalRegime::Spike {
                base_gap_cycles: 100.0,
                spike_start_cycle: 0,
                spike_cycles: 0,
                spike_gap_cycles: 10.0,
            },
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn spike_regime_concentrates_arrivals_in_the_window() {
        // The spike window must actually be denser than the baseline:
        // count arrivals per cycle inside vs outside.
        let cfg = WorkloadConfig {
            seed: 11,
            requests: 2_000,
            regime: ArrivalRegime::Spike {
                base_gap_cycles: 1_000.0,
                spike_start_cycle: 200_000,
                spike_cycles: 100_000,
                spike_gap_cycles: 20.0,
            },
            classes: vec![ClassConfig {
                weight: 1,
                slo_cycles: None,
            }],
        };
        let reqs = workload_trace(&cfg);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let inside = reqs
            .iter()
            .filter(|r| (200_000..300_000).contains(&r.arrival))
            .count();
        let before = reqs.iter().filter(|r| r.arrival < 200_000).count();
        // ~200 arrivals expected before (1/1000 per cycle), ~5000-capped
        // inside; the density ratio must be far above 1.
        assert!(
            inside > 5 * before.max(1),
            "spike not denser than baseline: {inside} inside vs {before} before"
        );
    }

    #[test]
    fn diurnal_regime_swells_mid_period() {
        let period = 1_000_000u64;
        let cfg = WorkloadConfig {
            seed: 5,
            requests: 3_000,
            regime: ArrivalRegime::Diurnal {
                period_cycles: period,
                offpeak_gap_cycles: 5_000.0,
                peak_gap_cycles: 100.0,
            },
            classes: vec![ClassConfig {
                weight: 1,
                slo_cycles: None,
            }],
        };
        let reqs = workload_trace(&cfg);
        // Mid-period halves must carry more traffic than the edges.
        let mid = reqs
            .iter()
            .filter(|r| {
                let phase = r.arrival % period;
                (period / 4..3 * period / 4).contains(&phase)
            })
            .count();
        assert!(
            mid * 2 > reqs.len(),
            "diurnal peak not denser: {mid} of {} mid-period",
            reqs.len()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Workload traces are sorted, complete, deterministic, and
        /// class-consistent (every request's SLO matches its class).
        #[test]
        fn workloads_are_sorted_deterministic_and_class_consistent(
            seed in 0u64..1000,
            requests in 1usize..200,
            gap in 1u64..5_000,
            hi_weight in 0u32..5,
        ) {
            let cfg = WorkloadConfig {
                seed,
                requests,
                regime: ArrivalRegime::Bursty {
                    mean_gap_cycles: gap as f64,
                    mean_burst: 2.0,
                },
                classes: vec![
                    ClassConfig { weight: 3, slo_cycles: None },
                    ClassConfig { weight: hi_weight, slo_cycles: Some(50_000) },
                ],
            };
            let reqs = workload_trace(&cfg);
            prop_assert_eq!(reqs.len(), requests);
            prop_assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            for r in &reqs {
                prop_assert!(r.class < cfg.classes.len());
                prop_assert_eq!(r.slo_cycles, cfg.classes[r.class].slo_cycles);
                if hi_weight == 0 {
                    prop_assert_eq!(r.class, 0, "zero-weight class must never be drawn");
                }
            }
            prop_assert_eq!(reqs, workload_trace(&cfg));
        }
    }
}
