//! Seeded synthetic arrival traces in virtual time.
//!
//! A serving simulator needs traffic, and reproducible experiments need
//! the *same* traffic every run: arrivals here are pure functions of a
//! [`TraceConfig`] — no wall clock anywhere. Time is measured in
//! accelerator cycles ("virtual time"), so a trace composes directly
//! with the engine's cycle model.
//!
//! The process is a bursty Poisson stream: bursts are separated by
//! exponentially distributed gaps of mean [`TraceConfig::mean_gap_cycles`],
//! and each burst carries a geometrically distributed number of requests
//! of mean [`TraceConfig::mean_burst`] that arrive on the same cycle —
//! the "thundering herd" shape a deployed accelerator actually sees.
//! `mean_burst == 1.0` degenerates to a plain Poisson process.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Configuration of one synthetic arrival trace.
///
/// # Example
///
/// ```
/// use capsacc_serve::{arrival_trace, TraceConfig};
/// let cfg = TraceConfig { seed: 7, requests: 100, mean_gap_cycles: 500.0, mean_burst: 4.0 };
/// let a = arrival_trace(&cfg);
/// assert_eq!(a.len(), 100);
/// // Same seed ⇒ byte-identical trace; different seed ⇒ different trace.
/// assert_eq!(a, arrival_trace(&cfg));
/// assert_ne!(a, arrival_trace(&TraceConfig { seed: 8, ..cfg }));
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct TraceConfig {
    /// RNG seed; every value derives deterministically from it.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-burst gap in cycles (exponentially distributed).
    pub mean_gap_cycles: f64,
    /// Mean requests per burst (geometric, ≥ 1). `1.0` = no burstiness.
    pub mean_burst: f64,
}

impl TraceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// requests, non-positive or non-finite gap, burst mean below one).
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("trace must contain at least one request".into());
        }
        if !(self.mean_gap_cycles > 0.0 && self.mean_gap_cycles.is_finite()) {
            return Err("mean_gap_cycles must be positive and finite".into());
        }
        if !(self.mean_burst >= 1.0 && self.mean_burst.is_finite()) {
            return Err("mean_burst must be at least 1".into());
        }
        Ok(())
    }
}

/// Generates the sorted arrival cycles of a trace — deterministic in
/// [`TraceConfig::seed`], independent of host, thread count or wall
/// clock.
///
/// # Panics
///
/// Panics if the configuration fails [`TraceConfig::validate`].
pub fn arrival_trace(cfg: &TraceConfig) -> Vec<u64> {
    cfg.validate().expect("invalid trace configuration");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    // P(burst continues) for a geometric burst length of the given mean.
    let p_continue = 1.0 - 1.0 / cfg.mean_burst;
    while arrivals.len() < cfg.requests {
        // Exponential inter-burst gap via inverse CDF; `1 - u` keeps the
        // argument of `ln` in (0, 1].
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() * cfg.mean_gap_cycles;
        // Saturate instead of wrapping: an absurd-but-valid mean gap
        // must still yield a sorted trace, not a wrapped timeline.
        now = now.saturating_add(gap as u64);
        arrivals.push(now);
        while arrivals.len() < cfg.requests && rng.gen_range(0.0..1.0) < p_continue {
            arrivals.push(now);
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation_rejects_degenerate_traces() {
        let ok = TraceConfig {
            seed: 1,
            requests: 10,
            mean_gap_cycles: 100.0,
            mean_burst: 2.0,
        };
        assert!(ok.validate().is_ok());
        assert!(TraceConfig { requests: 0, ..ok }.validate().is_err());
        assert!(TraceConfig {
            mean_gap_cycles: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(TraceConfig {
            mean_gap_cycles: f64::INFINITY,
            ..ok
        }
        .validate()
        .is_err());
        assert!(TraceConfig {
            mean_burst: 0.5,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn burstiness_concentrates_arrivals() {
        // With mean_burst = 1 every request gets its own burst (gaps can
        // still floor to the same integer cycle occasionally); with a
        // large burst mean, most arrivals share cycles.
        let base = TraceConfig {
            seed: 3,
            requests: 200,
            mean_gap_cycles: 1000.0,
            mean_burst: 1.0,
        };
        let plain = arrival_trace(&base);
        let distinct = |a: &[u64]| {
            let mut v = a.to_vec();
            v.dedup();
            v.len()
        };
        assert!(distinct(&plain) * 10 >= plain.len() * 9);
        let bursty = arrival_trace(&TraceConfig {
            mean_burst: 8.0,
            ..base
        });
        assert!(distinct(&bursty) < bursty.len() / 2);
        assert!(distinct(&bursty) < distinct(&plain));
    }

    #[test]
    fn absurd_gap_saturates_instead_of_wrapping() {
        // A valid-but-enormous mean gap must saturate the virtual clock,
        // not wrap it into an unsorted trace.
        let cfg = TraceConfig {
            seed: 0,
            requests: 4,
            mean_gap_cycles: 1e18,
            mean_burst: 1.0,
        };
        let a = arrival_trace(&cfg);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "trace must stay sorted");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Traces are sorted, the right length, and deterministic in the
        /// seed.
        #[test]
        fn traces_are_sorted_and_deterministic(
            seed in 0u64..1000,
            requests in 1usize..300,
            gap in 1u64..10_000,
            burst in 1u64..8,
        ) {
            let cfg = TraceConfig {
                seed,
                requests,
                mean_gap_cycles: gap as f64,
                mean_burst: burst as f64,
            };
            let a = arrival_trace(&cfg);
            prop_assert_eq!(a.len(), requests);
            prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "unsorted trace");
            prop_assert_eq!(a, arrival_trace(&cfg));
        }
    }
}
