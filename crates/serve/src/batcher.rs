//! The dynamic micro-batcher.
//!
//! Serving traffic arrives one request at a time, but the accelerator's
//! layer-major residency ([`capsacc_core::BatchScheduler`]) only pays
//! off across a *batch*. The micro-batcher trades the two off: it holds
//! requests back to grow the batch, but never longer than a deadline —
//! the classic dynamic-batching policy of production inference servers.
//!
//! A batch opens at its first request's arrival `t0` and closes at
//! whichever comes first:
//!
//! - **size**: the [`BatcherConfig::max_batch`]-th request arrives
//!   (close at that arrival cycle), or
//! - **deadline**: `t0 + max_wait_cycles` passes (close at the
//!   deadline, with however many requests arrived by then — arrivals
//!   *exactly on* the deadline still join).
//!
//! Batch formation is a pure function of the arrival trace — it does
//! not depend on worker availability or service times — which is one
//! half of the serving simulator's determinism invariant.

use crate::trace::VIRTUAL_TIME_HORIZON;

/// A violated constraint in a serving-policy configuration
/// ([`BatcherConfig`], [`crate::RuntimeConfig`]) — typed, so callers
/// can match on *which* constraint failed instead of parsing a string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `max_batch` is zero — a batch can never form.
    ZeroMaxBatch,
    /// The wait budget exceeds [`VIRTUAL_TIME_HORIZON`]: `t0 +
    /// max_wait_cycles` could not be represented for every in-horizon
    /// arrival, so the config is rejected instead of letting deadline
    /// arithmetic saturate silently at `u64::MAX`.
    UnrepresentableWait {
        /// The offending wait budget.
        max_wait_cycles: u64,
    },
    /// The runtime needs at least one initial worker.
    ZeroWorkers,
    /// A bounded admission queue must hold at least one request.
    ZeroQueueCapacity,
    /// An autoscaler bound or period is degenerate; the payload names
    /// the constraint.
    InvalidAutoscaler(&'static str),
    /// A fault-plan rate or recovery policy is degenerate; the payload
    /// names the constraint.
    InvalidResilience(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            ConfigError::UnrepresentableWait { max_wait_cycles } => write!(
                f,
                "max_wait_cycles of {max_wait_cycles} exceeds the virtual-time horizon \
                 ({VIRTUAL_TIME_HORIZON}); deadlines would saturate instead of being computed"
            ),
            ConfigError::ZeroWorkers => write!(f, "at least one worker required"),
            ConfigError::ZeroQueueCapacity => {
                write!(
                    f,
                    "queue_capacity of Some(0) admits nothing; use None for unbounded"
                )
            }
            ConfigError::InvalidAutoscaler(what) => write!(f, "invalid autoscaler: {what}"),
            ConfigError::InvalidResilience(what) => write!(f, "invalid resilience: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Micro-batching policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BatcherConfig {
    /// Largest batch a worker accepts (closes the batch early).
    pub max_batch: usize,
    /// Longest a request may wait for co-batching, in cycles from the
    /// batch's first arrival. Zero means "never wait": a batch is
    /// whatever arrived on one cycle.
    pub max_wait_cycles: u64,
}

impl BatcherConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroMaxBatch`] for a `max_batch` of zero;
    /// [`ConfigError::UnrepresentableWait`] for a wait budget beyond
    /// [`VIRTUAL_TIME_HORIZON`] (whose deadlines would silently
    /// saturate at `u64::MAX` instead of being representable for every
    /// in-horizon arrival).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.max_wait_cycles > VIRTUAL_TIME_HORIZON {
            return Err(ConfigError::UnrepresentableWait {
                max_wait_cycles: self.max_wait_cycles,
            });
        }
        Ok(())
    }
}

/// One closed micro-batch: a contiguous run of requests (requests are
/// batched strictly in arrival order) plus the cycle it closed.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MicroBatch {
    /// Index of the first request in the batch.
    pub first: usize,
    /// Number of requests in the batch (1 ..= `max_batch`).
    pub len: usize,
    /// Cycle the batch closed and became dispatchable.
    pub close_cycle: u64,
}

impl MicroBatch {
    /// The request indices of this batch.
    pub fn requests(&self) -> std::ops::Range<usize> {
        self.first..self.first + self.len
    }
}

/// Forms micro-batches over a sorted arrival trace.
///
/// Every request lands in exactly one batch, batches preserve arrival
/// order, and each batch's `close_cycle` is at least its last member's
/// arrival.
///
/// # Example
///
/// ```
/// use capsacc_serve::{form_batches, BatcherConfig};
/// let arrivals = [0, 10, 11, 12, 500];
/// let cfg = BatcherConfig { max_batch: 3, max_wait_cycles: 100 };
/// let batches = form_batches(&arrivals, &cfg);
/// // [0, 10, 11] fills max_batch at cycle 11; [12] closes at its
/// // deadline 112 (the next arrival is beyond it); [500] likewise.
/// assert_eq!(batches.len(), 3);
/// assert_eq!((batches[0].first, batches[0].len, batches[0].close_cycle), (0, 3, 11));
/// assert_eq!((batches[1].first, batches[1].len, batches[1].close_cycle), (3, 1, 112));
/// assert_eq!((batches[2].first, batches[2].len, batches[2].close_cycle), (4, 1, 600));
/// ```
///
/// # Panics
///
/// Panics if the configuration fails [`BatcherConfig::validate`] or
/// `arrivals` is not sorted.
pub fn form_batches(arrivals: &[u64], cfg: &BatcherConfig) -> Vec<MicroBatch> {
    cfg.validate().expect("invalid batcher configuration");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival trace must be sorted"
    );
    let mut batches = Vec::new();
    let mut first = 0;
    while first < arrivals.len() {
        let t0 = arrivals[first];
        // Cannot overflow: validate bounds the wait budget by the
        // horizon and traces clamp arrivals to it, so the sum is at
        // most `2^63`. `checked_add` (not `saturating_add`) keeps that
        // claim honest for hand-built out-of-horizon traces.
        let deadline = t0
            .checked_add(cfg.max_wait_cycles)
            .expect("deadline overflows u64: arrival beyond the virtual-time horizon");
        let mut next = first + 1;
        while next < arrivals.len() && next - first < cfg.max_batch && arrivals[next] <= deadline {
            next += 1;
        }
        let len = next - first;
        let close_cycle = if len == cfg.max_batch {
            arrivals[next - 1]
        } else {
            deadline
        };
        batches.push(MicroBatch {
            first,
            len,
            close_cycle,
        });
        first = next;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_trigger_closes_at_last_arrival() {
        let cfg = BatcherConfig {
            max_batch: 2,
            max_wait_cycles: 1000,
        };
        let b = form_batches(&[5, 7, 9, 11], &cfg);
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].first, b[0].len, b[0].close_cycle), (0, 2, 7));
        assert_eq!((b[1].first, b[1].len, b[1].close_cycle), (2, 2, 11));
    }

    #[test]
    fn deadline_trigger_closes_at_deadline_and_includes_edge_arrivals() {
        let cfg = BatcherConfig {
            max_batch: 10,
            max_wait_cycles: 50,
        };
        // 50 arrives exactly on the deadline of the batch opened at 0 —
        // it joins; 51 misses it and opens the next batch.
        let b = form_batches(&[0, 50, 51], &cfg);
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].first, b[0].len, b[0].close_cycle), (0, 2, 50));
        assert_eq!((b[1].first, b[1].len, b[1].close_cycle), (2, 1, 101));
    }

    #[test]
    fn zero_wait_batches_only_same_cycle_arrivals() {
        let cfg = BatcherConfig {
            max_batch: 8,
            max_wait_cycles: 0,
        };
        let b = form_batches(&[3, 3, 3, 4, 9], &cfg);
        assert_eq!(b.len(), 3);
        assert_eq!((b[0].len, b[0].close_cycle), (3, 3));
        assert_eq!((b[1].len, b[1].close_cycle), (1, 4));
        assert_eq!((b[2].len, b[2].close_cycle), (1, 9));
    }

    #[test]
    fn validation_is_typed_and_rejects_unrepresentable_waits() {
        // The old code saturated `t0 + max_wait_cycles` silently,
        // pinning every deadline to u64::MAX near the top of the range;
        // now the config is rejected up front with a typed error.
        assert_eq!(
            BatcherConfig {
                max_batch: 0,
                max_wait_cycles: 10,
            }
            .validate(),
            Err(ConfigError::ZeroMaxBatch)
        );
        assert_eq!(
            BatcherConfig {
                max_batch: 4,
                max_wait_cycles: u64::MAX,
            }
            .validate(),
            Err(ConfigError::UnrepresentableWait {
                max_wait_cycles: u64::MAX,
            })
        );
        assert_eq!(
            BatcherConfig {
                max_batch: 4,
                max_wait_cycles: VIRTUAL_TIME_HORIZON + 1,
            }
            .validate(),
            Err(ConfigError::UnrepresentableWait {
                max_wait_cycles: VIRTUAL_TIME_HORIZON + 1,
            })
        );
        // The largest representable wait is accepted, and deadlines at
        // the horizon compute exactly instead of saturating.
        let cfg = BatcherConfig {
            max_batch: 4,
            max_wait_cycles: VIRTUAL_TIME_HORIZON,
        };
        assert_eq!(cfg.validate(), Ok(()));
        let b = form_batches(&[VIRTUAL_TIME_HORIZON], &cfg);
        assert_eq!(b[0].close_cycle, 2 * VIRTUAL_TIME_HORIZON);
        assert!(b[0].close_cycle < u64::MAX);
    }

    #[test]
    fn empty_trace_forms_no_batches() {
        let cfg = BatcherConfig {
            max_batch: 4,
            max_wait_cycles: 10,
        };
        assert!(form_batches(&[], &cfg).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Structural invariants: batches partition the trace in order,
        /// never exceed `max_batch`, close no earlier than their last
        /// member's arrival and no later than first arrival + wait
        /// (unless closed by size on the exact arrival).
        #[test]
        fn batches_partition_the_trace(
            gaps in proptest::collection::vec(0u64..300, 1..100),
            max_batch in 1usize..9,
            max_wait in 0u64..500,
        ) {
            let mut t = 0u64;
            let arrivals: Vec<u64> = gaps.iter().map(|&g| { t += g; t }).collect();
            let cfg = BatcherConfig { max_batch, max_wait_cycles: max_wait };
            let batches = form_batches(&arrivals, &cfg);
            let mut next = 0usize;
            for b in &batches {
                prop_assert_eq!(b.first, next, "batches must tile the trace");
                prop_assert!(b.len >= 1 && b.len <= max_batch);
                let last_arrival = arrivals[b.first + b.len - 1];
                prop_assert!(b.close_cycle >= last_arrival);
                prop_assert!(b.close_cycle <= arrivals[b.first] + max_wait);
                // Deadline-closed batches really were starved: the next
                // request (if any) must miss the deadline.
                if b.len < max_batch {
                    if let Some(&next_arrival) = arrivals.get(b.first + b.len) {
                        prop_assert!(next_arrival > arrivals[b.first] + max_wait);
                    }
                }
                next = b.first + b.len;
            }
            prop_assert_eq!(next, arrivals.len(), "every request is batched");
        }
    }
}
