//! Virtual-time dispatch of micro-batches onto a pool of workers.
//!
//! The simulator is event-free and exact: batches are dispatched in
//! close order, each to the worker that frees up earliest (ties broken
//! by lowest worker id — the deterministic analogue of "grab the idle
//! replica"), and a batch of `n` requests occupies its worker for
//! `service(n)` cycles, the engine's own cycle model. Everything is
//! integer virtual time; reruns are byte-identical.
//!
//! Per-request latency decomposes exactly the way a serving dashboard
//! would report it: *queue wait* (arrival → the batch's dispatch, which
//! includes the micro-batcher's co-batching delay — a request early in
//! a batch waits longer than the one that closed it) plus *service*
//! (the whole batch's [`capsacc_core::BatchRun`]-equivalent cycles; the
//! layer-major schedule finishes all images of a batch together).

use crate::batcher::MicroBatch;

/// Per-request accounting of one simulated serve.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RequestStat {
    /// Arrival cycle (from the trace).
    pub arrival: u64,
    /// Cycle the request's batch started on its worker.
    pub dispatch: u64,
    /// Cycle the request's batch completed.
    pub completion: u64,
    /// Worker that served it.
    pub worker: usize,
    /// Index of its batch in close order.
    pub batch: usize,
    /// Position within the batch (0-based arrival order).
    pub slot: usize,
}

impl RequestStat {
    /// End-to-end latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Cycles spent queued (co-batching wait + waiting for a worker).
    pub fn queue_wait_cycles(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Cycles of batch service.
    pub fn service_cycles(&self) -> u64 {
        self.completion - self.dispatch
    }
}

/// Per-batch accounting of one simulated serve.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BatchStat {
    /// Worker the batch ran on.
    pub worker: usize,
    /// Requests in the batch.
    pub len: usize,
    /// Cycle the micro-batcher closed the batch.
    pub close_cycle: u64,
    /// Cycle the batch started on its worker (≥ close).
    pub start_cycle: u64,
    /// Cycle the batch completed.
    pub end_cycle: u64,
}

/// Everything one simulated serve produced.
#[derive(Clone, PartialEq, Debug)]
pub struct SimOutcome {
    /// Per-request stats, in request (arrival) order.
    pub requests: Vec<RequestStat>,
    /// Per-batch stats, in close order.
    pub batches: Vec<BatchStat>,
    /// Cycles each worker spent serving batches.
    pub worker_busy_cycles: Vec<u64>,
    /// Cycle the last batch completed (0 for an empty trace).
    pub makespan_cycles: u64,
}

impl SimOutcome {
    /// All request latencies, ascending.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .requests
            .iter()
            .map(RequestStat::latency_cycles)
            .collect();
        v.sort_unstable();
        v
    }

    /// `[p50, p95, p99]` latency in cycles (nearest-rank). Total like
    /// the other aggregate views: an empty (idle-window) outcome
    /// reports `[0, 0, 0]` instead of panicking.
    pub fn latency_percentiles(&self) -> [u64; 3] {
        let sorted = self.sorted_latencies();
        if sorted.is_empty() {
            return [0; 3];
        }
        [
            percentile(&sorted, 50.0),
            percentile(&sorted, 95.0),
            percentile(&sorted, 99.0),
        ]
    }

    /// Aggregate throughput in images per cycle of virtual time.
    pub fn throughput_per_cycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.requests.len() as f64 / self.makespan_cycles as f64
    }

    /// Goodput under a uniform latency budget: served requests whose
    /// end-to-end latency is within `budget_cycles`, per cycle of
    /// virtual time. Throughput counts everything served; goodput only
    /// counts what was served *usefully* — the number an overloaded
    /// system can tank even while throughput looks healthy.
    pub fn goodput_within(&self, budget_cycles: u64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        let good = self
            .requests
            .iter()
            .filter(|r| r.latency_cycles() <= budget_cycles)
            .count();
        good as f64 / self.makespan_cycles as f64
    }

    /// Fraction of served requests whose latency is within
    /// `budget_cycles` (1.0 for an empty outcome — no request missed).
    pub fn attainment_within(&self, budget_cycles: u64) -> f64 {
        if self.requests.is_empty() {
            return 1.0;
        }
        let good = self
            .requests
            .iter()
            .filter(|r| r.latency_cycles() <= budget_cycles)
            .count();
        good as f64 / self.requests.len() as f64
    }

    /// Mean images per dispatched batch (0.0 for an empty trace — total,
    /// like the engine's per-image views).
    pub fn mean_batch_len(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.requests.len() as f64 / self.batches.len() as f64
    }

    /// Fraction of the makespan worker `w` spent serving. Total: an
    /// idle window (zero makespan) and a worker index beyond the pool
    /// both report `0.0` — degenerate serves must yield defined
    /// statistics, not a panic or NaN in a dashboard aggregation.
    pub fn utilization(&self, worker: usize) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.worker_busy_cycles.get(worker).copied().unwrap_or(0) as f64
            / self.makespan_cycles as f64
    }

    /// Batch indices assigned to each worker, in dispatch order — the
    /// exact work lists a [`crate::ShardPool`] executes.
    pub fn assignments(&self) -> Vec<Vec<usize>> {
        let workers = self.worker_busy_cycles.len();
        let mut out = vec![Vec::new(); workers];
        for (i, b) in self.batches.iter().enumerate() {
            out[b.worker].push(i);
        }
        out
    }
}

/// Nearest-rank percentile of an ascending slice. Total over the
/// input: an empty slice reports `0` (the convention every
/// [`SimOutcome`] aggregate uses for degenerate serves — an all-shed
/// window has no latencies, and its percentile row must still be
/// defined). This *is* [`capsacc_telemetry::percentile`] — the serving
/// aggregates and the telemetry histogram summaries share one
/// nearest-rank convention, so a latency percentile reported here and
/// one exported by the metrics pipeline can never disagree.
///
/// # Panics
///
/// Panics if `pct` is outside `(0, 100]`.
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    capsacc_telemetry::percentile(sorted, pct)
}

/// Dispatches closed micro-batches onto `workers` workers.
///
/// `service(n)` gives the cycles a batch of `n` images occupies a
/// worker — batch cycle counts are data-independent (the array ticks by
/// shape, not value), so one number per batch size is exact.
///
/// # Panics
///
/// Panics if `workers` is zero or a batch references requests outside
/// `arrivals`.
pub fn dispatch_batches(
    arrivals: &[u64],
    batches: &[MicroBatch],
    workers: usize,
    service: &dyn Fn(usize) -> u64,
) -> SimOutcome {
    assert!(workers > 0, "at least one worker required");
    let mut free_at = vec![0u64; workers];
    let mut busy = vec![0u64; workers];
    let mut batch_stats = Vec::with_capacity(batches.len());
    let mut requests = Vec::with_capacity(arrivals.len());
    for (batch_idx, b) in batches.iter().enumerate() {
        assert!(b.first + b.len <= arrivals.len(), "batch outside trace");
        // Earliest-free worker, lowest id on ties: deterministic.
        let worker = (0..workers)
            .min_by_key(|&w| (free_at[w], w))
            .expect("at least one worker");
        let start = b.close_cycle.max(free_at[worker]);
        let cycles = service(b.len);
        let end = start + cycles;
        free_at[worker] = end;
        busy[worker] += cycles;
        batch_stats.push(BatchStat {
            worker,
            len: b.len,
            close_cycle: b.close_cycle,
            start_cycle: start,
            end_cycle: end,
        });
        for (slot, req) in b.requests().enumerate() {
            requests.push(RequestStat {
                arrival: arrivals[req],
                dispatch: start,
                completion: end,
                worker,
                batch: batch_idx,
                slot,
            });
        }
    }
    let makespan_cycles = batch_stats.iter().map(|b| b.end_cycle).max().unwrap_or(0);
    SimOutcome {
        requests,
        batches: batch_stats,
        worker_busy_cycles: busy,
        makespan_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{form_batches, BatcherConfig};
    use proptest::prelude::*;

    fn flat_service(n: usize) -> u64 {
        100 + 10 * n as u64
    }

    #[test]
    fn empty_outcome_aggregates_are_total() {
        // An idle serving window is a legal outcome: every aggregate
        // view reports zeros instead of panicking.
        let out = dispatch_batches(&[], &[], 2, &flat_service);
        assert_eq!(out.latency_percentiles(), [0, 0, 0]);
        assert_eq!(out.throughput_per_cycle(), 0.0);
        assert_eq!(out.mean_batch_len(), 0.0);
        assert_eq!(out.utilization(0), 0.0);
        assert_eq!(out.makespan_cycles, 0);
    }

    #[test]
    fn empty_percentile_and_out_of_range_worker_are_total() {
        // The all-shed admission case: a serve window that admitted
        // nothing still has defined statistics everywhere.
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[], 99.0), 0);
        let out = dispatch_batches(&[], &[], 1, &flat_service);
        assert_eq!(out.utilization(7), 0.0, "beyond-pool worker index");
        assert_eq!(out.goodput_within(100), 0.0);
        assert_eq!(out.attainment_within(100), 1.0);
        assert!(out.assignments().iter().all(Vec::is_empty));
    }

    #[test]
    fn one_request_outcome_is_fully_defined() {
        // Smallest non-degenerate serve: one request, one batch.
        let arrivals = [3u64];
        let batches = form_batches(
            &arrivals,
            &BatcherConfig {
                max_batch: 4,
                max_wait_cycles: 0,
            },
        );
        let out = dispatch_batches(&arrivals, &batches, 2, &flat_service);
        assert_eq!(out.requests.len(), 1);
        let lat = out.requests[0].latency_cycles();
        assert_eq!(out.latency_percentiles(), [lat; 3]);
        assert_eq!(out.mean_batch_len(), 1.0);
        assert!(out.throughput_per_cycle() > 0.0);
        assert!(out.utilization(0) > 0.0 && out.utilization(0) <= 1.0);
        assert_eq!(out.utilization(1), 0.0);
        assert!(out.utilization(0).is_finite());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn lone_batch_runs_immediately_on_worker_zero() {
        let arrivals = [5u64, 6];
        let batches = form_batches(
            &arrivals,
            &BatcherConfig {
                max_batch: 2,
                max_wait_cycles: 10,
            },
        );
        let out = dispatch_batches(&arrivals, &batches, 3, &flat_service);
        assert_eq!(out.batches.len(), 1);
        let b = out.batches[0];
        assert_eq!((b.worker, b.start_cycle, b.end_cycle), (0, 6, 6 + 120));
        // First request waited for its co-batched successor.
        assert_eq!(out.requests[0].queue_wait_cycles(), 1);
        assert_eq!(out.requests[1].queue_wait_cycles(), 0);
        assert_eq!(out.makespan_cycles, 126);
        assert_eq!(out.worker_busy_cycles, vec![120, 0, 0]);
    }

    #[test]
    fn saturated_pool_spreads_batches_round_robin_like() {
        // 4 same-cycle batches, 2 workers: 2 batches per worker chain.
        let arrivals = [0u64, 0, 0, 0];
        let batches = form_batches(
            &arrivals,
            &BatcherConfig {
                max_batch: 1,
                max_wait_cycles: 0,
            },
        );
        let out = dispatch_batches(&arrivals, &batches, 2, &flat_service);
        let workers: Vec<usize> = out.batches.iter().map(|b| b.worker).collect();
        assert_eq!(workers, vec![0, 1, 0, 1]);
        assert_eq!(out.makespan_cycles, 220);
        assert_eq!(out.assignments(), vec![vec![0, 2], vec![1, 3]]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Conservation and monotonicity: every request completes after
        /// it arrives, batches never overlap on one worker, more
        /// workers never lengthen the makespan, and the whole outcome
        /// is deterministic.
        #[test]
        fn dispatch_invariants(
            gaps in proptest::collection::vec(0u64..200, 1..80),
            max_batch in 1usize..6,
            max_wait in 0u64..400,
            workers in 1usize..5,
            base in 1u64..5000,
        ) {
            let mut t = 0u64;
            let arrivals: Vec<u64> = gaps.iter().map(|&g| { t += g; t }).collect();
            let batches = form_batches(
                &arrivals,
                &BatcherConfig { max_batch, max_wait_cycles: max_wait },
            );
            let service = move |n: usize| base + 17 * n as u64;
            let out = dispatch_batches(&arrivals, &batches, workers, &service);
            prop_assert_eq!(out.requests.len(), arrivals.len());
            for r in &out.requests {
                prop_assert!(r.dispatch >= r.arrival);
                prop_assert!(r.completion > r.dispatch);
                prop_assert_eq!(
                    r.latency_cycles(),
                    r.queue_wait_cycles() + r.service_cycles()
                );
            }
            // Per-worker batch timelines never overlap.
            for w in 0..workers {
                let mut last_end = 0u64;
                for b in out.batches.iter().filter(|b| b.worker == w) {
                    prop_assert!(b.start_cycle >= last_end);
                    prop_assert!(b.start_cycle >= b.close_cycle);
                    last_end = b.end_cycle;
                }
            }
            // Determinism: bit-identical on rerun.
            prop_assert_eq!(
                &out,
                &dispatch_batches(&arrivals, &batches, workers, &service)
            );
            // Weak scaling: an extra worker never hurts the makespan.
            let more = dispatch_batches(&arrivals, &batches, workers + 1, &service);
            prop_assert!(more.makespan_cycles <= out.makespan_cycles);
        }
    }
}
