//! # capsacc-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p capsacc-bench --bin exp_<id>`), plus Criterion
//! microbenchmarks of the library itself (`cargo bench`). See
//! EXPERIMENTS.md at the workspace root for the paper-vs-measured
//! record.
//!
//! This library holds the shared harness utilities: fixed-width table
//! printing, time formatting, the speedup labelling used by the
//! Fig. 16/17 comparisons, and the [`BenchJson`] renderer behind every
//! committed BENCH_*.json artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;

use capsacc_tensor::u64_from;

pub use json::{json_row, BenchJson};

/// MAC operations of one full inference: the two convolutions, the
/// ClassCaps FC, and the routing Sum/Update sweeps (`Σ c·û` per
/// iteration, `û·v` per non-final iteration). Shared by the
/// energy-reporting experiment binaries so their accounting cannot
/// drift apart.
///
/// # Example
///
/// ```
/// use capsacc_capsnet::CapsNetConfig;
/// let macs = capsacc_bench::inference_macs(&CapsNetConfig::mnist());
/// assert!(macs > 100_000_000);
/// ```
pub fn inference_macs(net: &capsacc_capsnet::CapsNetConfig) -> u64 {
    let routing = u64_from(net.num_primary_caps() * net.num_classes * net.class_caps_dim);
    net.conv1_geometry().macs()
        + net.primary_caps_geometry().macs()
        + routing * (u64_from(net.pc_caps_dim) + 2 * u64_from(net.routing_iterations) - 1)
}

/// Prints a fixed-width ASCII table with a title line.
///
/// # Example
///
/// ```
/// capsacc_bench::print_table(
///     "Demo",
///     &["layer", "time"],
///     &[vec!["Conv1".into(), "1.0 ms".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    println!("\n== {title} ==");
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!("{line}");
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a microsecond value with a sensible unit.
///
/// ```
/// assert_eq!(capsacc_bench::fmt_us(0.5), "0.500 µs");
/// assert_eq!(capsacc_bench::fmt_us(1500.0), "1.500 ms");
/// ```
pub fn fmt_us(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.3} ms", us / 1000.0)
    } else {
        format!("{us:.3} µs")
    }
}

/// Produces the paper-style comparison label for a GPU-vs-CapsAcc pair:
/// multiples when CapsAcc wins, percentage when it loses (matching the
/// annotations of Figs. 16–17, e.g. "12x faster", "46% slower").
///
/// ```
/// assert_eq!(capsacc_bench::speedup_label(1200.0, 100.0), "12.0x faster");
/// assert_eq!(capsacc_bench::speedup_label(100.0, 146.0), "46% slower");
/// ```
pub fn speedup_label(gpu_us: f64, capsacc_us: f64) -> String {
    if capsacc_us <= 0.0 || gpu_us <= 0.0 {
        return "n/a".to_owned();
    }
    if gpu_us >= capsacc_us {
        format!("{:.1}x faster", gpu_us / capsacc_us)
    } else {
        format!("{:.0}% slower", (capsacc_us / gpu_us - 1.0) * 100.0)
    }
}

/// Renders a crude log-scale ASCII bar for a value, for figure-style
/// output (the paper plots Figs. 8/9/16/17 on log axes).
///
/// ```
/// let bar = capsacc_bench::log_bar(1000.0, 10_000.0, 30);
/// assert!(!bar.is_empty());
/// ```
pub fn log_bar(value_us: f64, max_us: f64, width: usize) -> String {
    if value_us <= 0.0 || max_us <= 0.0 {
        return String::new();
    }
    // Map [1, max] logarithmically onto [1, width].
    let lv = value_us.max(1.0).log10();
    let lm = max_us.max(10.0).log10();
    // lint:allow(cast-audit, bar width is rounded from a small positive f64; the cast back to a count is lossless)
    let n = ((lv / lm) * width as f64).round().max(1.0) as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_labels_match_paper_style() {
        assert_eq!(speedup_label(600.0, 100.0), "6.0x faster");
        assert_eq!(speedup_label(100.0, 100.0), "1.0x faster");
        assert_eq!(speedup_label(100.0, 146.0), "46% slower");
        assert_eq!(speedup_label(0.0, 1.0), "n/a");
    }

    #[test]
    fn fmt_us_units() {
        assert_eq!(fmt_us(12.3456), "12.346 µs");
        assert_eq!(fmt_us(12345.6), "12.346 ms");
    }

    #[test]
    fn log_bar_monotone() {
        let small = log_bar(10.0, 10_000.0, 40).len();
        let big = log_bar(10_000.0, 10_000.0, 40).len();
        assert!(big >= small);
        assert!(big <= 40);
    }

    #[test]
    fn print_table_smoke() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
