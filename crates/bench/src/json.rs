//! Shared BENCH_*.json rendering.
//!
//! Every experiment binary that commits a JSON artifact renders it
//! through [`BenchJson`], so the on-disk convention is defined once:
//! top-level fields at 2-space indent in insertion order, row arrays
//! with one compact object per line at 4-space indent, and a trailing
//! newline. CI byte-diffs these files across runs — the renderer
//! having a single implementation is what keeps four binaries'
//! hand-rolled writers from drifting apart.
//!
//! Numeric formatting stays with the caller: each experiment owns its
//! precision conventions (`{:.1}` cycles, `{:.4}` rates, `{:016x}`
//! digests), so values arrive here as pre-rendered JSON fragments.

use std::fmt::Display;
use std::fs;
use std::path::Path;

/// Builder for one BENCH_*.json document.
///
/// # Example
///
/// ```
/// use capsacc_bench::{json_row, BenchJson};
/// let mut j = BenchJson::new("exp_demo");
/// j.str_field("net", "mnist");
/// j.field("batch", 16);
/// j.rows(
///     "rows",
///     vec![json_row(&[("n", "1".into()), ("cycles", "2.5".into())])],
/// );
/// assert_eq!(
///     j.render(),
///     "{\n  \"bench\": \"exp_demo\",\n  \"net\": \"mnist\",\n  \"batch\": 16,\n  \
///      \"rows\": [\n    {\"n\": 1, \"cycles\": 2.5}\n  ]\n}\n"
/// );
/// ```
pub struct BenchJson {
    fields: Vec<(String, String)>,
}

impl BenchJson {
    /// A document whose first field is `"bench": "<name>"`.
    pub fn new(bench: &str) -> Self {
        let mut j = Self { fields: Vec::new() };
        j.str_field("bench", bench);
        j
    }

    /// Appends a field whose value renders via `Display` as a bare
    /// JSON token (numbers, booleans).
    pub fn field(&mut self, key: &str, value: impl Display) {
        self.raw(key, value.to_string());
    }

    /// Appends a string-valued field (quoted; the value must not need
    /// escaping — BENCH files only carry identifier-like strings).
    pub fn str_field(&mut self, key: &str, value: &str) {
        debug_assert!(
            !value.contains(['"', '\\']) && value.bytes().all(|b| b >= 0x20),
            "BenchJson string values must not need escaping"
        );
        self.raw(key, format!("\"{value}\""));
    }

    /// Appends a field from a pre-rendered JSON fragment (an inline
    /// array, a one-line object, a formatted float).
    pub fn raw(&mut self, key: &str, value: impl Into<String>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// Appends an array field with one compact row object per line at
    /// 4-space indent — the BENCH sweep-table convention. Build each
    /// row with [`json_row`].
    pub fn rows(&mut self, key: &str, rows: Vec<String>) {
        let mut v = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            v.push_str("    ");
            v.push_str(row);
            v.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        v.push_str("  ]");
        self.raw(key, v);
    }

    /// Renders the document: fields in insertion order at 2-space
    /// indent, trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(k);
            out.push_str("\": ");
            out.push_str(v);
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// Renders and writes to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        fs::write(path, self.render())
    }
}

/// One compact row object: `{"k": v, ...}` with values used verbatim
/// (callers format numbers to their own precision).
///
/// ```
/// let row = capsacc_bench::json_row(&[("a", "1".into()), ("b", "2.50".into())]);
/// assert_eq!(row, "{\"a\": 1, \"b\": 2.50}");
/// ```
pub fn json_row(pairs: &[(&str, String)]) -> String {
    let cells: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_bench_convention() {
        let mut j = BenchJson::new("exp_x");
        j.str_field("config", "paper_16x16_250MHz");
        j.field("batch", 16);
        j.raw("inline", "[1, 2, 3]");
        j.rows(
            "rows",
            vec![
                json_row(&[("n", "1".into())]),
                json_row(&[("n", "2".into())]),
            ],
        );
        let got = j.render();
        assert_eq!(
            got,
            "{\n  \"bench\": \"exp_x\",\n  \"config\": \"paper_16x16_250MHz\",\n  \
             \"batch\": 16,\n  \"inline\": [1, 2, 3],\n  \"rows\": [\n    {\"n\": 1},\n    \
             {\"n\": 2}\n  ]\n}\n"
        );
        assert!(got.ends_with("}\n"));
        // The rendered document is valid JSON by the telemetry parser.
        capsacc_telemetry::validate_json(&got).expect("valid JSON");
    }

    #[test]
    fn empty_rows_render_as_a_two_line_array() {
        let mut j = BenchJson::new("exp_x");
        j.rows("rows", Vec::new());
        assert_eq!(
            j.render(),
            "{\n  \"bench\": \"exp_x\",\n  \"rows\": [\n  ]\n}\n"
        );
    }
}
