//! Regenerates **Fig. 16** of the paper: layer-wise CapsAcc inference
//! time versus the GPU baseline, with the paper-style speedup
//! annotations (Conv1 6× faster, PrimaryCaps ≈46% slower, ClassCaps 12×
//! faster, overall 6× faster).

use capsacc_bench::{fmt_us, print_table, speedup_label};
use capsacc_capsnet::CapsNetConfig;
use capsacc_core::{timing, AcceleratorConfig};
use capsacc_gpu_model::GpuModel;

fn main() {
    let acc_cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let acc = timing::full_inference(&acc_cfg, &net);
    let gpu = GpuModel::gtx1070().layer_times_us(&net);

    let paper = ["6x faster", "46% slower", "12x faster", "6x faster"];
    let acc_rows = [
        ("Conv1", acc.conv1.cycles, gpu.conv1),
        ("PrimaryCaps", acc.primary_caps.cycles, gpu.primary_caps),
        ("ClassCaps", acc.class_caps_cycles(), gpu.class_caps),
        ("Total", acc.total_cycles(), gpu.total()),
    ];
    let rows: Vec<Vec<String>> = acc_rows
        .iter()
        .zip(paper)
        .map(|(&(name, cycles, gpu_us), paper_label)| {
            let acc_us = acc_cfg.cycles_to_us(cycles);
            vec![
                name.to_owned(),
                format!("{cycles}"),
                fmt_us(acc_us),
                fmt_us(gpu_us),
                speedup_label(gpu_us, acc_us),
                paper_label.to_owned(),
            ]
        })
        .collect();
    print_table(
        "Fig. 16 — CapsAcc vs GPU, layer-wise (16×16 array @ 250 MHz)",
        &[
            "Layer",
            "CapsAcc cycles",
            "CapsAcc",
            "GPU",
            "Measured",
            "Paper",
        ],
        &rows,
    );
    println!(
        "\nPrimaryCaps detail: compute {} cycles vs weight-stream {} cycles\n\
         (5.3 MB of weights for 36 output pixels — the layer where the GPU\n\
         keeps an edge, as in the paper).",
        acc.primary_caps.compute_cycles, acc.primary_caps.weight_stream_cycles
    );
}
