//! Regenerates **Fig. 9** of the paper: GPU time of each
//! routing-by-agreement step (the suffix is the routing iteration).

use capsacc_bench::{fmt_us, log_bar, print_table};
use capsacc_capsnet::CapsNetConfig;
use capsacc_gpu_model::GpuModel;

fn main() {
    let gpu = GpuModel::gtx1070();
    let net = CapsNetConfig::mnist();
    let steps = gpu.routing_steps_us(&net);
    let max = steps.iter().map(|s| s.time_us).fold(0.0, f64::max);
    let rows: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.label.clone(),
                fmt_us(s.time_us),
                log_bar(s.time_us, max, 40),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — GPU time per routing-by-agreement step (log-scale bars)",
        &["Step", "Time", ""],
        &rows,
    );

    let squash: f64 = steps
        .iter()
        .filter(|s| s.label.starts_with("Squash"))
        .map(|s| s.time_us)
        .sum();
    let total: f64 = steps.iter().map(|s| s.time_us).sum();
    println!(
        "\nShape check (paper Sec. III-B): squashing is the most\n\
         compute-intensive step — measured share of ClassCaps time: {:.0}%",
        100.0 * squash / total
    );
}
