//! Regenerates **Table I** and **Fig. 5** of the paper: per-layer input
//! sizes, trainable-parameter counts and output sizes of the MNIST
//! CapsuleNet, plus the parameter-distribution percentages.

use capsacc_bench::print_table;
use capsacc_capsnet::CapsNetConfig;

fn main() {
    let cfg = CapsNetConfig::mnist();
    let rows: Vec<Vec<String>> = cfg
        .table1()
        .iter()
        .map(|l| {
            vec![
                l.name.to_owned(),
                l.inputs.to_string(),
                l.parameters.to_string(),
                l.outputs.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I — Input size, trainable parameters, output size",
        &["Layer", "Inputs", "# parameters", "Outputs"],
        &rows,
    );
    println!(
        "\nNote: the paper prints 102400 for PrimaryCaps outputs; the geometric\n\
         value is 6·6·32·8 = 9216 (102400 is the Conv1 output count). See\n\
         EXPERIMENTS.md."
    );

    // Fig. 5: distribution of parameters (coupling coefficients included
    // in the pie as the paper does).
    let with_coupling = cfg.total_parameters() + cfg.coupling_coefficient_count();
    let pct = |n: usize| format!("{:.2}%", 100.0 * n as f64 / with_coupling as f64);
    print_table(
        "Fig. 5 — Distribution of parameters",
        &["Layer", "Share", "Paper"],
        &[
            vec!["Conv1".into(), pct(cfg.conv1_parameters()), "<1%".into()],
            vec![
                "PrimaryCaps".into(),
                pct(cfg.primary_caps_parameters()),
                "78%".into(),
            ],
            vec![
                "ClassCaps".into(),
                pct(cfg.class_caps_parameters()),
                "22%".into(),
            ],
            vec![
                "Coupling Coeff".into(),
                pct(cfg.coupling_coefficient_count()),
                "<1%".into(),
            ],
        ],
    );
    println!(
        "\nTotal trainable parameters: {} (8-bit weights fit the paper's 8 MB\n\
         on-chip memory: {} bytes ≤ {} bytes)",
        cfg.total_parameters(),
        cfg.total_parameters(),
        8 * 1024 * 1024
    );
}
