//! Mapping-order analysis (Sec. V-B / Fig. 14): quantifies the paper's
//! claim that computing "first the output features for the same output
//! channel" minimizes the accumulator size.

use capsacc_bench::print_table;
use capsacc_capsnet::CapsNetConfig;
use capsacc_core::{mapping, AcceleratorConfig};

fn main() {
    let net = CapsNetConfig::mnist();
    let cfg = AcceleratorConfig::paper();
    let mut rows = Vec::new();
    for (name, g) in [
        ("Conv1", net.conv1_geometry()),
        ("PrimaryCaps", net.primary_caps_geometry()),
    ] {
        let paper = mapping::analyze_conv(&g, mapping::LoopOrder::OutputChannelOuter, &cfg);
        let alt = mapping::analyze_conv(&g, mapping::LoopOrder::OutputChannelInner, &cfg);
        rows.push(vec![
            name.to_owned(),
            paper.peak_accumulator_entries.to_string(),
            alt.peak_accumulator_entries.to_string(),
            format!("{:.0}×", mapping::accumulator_saving(&g, &cfg)),
            format!("{} B", paper.accumulator_bytes),
            format!("{} B", alt.accumulator_bytes),
        ]);
    }
    print_table(
        "Fig. 14 mapping orders — accumulator FIFO requirements",
        &[
            "Layer",
            "Paper order (entries)",
            "Interleaved (entries)",
            "Saving",
            "Paper bytes",
            "Interleaved bytes",
        ],
        &rows,
    );
    println!(
        "\nSec. V-B: \"This mapping procedure allows us to minimize the\n\
         accumulator size, because our CapsAcc accelerator computes first the\n\
         output features for the same output channel.\" The interleaved\n\
         alternative would need one FIFO entry per in-flight output-channel\n\
         tile — 16× more storage on the 16×16 array."
    );
}
