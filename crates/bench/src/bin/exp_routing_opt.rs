//! Ablation of the paper's two data-reuse/algorithm optimizations
//! (Sec. V): skipping the first routing softmax, and reusing the
//! predictions `û` through the horizontal feedback path. Also ablates
//! the convolutional weight reuse and tile pipelining of Sec. IV-A.

use capsacc_bench::{fmt_us, print_table};
use capsacc_capsnet::infer_q8;
use capsacc_capsnet::{CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant};
use capsacc_core::{timing, Accelerator, AcceleratorConfig, MemoryKind};
use capsacc_tensor::Tensor;

fn classcaps_cycles(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> u64 {
    timing::routing_steps(net, cfg)
        .iter()
        .map(|s| s.cycles)
        .sum()
}

fn main() {
    let net = CapsNetConfig::mnist();
    let base = AcceleratorConfig::paper();

    // --- Ablation table: one dataflow switch off at a time.
    let mut rows = Vec::new();
    let mut push = |name: &str, cfg: AcceleratorConfig| {
        let total = timing::full_inference(&cfg, &net).total_cycles();
        let cc = classcaps_cycles(&cfg, &net);
        rows.push(vec![
            name.to_owned(),
            cc.to_string(),
            fmt_us(cfg.cycles_to_us(cc)),
            total.to_string(),
            fmt_us(cfg.cycles_to_us(total)),
        ]);
    };
    push("all optimizations (paper)", base);
    let mut c = base;
    c.dataflow.skip_first_softmax = false;
    push("no skip-first-softmax", c);
    let mut c = base;
    c.dataflow.routing_feedback = false;
    push("no routing feedback reuse", c);
    let mut c = base;
    c.dataflow.pipelined_tiles = false;
    push("no tile pipelining", c);
    let mut c = base;
    c.dataflow.weight_reuse = false;
    push("no conv weight reuse", c);
    print_table(
        "Sec. V ablations — ClassCaps and total inference cycles",
        &[
            "Configuration",
            "ClassCaps cyc",
            "ClassCaps",
            "Total cyc",
            "Total",
        ],
        &rows,
    );

    // --- Functional equivalence of the softmax-skip optimization, in
    // fixed point, on a real (tiny) inference.
    let tiny = CapsNetConfig::tiny();
    let ncfg = base.numeric;
    let qparams = CapsNetParams::generate(&tiny, 99).quantize(ncfg);
    let pipe = QuantPipeline::new(ncfg);
    let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * i[2]) % 7) as f32 / 7.0);
    let original = infer_q8(&tiny, &qparams, &pipe, &image, RoutingVariant::Original);
    let optimized = infer_q8(
        &tiny,
        &qparams,
        &pipe,
        &image,
        RoutingVariant::SkipFirstSoftmax,
    );
    println!(
        "\nSkip-first-softmax functional equivalence (bit-exact): {}",
        if original.class_caps == optimized.class_caps && original.couplings == optimized.couplings
        {
            "PASS — identical class capsules and couplings"
        } else {
            "FAIL"
        }
    );

    // --- Data Memory traffic with and without the feedback path, from
    // the cycle-accurate engine on the tiny network.
    let mut on_cfg = AcceleratorConfig::test_4x4();
    on_cfg.dataflow.routing_feedback = true;
    let mut off_cfg = on_cfg;
    off_cfg.dataflow.routing_feedback = false;
    let mut acc_on = Accelerator::new(on_cfg);
    let run_on = acc_on.run_inference(&tiny, &qparams, &image);
    let mut acc_off = Accelerator::new(off_cfg);
    let run_off = acc_off.run_inference(&tiny, &qparams, &image);
    let dm_on = run_on.traffic.counter(MemoryKind::DataMemory).read_bytes;
    let dm_off = run_off.traffic.counter(MemoryKind::DataMemory).read_bytes;
    println!(
        "Routing feedback reuse (cycle-accurate engine, tiny network):\n\
         Data Memory reads with feedback: {dm_on} B, without: {dm_off} B\n\
         → the feedback path eliminates {} B of on-chip memory re-reads",
        dm_off - dm_on
    );
}
