//! Multi-worker serving sweeps (beyond the paper) at the paper 16×16
//! configuration, with batch service times supplied two ways: the
//! closed-form cycle model, and the **measured engine**
//! ([`engine_service_cycles_table`] over the parallel+SIMD functional
//! backend — real `BatchRun` cycles per batch size, practical at MNIST
//! scale only because the functional backend runs at wall-clock
//! speed).
//!
//! Two sweeps, each run on both service tables:
//!
//! 1. **saturating** — the PR-4 offline pipeline under saturating
//!    load: throughput/latency/utilization across workers × batcher
//!    policies;
//! 2. **overload-and-recovery** — the online runtime against a flash
//!    crowd (Spike regime): admission queue bounds × autoscaling, with
//!    goodput, shed rate and per-class SLO attainment columns, plus a
//!    million-request diurnal scale point.
//!
//! The engine table is *not* the closed-form table: the ticked array
//! charges scheduling overheads the analytical model folds away, so
//! the engine-backed sections record the serving behavior of the
//! machine as built, not as modeled. Both are emitted side by side.
//!
//! Asserts serving invariants on every run:
//!
//! 1. **worker scaling** — under saturating load, 4 workers deliver at
//!    least 3× the aggregate throughput of 1 worker at fixed
//!    `max_batch`;
//! 2. **offline anchor** — the online runtime with overload features
//!    disabled reproduces the offline sweep's outcome bit-exactly;
//! 3. **overload behavior** — the flash crowd forces a positive shed
//!    rate on the bounded queue, and the served fraction of post-spike
//!    arrivals recovers to ≥ 95% of the pre-spike level;
//! 4. **determinism** — rerunning every sweep produces byte-identical
//!    reports and event digests (virtual time only, no wall clock).
//!
//! Plus a cycle-accurate validation at the tiny scale: requests served
//! through real OS-thread `BatchScheduler` workers produce traces
//! bit-exact against fresh sequential runs.
//!
//! Emits `BENCH_serve.json` into the current directory so CI records
//! the serving-perf trajectory (see `ci.sh`).

use std::fs;

use capsacc_bench::{json_row, print_table, BenchJson};
use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{Accelerator, AcceleratorConfig, EngineBackend, TraceLevel};
use capsacc_serve::{
    arrival_trace, engine_service_cycles_table, run_runtime, service_cycles_table, simulate_serve,
    simulate_serve_with_table, workload_trace, ArrivalRegime, AutoscalerConfig, BatcherConfig,
    ClassConfig, Request, ResilienceConfig, RuntimeConfig, RuntimeOutcome, ScalingEvent,
    ServeConfig, SimOutcome, TraceConfig, WorkloadConfig,
};
use capsacc_tensor::{u64_from, Tensor};

/// One measured point of the saturating sweep.
struct Row {
    workers: usize,
    max_batch: usize,
    max_wait_cycles: u64,
    throughput_img_s: f64,
    p50_cycles: u64,
    p95_cycles: u64,
    p99_cycles: u64,
    mean_batch: f64,
    mean_utilization: f64,
}

/// One measured point of the overload sweep.
struct OverloadRow {
    queue_capacity: usize,
    autoscale: bool,
    served: usize,
    shed_rate: f64,
    goodput_img_s: f64,
    attainment_standard: f64,
    attainment_premium: f64,
    peak_workers: usize,
    event_digest: u64,
}

/// A saturating trace: ~1 request per 500 cycles of virtual time —
/// orders of magnitude beyond one worker's MNIST capacity, so the
/// worker-scaling headline is load-bound, not arrival-bound.
fn trace() -> TraceConfig {
    TraceConfig {
        seed: 7,
        requests: 512,
        mean_gap_cycles: 2_000.0,
        mean_burst: 4.0,
    }
}

/// The largest `max_batch` any sweep point uses — both service tables
/// are built once up to this size and shared across the whole sweep.
const SWEEP_MAX_BATCH: usize = 32;

fn sweep(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> Vec<Row> {
    let table = service_cycles_table(cfg, net, SWEEP_MAX_BATCH);
    sweep_with(&table, cfg.clock_mhz as f64 * 1e6)
}

/// The saturating sweep against an arbitrary `service(n)` table —
/// closed-form or engine-measured; the pipeline does not care where
/// the cycle numbers came from.
fn sweep_with(table: &[u64], clock_hz: f64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &max_batch in &[4usize, 16, 32] {
        for &max_wait_cycles in &[10_000u64, 1_000_000] {
            for &workers in &[1usize, 2, 4, 8] {
                let serve = ServeConfig {
                    workers,
                    batcher: BatcherConfig {
                        max_batch,
                        max_wait_cycles,
                    },
                    trace: trace(),
                };
                let out: SimOutcome = simulate_serve_with_table(&serve, table);
                let [p50, p95, p99] = out.latency_percentiles();
                let mean_utilization =
                    (0..workers).map(|w| out.utilization(w)).sum::<f64>() / workers as f64;
                rows.push(Row {
                    workers,
                    max_batch,
                    max_wait_cycles,
                    throughput_img_s: out.throughput_per_cycle() * clock_hz,
                    p50_cycles: p50,
                    p95_cycles: p95,
                    p99_cycles: p99,
                    mean_batch: out.mean_batch_len(),
                    mean_utilization,
                });
            }
        }
    }
    rows
}

/// The overload workload: comfortable base traffic with a flash crowd
/// sized off the service table, so the spike overloads the base pool
/// by ~8× regardless of how the cycle model evolves.
fn overload_workload(per_request_cycles: u64, service_1: u64) -> (WorkloadConfig, u64, u64) {
    // Two base workers: base traffic at 1/3 of their joint capacity,
    // spike at ~8/3 of it.
    let base_gap = (3 * per_request_cycles / 2) as f64;
    let spike_gap = (per_request_cycles / 4).max(1) as f64;
    let spike_start = 200 * per_request_cycles;
    let spike_cycles = 300 * per_request_cycles;
    let cfg = WorkloadConfig {
        seed: 23,
        requests: 2_000,
        regime: ArrivalRegime::Spike {
            base_gap_cycles: base_gap,
            spike_start_cycle: spike_start,
            spike_cycles,
            spike_gap_cycles: spike_gap,
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: None,
            },
            // "standard": generous latency budget.
            ClassConfig {
                weight: 2,
                slo_cycles: Some(30 * service_1),
            },
            // "premium": tight but feasible budget, shed last.
            ClassConfig {
                weight: 1,
                slo_cycles: Some(6 * service_1),
            },
        ],
    };
    (cfg, spike_start, spike_start + spike_cycles)
}

fn overload_runtime(queue_capacity: usize, autoscale: bool) -> RuntimeConfig {
    RuntimeConfig {
        workers: 2,
        batcher: BatcherConfig {
            max_batch: 16,
            max_wait_cycles: 20_000,
        },
        queue_capacity: Some(queue_capacity),
        deadline_aware: true,
        autoscaler: autoscale.then_some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 6,
            scale_up_queue_per_worker: 8,
            scale_down_idle_cycles: 200_000,
            eval_period_cycles: 50_000,
        }),
        record_events: false,
        resilience: ResilienceConfig::none(),
    }
}

fn overload_sweep(
    requests: &[Request],
    service: &dyn Fn(usize) -> u64,
    warmup: u64,
    clock_hz: f64,
) -> Vec<OverloadRow> {
    let mut rows = Vec::new();
    for &queue_capacity in &[16usize, 64, 256] {
        for &autoscale in &[false, true] {
            let out = run_runtime(
                &overload_runtime(queue_capacity, autoscale),
                requests,
                service,
                warmup,
            );
            // Peak concurrently-active pool size, replayed from the
            // in-order scaling record.
            let mut active = 2usize;
            let mut peak_workers = active;
            for s in &out.scaling {
                match s {
                    ScalingEvent::Up { .. } => active += 1,
                    ScalingEvent::Down { .. } => active -= 1,
                }
                peak_workers = peak_workers.max(active);
            }
            rows.push(OverloadRow {
                queue_capacity,
                autoscale,
                served: out.served.len(),
                shed_rate: out.shed_rate(),
                goodput_img_s: out.goodput_per_cycle() * clock_hz,
                attainment_standard: out.slo_attainment(1),
                attainment_premium: out.slo_attainment(2),
                peak_workers,
                event_digest: out.event_digest,
            });
        }
    }
    rows
}

/// Served fraction of the requests arriving in `[from, to)` — the
/// windowed goodput the recovery assertion compares across the spike.
fn served_fraction(requests: &[Request], out: &RuntimeOutcome, from: u64, to: u64) -> f64 {
    let mut offered = 0usize;
    let mut served = 0usize;
    let mut served_flags = vec![false; requests.len()];
    for &r in &out.served {
        served_flags[r] = true;
    }
    for (i, r) in requests.iter().enumerate() {
        if r.arrival >= from && r.arrival < to {
            offered += 1;
            if served_flags[i] {
                served += 1;
            }
        }
    }
    if offered == 0 {
        return 1.0;
    }
    served as f64 / offered as f64
}

fn sweep_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            json_row(&[
                ("workers", r.workers.to_string()),
                ("max_batch", r.max_batch.to_string()),
                ("max_wait_cycles", r.max_wait_cycles.to_string()),
                ("throughput_img_s", format!("{:.1}", r.throughput_img_s)),
                ("p50_cycles", r.p50_cycles.to_string()),
                ("p95_cycles", r.p95_cycles.to_string()),
                ("p99_cycles", r.p99_cycles.to_string()),
                ("mean_batch", format!("{:.2}", r.mean_batch)),
                ("utilization", format!("{:.3}", r.mean_utilization)),
            ])
        })
        .collect()
}

fn overload_rows(rows: &[OverloadRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            json_row(&[
                ("queue_capacity", r.queue_capacity.to_string()),
                ("autoscale", r.autoscale.to_string()),
                ("served", r.served.to_string()),
                ("shed_rate", format!("{:.4}", r.shed_rate)),
                ("goodput_img_s", format!("{:.1}", r.goodput_img_s)),
                (
                    "slo_attainment_standard",
                    format!("{:.4}", r.attainment_standard),
                ),
                (
                    "slo_attainment_premium",
                    format!("{:.4}", r.attainment_premium),
                ),
                ("peak_workers", r.peak_workers.to_string()),
                ("event_digest", format!("\"{:016x}\"", r.event_digest)),
            ])
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[Row],
    overload: &[OverloadRow],
    engine_table: &[u64],
    engine_rows: &[Row],
    engine_overload: &[OverloadRow],
    recovery: (f64, f64),
    million: &RuntimeOutcome,
) -> String {
    let t = trace();
    let mut j = BenchJson::new("exp_serve");
    j.str_field("config", "paper_16x16_250MHz");
    j.str_field("net", "mnist");
    j.raw(
        "trace",
        format!(
            "{{\"seed\": {}, \"requests\": {}, \"mean_gap_cycles\": {}, \"mean_burst\": {}}}",
            t.seed, t.requests, t.mean_gap_cycles, t.mean_burst,
        ),
    );
    j.rows("saturating_sweep", sweep_rows(rows));
    j.rows("overload_sweep", overload_rows(overload));
    // Engine-backed sections: same pipelines, service(n) measured from
    // real functional-backend BatchRuns instead of the closed form.
    let cycles: Vec<String> = engine_table.iter().map(u64::to_string).collect();
    j.raw("engine_service_cycles", format!("[{}]", cycles.join(", ")));
    j.rows("engine_saturating_sweep", sweep_rows(engine_rows));
    j.rows("engine_overload_sweep", overload_rows(engine_overload));
    j.raw(
        "recovery",
        format!(
            "{{\"pre_spike_served_fraction\": {:.4}, \"post_spike_served_fraction\": {:.4}}}",
            recovery.0, recovery.1,
        ),
    );
    j.raw(
        "million_request_diurnal",
        format!(
            "{{\"requests\": {}, \"served\": {}, \"shed_rate\": {:.4}, \
             \"makespan_cycles\": {}, \"event_digest\": \"{:016x}\"}}",
            million.total_requests,
            million.served.len(),
            million.shed_rate(),
            million.sim.makespan_cycles,
            million.event_digest,
        ),
    );
    j.render()
}

/// Cycle-accurate validation: tiny-scale requests served through real
/// OS-thread workers must be bit-exact against sequential runs.
fn engine_validation() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    // The canonical deterministic test image — keep in sync with
    // `tests/common/mod.rs::image_for` (separate crate, cannot import).
    let image = |s: usize| {
        Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
            ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
        })
    };
    let serve = ServeConfig {
        workers: 3,
        batcher: BatcherConfig {
            max_batch: 4,
            max_wait_cycles: 20_000,
        },
        trace: TraceConfig {
            seed: 5,
            requests: 12,
            mean_gap_cycles: 2_500.0,
            mean_burst: 2.0,
        },
    };
    let (outcome, traces) = capsacc_serve::serve_with_engine(&cfg, &net, &qparams, &serve, &image)
        .expect("valid serve");
    assert_eq!(traces.len(), 12);
    for (r, trace) in traces.iter().enumerate() {
        let mut acc = Accelerator::new(cfg);
        let single = acc.run_inference(&net, &qparams, &image(r));
        assert_eq!(
            &single.trace, trace,
            "shard-pool trace diverged from sequential engine for request {r}"
        );
    }
    println!(
        "Engine validation: 12 requests, {} batches over 3 OS-thread workers — \
         every trace bit-exact vs the sequential engine",
        outcome.batches.len()
    );
}

/// Invariant 1: ≥ 3× throughput at 4 workers vs 1, per (batch, wait) —
/// must hold whichever service table supplied the cycle numbers.
fn assert_worker_scaling(rows: &[Row], label: &str) {
    for &max_batch in &[4usize, 16, 32] {
        for &max_wait in &[10_000u64, 1_000_000] {
            let at = |workers: usize| {
                rows.iter()
                    .find(|r| {
                        r.workers == workers
                            && r.max_batch == max_batch
                            && r.max_wait_cycles == max_wait
                    })
                    .expect("swept point")
                    .throughput_img_s
            };
            let (t1, t4) = (at(1), at(4));
            assert!(
                t4 >= 3.0 * t1,
                "worker scaling regressed ({label}) at max_batch {max_batch}, wait {max_wait}: \
                 {t4:.0} img/s at 4 workers vs {t1:.0} at 1"
            );
        }
    }
}

fn print_sweep(cfg: &AcceleratorConfig, rows: &[Row], title: &str) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.max_batch.to_string(),
                r.max_wait_cycles.to_string(),
                format!("{:.0}", r.throughput_img_s),
                format!("{:.2}", cfg.cycles_to_us(r.p50_cycles) / 1000.0),
                format!("{:.2}", cfg.cycles_to_us(r.p95_cycles) / 1000.0),
                format!("{:.2}", cfg.cycles_to_us(r.p99_cycles) / 1000.0),
                format!("{:.1}", r.mean_batch),
                format!("{:.0}%", r.mean_utilization * 100.0),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "Workers",
            "MaxBatch",
            "MaxWait cy",
            "Img/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "Batch",
            "Util",
        ],
        &table,
    );
}

fn main() {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let clock_hz = cfg.clock_mhz as f64 * 1e6;

    let rows = sweep(&cfg, &net);
    print_sweep(
        &cfg,
        &rows,
        "Serving sweep — MNIST requests on the 16×16 paper config (virtual time)",
    );
    assert_worker_scaling(&rows, "closed-form");
    println!("\nWorker scaling: ≥ 3x aggregate throughput at 4 workers vs 1 (all points)");

    // The engine-backed service table: real BatchRun cycles per batch
    // size, measured through the parallel+SIMD functional backend —
    // 528 MNIST inferences, practical only at wall-clock speed. The
    // ticked array charges scheduling overheads the closed form folds
    // away, so these cycles are strictly the machine's own.
    let mut engine_cfg = cfg;
    engine_cfg.backend = EngineBackend::Functional;
    engine_cfg.trace_level = TraceLevel::Outputs;
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let etable = engine_service_cycles_table(&engine_cfg, &net, &qparams, SWEEP_MAX_BATCH);
    for n in 1..etable.len() {
        assert!(
            etable[n] > etable[n - 1],
            "service cycles must grow with batch size"
        );
    }
    for n in 2..etable.len() {
        assert!(
            etable[n] < u64_from(n) * etable[1],
            "batched service must amortize: {} vs {n}x{}",
            etable[n],
            etable[1]
        );
    }
    let erows = sweep_with(&etable, clock_hz);
    print_sweep(
        &cfg,
        &erows,
        "Serving sweep — engine service table (measured functional-backend BatchRuns)",
    );
    assert_worker_scaling(&erows, "engine-table");
    println!(
        "\nEngine table: b1 {} cycles vs closed-form {} — sweep re-run on measured engine \
         cycles; worker scaling ≥ 3x holds there too",
        etable[1],
        service_cycles_table(&cfg, &net, 1)[1],
    );

    // Invariant 2: offline anchor — the online runtime with overload
    // features disabled reproduces the offline pipeline bit-exactly on
    // the saturating trace, at the paper design point.
    let batcher = BatcherConfig {
        max_batch: 16,
        max_wait_cycles: 10_000,
    };
    let table16 = service_cycles_table(&cfg, &net, batcher.max_batch);
    let arrivals = arrival_trace(&trace());
    let anchor_requests: Vec<Request> = arrivals.iter().map(|&a| Request::best_effort(a)).collect();
    let anchored = RuntimeConfig {
        workers: 4,
        batcher,
        queue_capacity: None,
        deadline_aware: false,
        autoscaler: None,
        record_events: false,
        resilience: ResilienceConfig::none(),
    };
    let online = run_runtime(&anchored, &anchor_requests, &|n| table16[n], 0);
    let offline = simulate_serve(
        &cfg,
        &net,
        &ServeConfig {
            workers: 4,
            batcher,
            trace: trace(),
        },
    );
    assert_eq!(
        online.sim, offline,
        "online runtime diverged from the offline pipeline under anchor settings"
    );
    println!("Offline anchor: online runtime ≡ offline pipeline (bit-exact SimOutcome)");

    // The overload-and-recovery sweep: flash crowd sized off the
    // service table, bounded queues, priorities, optional autoscaling.
    let per_request = table16[16] / 16;
    let warmup = capsacc_serve::worker_warmup_cycles(&cfg, &net);
    let (workload, spike_start, spike_end) = overload_workload(per_request, table16[1]);
    let requests = workload_trace(&workload);
    let service = |n: usize| table16[n];
    let orows = overload_sweep(&requests, &service, warmup, clock_hz);
    let otable: Vec<Vec<String>> = orows
        .iter()
        .map(|r| {
            vec![
                r.queue_capacity.to_string(),
                if r.autoscale { "on" } else { "off" }.to_string(),
                r.served.to_string(),
                format!("{:.1}%", r.shed_rate * 100.0),
                format!("{:.0}", r.goodput_img_s),
                format!("{:.1}%", r.attainment_standard * 100.0),
                format!("{:.1}%", r.attainment_premium * 100.0),
                r.peak_workers.to_string(),
            ]
        })
        .collect();
    print_table(
        "Overload sweep — flash crowd (8x base rate), online runtime",
        &[
            "QueueCap",
            "Autoscale",
            "Served",
            "Shed",
            "Goodput img/s",
            "SLO std",
            "SLO prem",
            "Workers",
        ],
        &otable,
    );

    // Invariant 3a: the bounded queue actually sheds under the spike.
    let tight = orows
        .iter()
        .find(|r| r.queue_capacity == 16 && !r.autoscale)
        .expect("swept point");
    assert!(
        tight.shed_rate > 0.0,
        "flash crowd failed to overload the bounded queue"
    );
    // Autoscaling at the same bound serves at least as much.
    let tight_scaled = orows
        .iter()
        .find(|r| r.queue_capacity == 16 && r.autoscale)
        .expect("swept point");
    assert!(
        tight_scaled.served >= tight.served,
        "autoscaling must not serve less than the fixed pool"
    );

    // Invariant 3b: recovery — the served fraction of post-spike
    // arrivals returns to ≥ 95% of the pre-spike level.
    let recovery_out = run_runtime(&overload_runtime(16, false), &requests, &service, warmup);
    let pre = served_fraction(&requests, &recovery_out, 0, spike_start);
    // Skip one queue-drain's worth of tail after the spike ends.
    let drain_margin = 16 * per_request;
    let post = served_fraction(&requests, &recovery_out, spike_end + drain_margin, u64::MAX);
    assert!(
        post >= 0.95 * pre,
        "goodput failed to recover after the burst: {post:.3} post-spike vs {pre:.3} pre-spike"
    );
    println!(
        "Overload: shed rate {:.1}% under the spike; served fraction {:.1}% pre vs {:.1}% \
         post-spike (recovered)",
        tight.shed_rate * 100.0,
        pre * 100.0,
        post * 100.0
    );

    // The same overload experiment on the engine service table: the
    // flash crowd is re-sized off the *measured* per-request cost so
    // the spike still overloads the pool by the same ratio, then the
    // online runtime runs against engine cycles end to end.
    let eper_request = etable[16] / 16;
    let (eworkload, _, _) = overload_workload(eper_request, etable[1]);
    let erequests = workload_trace(&eworkload);
    let eservice = |n: usize| etable[n];
    let eorows = overload_sweep(&erequests, &eservice, warmup, clock_hz);
    let etight = eorows
        .iter()
        .find(|r| r.queue_capacity == 16 && !r.autoscale)
        .expect("swept point");
    let etight_scaled = eorows
        .iter()
        .find(|r| r.queue_capacity == 16 && r.autoscale)
        .expect("swept point");
    assert!(
        etight.shed_rate > 0.0,
        "flash crowd failed to overload the bounded queue on engine cycles"
    );
    assert!(
        etight_scaled.served >= etight.served,
        "autoscaling must not serve less than the fixed pool on engine cycles"
    );
    println!(
        "Engine-table overload: shed rate {:.1}% under the spike (queue 16, fixed pool), \
         autoscaling serves {} vs {}",
        etight.shed_rate * 100.0,
        etight_scaled.served,
        etight.served
    );

    // Scale point: a million-request diurnal day through the online
    // runtime with autoscaling — the "millions of users" regime.
    let million_cfg = WorkloadConfig {
        seed: 41,
        requests: 1_000_000,
        regime: ArrivalRegime::Diurnal {
            period_cycles: 500_000 * per_request,
            offpeak_gap_cycles: (3 * per_request) as f64,
            peak_gap_cycles: (per_request / 3).max(1) as f64,
        },
        classes: vec![
            ClassConfig {
                weight: 3,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(30 * table16[1]),
            },
        ],
    };
    let million_reqs = workload_trace(&million_cfg);
    let million_rt = RuntimeConfig {
        workers: 2,
        batcher,
        queue_capacity: Some(256),
        deadline_aware: true,
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 8,
            scale_up_queue_per_worker: 16,
            scale_down_idle_cycles: 500_000,
            eval_period_cycles: 100_000,
        }),
        record_events: false,
        resilience: ResilienceConfig::none(),
    };
    let million = run_runtime(&million_rt, &million_reqs, &service, warmup);
    let spawned = million
        .scaling
        .iter()
        .filter(|s| matches!(s, ScalingEvent::Up { .. }))
        .count();
    println!(
        "Million-request diurnal: {} served / {} offered ({:.2}% shed), {} autoscale \
         spin-ups, makespan {} cycles",
        million.served.len(),
        million.total_requests,
        million.shed_rate() * 100.0,
        spawned,
        million.sim.makespan_cycles
    );

    // Invariant 4: every sweep is deterministic — a rerun serializes
    // to the identical byte string, event digests included. The engine
    // *table* is reused across reruns (its own determinism — identical
    // cycles for identical batch sizes — is pinned by
    // tests/serve_equivalence.rs); everything downstream of it reruns.
    let json = render_json(
        &rows,
        &orows,
        &etable,
        &erows,
        &eorows,
        (pre, post),
        &million,
    );
    let rerun_orows = overload_sweep(&requests, &service, warmup, clock_hz);
    let rerun_eorows = overload_sweep(&erequests, &eservice, warmup, clock_hz);
    let rerun_million = run_runtime(&million_rt, &million_reqs, &service, warmup);
    let rerun = render_json(
        &sweep(&cfg, &net),
        &rerun_orows,
        &etable,
        &sweep_with(&etable, clock_hz),
        &rerun_eorows,
        (pre, post),
        &rerun_million,
    );
    assert_eq!(
        json, rerun,
        "serving sweep is not deterministic: reruns must be byte-identical"
    );
    println!("Determinism: rerun of every sweep is byte-identical (event digests included)");

    engine_validation();

    match fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("\nWrote BENCH_serve.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_serve.json: {e}"),
    }
}
