//! Multi-worker serving sweep (beyond the paper): a seeded synthetic
//! request stream through the dynamic micro-batcher and a shard pool of
//! weight-resident workers, at the paper 16×16 configuration with the
//! closed-form cycle model supplying batch service times.
//!
//! Asserts two serving invariants on every run:
//!
//! 1. **worker scaling** — under saturating load, 4 workers deliver at
//!    least 3× the aggregate throughput of 1 worker at fixed
//!    `max_batch`;
//! 2. **determinism** — rerunning the identical sweep produces a
//!    byte-identical serialized report (virtual time only, no wall
//!    clock), so `BENCH_serve.json` is reproducible.
//!
//! Plus a cycle-accurate validation at the tiny scale: requests served
//! through real OS-thread `BatchScheduler` workers produce traces
//! bit-exact against fresh sequential runs.
//!
//! Emits `BENCH_serve.json` into the current directory so CI records
//! the serving-perf trajectory (see `ci.sh`).

use std::fmt::Write as _;
use std::fs;

use capsacc_bench::print_table;
use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{Accelerator, AcceleratorConfig};
use capsacc_serve::{simulate_serve, BatcherConfig, ServeConfig, SimOutcome, TraceConfig};
use capsacc_tensor::Tensor;

/// One measured point of the sweep.
struct Row {
    workers: usize,
    max_batch: usize,
    max_wait_cycles: u64,
    throughput_img_s: f64,
    p50_cycles: u64,
    p95_cycles: u64,
    p99_cycles: u64,
    mean_batch: f64,
    mean_utilization: f64,
}

/// A saturating trace: ~1 request per 500 cycles of virtual time —
/// orders of magnitude beyond one worker's MNIST capacity, so the
/// worker-scaling headline is load-bound, not arrival-bound.
fn trace() -> TraceConfig {
    TraceConfig {
        seed: 7,
        requests: 512,
        mean_gap_cycles: 2_000.0,
        mean_burst: 4.0,
    }
}

fn sweep(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> Vec<Row> {
    let clock_hz = cfg.clock_mhz as f64 * 1e6;
    let mut rows = Vec::new();
    for &max_batch in &[4usize, 16, 32] {
        for &max_wait_cycles in &[10_000u64, 1_000_000] {
            for &workers in &[1usize, 2, 4, 8] {
                let serve = ServeConfig {
                    workers,
                    batcher: BatcherConfig {
                        max_batch,
                        max_wait_cycles,
                    },
                    trace: trace(),
                };
                let out: SimOutcome = simulate_serve(cfg, net, &serve);
                let [p50, p95, p99] = out.latency_percentiles();
                let mean_utilization =
                    (0..workers).map(|w| out.utilization(w)).sum::<f64>() / workers as f64;
                rows.push(Row {
                    workers,
                    max_batch,
                    max_wait_cycles,
                    throughput_img_s: out.throughput_per_cycle() * clock_hz,
                    p50_cycles: p50,
                    p95_cycles: p95,
                    p99_cycles: p99,
                    mean_batch: out.mean_batch_len(),
                    mean_utilization,
                });
            }
        }
    }
    rows
}

fn render_json(rows: &[Row]) -> String {
    let t = trace();
    let mut json = format!(
        "{{\n  \"bench\": \"exp_serve\",\n  \"config\": \"paper_16x16_250MHz\",\n  \
         \"net\": \"mnist\",\n  \"trace\": {{\"seed\": {}, \"requests\": {}, \
         \"mean_gap_cycles\": {}, \"mean_burst\": {}}},\n  \"rows\": [\n",
        t.seed, t.requests, t.mean_gap_cycles, t.mean_burst,
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"workers\": {}, \"max_batch\": {}, \"max_wait_cycles\": {}, \
             \"throughput_img_s\": {:.1}, \"p50_cycles\": {}, \"p95_cycles\": {}, \
             \"p99_cycles\": {}, \"mean_batch\": {:.2}, \"utilization\": {:.3}}}{sep}",
            r.workers,
            r.max_batch,
            r.max_wait_cycles,
            r.throughput_img_s,
            r.p50_cycles,
            r.p95_cycles,
            r.p99_cycles,
            r.mean_batch,
            r.mean_utilization,
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");
    json
}

/// Cycle-accurate validation: tiny-scale requests served through real
/// OS-thread workers must be bit-exact against sequential runs.
fn engine_validation() {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    // The canonical deterministic test image — keep in sync with
    // `tests/common/mod.rs::image_for` (separate crate, cannot import).
    let image = |s: usize| {
        Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
            ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
        })
    };
    let serve = ServeConfig {
        workers: 3,
        batcher: BatcherConfig {
            max_batch: 4,
            max_wait_cycles: 20_000,
        },
        trace: TraceConfig {
            seed: 5,
            requests: 12,
            mean_gap_cycles: 2_500.0,
            mean_burst: 2.0,
        },
    };
    let (outcome, traces) = capsacc_serve::serve_with_engine(&cfg, &net, &qparams, &serve, &image)
        .expect("valid serve");
    assert_eq!(traces.len(), 12);
    for (r, trace) in traces.iter().enumerate() {
        let mut acc = Accelerator::new(cfg);
        let single = acc.run_inference(&net, &qparams, &image(r));
        assert_eq!(
            &single.trace, trace,
            "shard-pool trace diverged from sequential engine for request {r}"
        );
    }
    println!(
        "Engine validation: 12 requests, {} batches over 3 OS-thread workers — \
         every trace bit-exact vs the sequential engine",
        outcome.batches.len()
    );
}

fn main() {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();

    let rows = sweep(&cfg, &net);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.max_batch.to_string(),
                r.max_wait_cycles.to_string(),
                format!("{:.0}", r.throughput_img_s),
                format!("{:.2}", cfg.cycles_to_us(r.p50_cycles) / 1000.0),
                format!("{:.2}", cfg.cycles_to_us(r.p95_cycles) / 1000.0),
                format!("{:.2}", cfg.cycles_to_us(r.p99_cycles) / 1000.0),
                format!("{:.1}", r.mean_batch),
                format!("{:.0}%", r.mean_utilization * 100.0),
            ]
        })
        .collect();
    print_table(
        "Serving sweep — MNIST requests on the 16×16 paper config (virtual time)",
        &[
            "Workers",
            "MaxBatch",
            "MaxWait cy",
            "Img/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "Batch",
            "Util",
        ],
        &table,
    );

    // Invariant 1: ≥ 3× throughput at 4 workers vs 1, per (batch, wait).
    for &max_batch in &[4usize, 16, 32] {
        for &max_wait in &[10_000u64, 1_000_000] {
            let at = |workers: usize| {
                rows.iter()
                    .find(|r| {
                        r.workers == workers
                            && r.max_batch == max_batch
                            && r.max_wait_cycles == max_wait
                    })
                    .expect("swept point")
                    .throughput_img_s
            };
            let (t1, t4) = (at(1), at(4));
            assert!(
                t4 >= 3.0 * t1,
                "worker scaling regressed at max_batch {max_batch}, wait {max_wait}: \
                 {t4:.0} img/s at 4 workers vs {t1:.0} at 1"
            );
        }
    }
    println!("\nWorker scaling: ≥ 3x aggregate throughput at 4 workers vs 1 (all points)");

    // Invariant 2: the sweep is deterministic — a rerun serializes to
    // the identical byte string (same seed, virtual time only).
    let json = render_json(&rows);
    let rerun = render_json(&sweep(&cfg, &net));
    assert_eq!(
        json, rerun,
        "serving sweep is not deterministic: reruns must be byte-identical"
    );
    println!("Determinism: rerun of the sweep is byte-identical");

    engine_validation();

    match fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("\nWrote BENCH_serve.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_serve.json: {e}"),
    }
}
