//! Memory design-space exploration: sweep SPM bank counts × Weight-SPM
//! sizes × prefetch depth × sector power gating over the paper's 16×16
//! MNIST config through the memory-aware closed-form model
//! (`timing::full_inference_batch_mem`), reporting stall cycles,
//! cycles/image and energy/image at batch 16.
//!
//! Two invariants are asserted on every run (this is the CI smoke
//! test for the memory subsystem):
//!
//! 1. **IdealMemory equivalence** — at the tiny test scale, the
//!    cycle-accurate engine under `MemoryConfig::ideal()` reports zero
//!    stalls (so all pre-hierarchy cycle counts are intact), and under
//!    the finite paper memory its `MemReport` equals the closed-form
//!    replay *exactly*, with the trace still bit-identical to ideal.
//! 2. **Prefetch recovery** — at batch 16 on the paper config, the
//!    double-buffered prefetcher recovers at least half of the naive
//!    (no-prefetch) stall cycles.
//!
//! Emits `BENCH_mem.json` into the current directory so CI records the
//! memory-hierarchy perf trajectory (see `ci.sh`).

use capsacc_bench::{json_row, print_table, BenchJson};
use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{timing, AcceleratorConfig, BatchScheduler, MemoryConfig, SpmConfig};
use capsacc_power::EnergyModel;
use capsacc_tensor::{u64_from, Tensor};

const BATCH: u64 = 16;

/// One swept design point.
struct Point {
    banks: u64,
    weight_spm_kib: usize,
    prefetch_buffers: usize,
    power_gating: bool,
}

/// One measured row.
struct Row {
    point: Point,
    stall_cycles: u64,
    stall_pct: f64,
    cycles_per_image: f64,
    energy_uj_per_image: f64,
}

fn config_for(point: &Point) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::paper();
    let mut mem = MemoryConfig::paper();
    mem.data_spm.banks = point.banks;
    mem.weight_spm.banks = point.banks;
    mem.weight_spm.bytes = point.weight_spm_kib * 1024;
    mem.prefetch_buffers = point.prefetch_buffers;
    mem.power_gating = point.power_gating;
    cfg.memory = mem;
    // Keep the architectural buffer capacity coherent with the SPM model
    // (the closed-form schedule gates tile double-buffering on it).
    cfg.weight_buffer_bytes = point.weight_spm_kib * 1024;
    cfg
}

fn measure(net: &CapsNetConfig, point: Point) -> Row {
    let cfg = config_for(&point);
    let t = timing::full_inference_batch_mem(&cfg, net, BATCH);
    let traffic = timing::batch_traffic_estimate(&cfg, net, BATCH);
    let macs = BATCH * capsacc_bench::inference_macs(net);
    let energy = EnergyModel::cmos_32nm().inference_energy_mem(
        &cfg,
        macs,
        &traffic,
        &t.report,
        t.total_cycles(),
    );
    Row {
        point,
        stall_cycles: t.report.stall_cycles,
        stall_pct: t.stall_fraction() * 100.0,
        cycles_per_image: t.cycles_per_image(),
        energy_uj_per_image: energy.per_inference_uj(BATCH),
    }
}

/// Invariant 1: ideal-memory equivalence and engine ≡ closed-form on the
/// tiny scale.
fn assert_ideal_equivalence() {
    let net = CapsNetConfig::tiny();
    let mut ideal_cfg = AcceleratorConfig::test_4x4();
    // Engine ≡ model exactness holds on serial-tile schedules (the
    // ticked engine always executes tiles serially).
    ideal_cfg.dataflow.pipelined_tiles = false;
    let mut finite_cfg = ideal_cfg;
    finite_cfg.memory = MemoryConfig::paper();
    let qparams = CapsNetParams::generate(&net, 0).quantize(ideal_cfg.numeric);
    // The canonical deterministic test image — keep in sync with
    // `tests/common/mod.rs::image_for`, which the pinned golden-digest
    // suites use (this binary is a separate crate and cannot import it).
    let images: Vec<Tensor<f32>> = (0..4)
        .map(|s| {
            Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
                ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
            })
        })
        .collect();

    let mut ideal = BatchScheduler::new(ideal_cfg);
    let run_ideal = ideal.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(
        run_ideal.memory.stall_cycles, 0,
        "IdealMemory must not stall"
    );

    let mut finite = BatchScheduler::new(finite_cfg);
    let run_finite = finite.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(
        run_ideal.traces, run_finite.traces,
        "the memory model must never change functional results"
    );
    let model = timing::full_inference_batch_mem(&finite_cfg, &net, u64_from(images.len()));
    assert_eq!(
        run_finite.memory, model.report,
        "engine and closed-form memory replay diverged"
    );
}

/// Invariant 2: prefetch recovers ≥ half of the naive stalls at batch 16.
/// Returns (naive, prefetched) stall cycles for the report.
fn assert_prefetch_recovery(net: &CapsNetConfig) -> (u64, u64) {
    let mut cfg = AcceleratorConfig::paper();
    cfg.memory = MemoryConfig::paper();
    let mut naive_cfg = cfg;
    naive_cfg.memory.prefetch_buffers = 1;
    let prefetched = timing::full_inference_batch_mem(&cfg, net, BATCH)
        .report
        .stall_cycles;
    let naive = timing::full_inference_batch_mem(&naive_cfg, net, BATCH)
        .report
        .stall_cycles;
    assert!(
        2 * prefetched <= naive,
        "double buffering must recover at least half of the naive stalls \
         ({prefetched} vs {naive})"
    );
    (naive, prefetched)
}

fn write_json(rows: &[Row], naive: u64, prefetched: u64) -> std::io::Result<()> {
    let mut j = BenchJson::new("exp_memdse");
    j.str_field("config", "paper_16x16_250MHz");
    j.str_field("net", "mnist");
    j.field("batch", 16);
    j.field("naive_stall_cycles", naive);
    j.field("prefetch_stall_cycles", prefetched);
    j.rows(
        "rows",
        rows.iter()
            .map(|r| {
                json_row(&[
                    ("banks", r.point.banks.to_string()),
                    ("weight_spm_kib", r.point.weight_spm_kib.to_string()),
                    ("prefetch_buffers", r.point.prefetch_buffers.to_string()),
                    ("power_gating", r.point.power_gating.to_string()),
                    ("stall_cycles", r.stall_cycles.to_string()),
                    ("stall_pct", format!("{:.2}", r.stall_pct)),
                    ("cycles_per_image", format!("{:.1}", r.cycles_per_image)),
                    (
                        "energy_uj_per_image",
                        format!("{:.3}", r.energy_uj_per_image),
                    ),
                ])
            })
            .collect(),
    );
    j.write("BENCH_mem.json")
}

fn main() {
    assert_ideal_equivalence();
    println!("IdealMemory equivalence: engine ≡ closed-form replay, zero ideal stalls ✓");

    let net = CapsNetConfig::mnist();
    let (naive, prefetched) = assert_prefetch_recovery(&net);
    println!(
        "Prefetch recovery at batch 16: naive {naive} → double-buffered {prefetched} \
         stall cycles ({:.0}% recovered) ✓\n",
        (1.0 - prefetched as f64 / naive as f64) * 100.0
    );

    let mut rows = Vec::new();
    for &banks in &[2u64, 4, 8] {
        for &weight_spm_kib in &[8usize, 24, 64] {
            for &prefetch_buffers in &[1usize, 2, 4] {
                for &power_gating in &[false, true] {
                    rows.push(measure(
                        &net,
                        Point {
                            banks,
                            weight_spm_kib,
                            prefetch_buffers,
                            power_gating,
                        },
                    ));
                }
            }
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.point.banks.to_string(),
                format!("{} KiB", r.point.weight_spm_kib),
                r.point.prefetch_buffers.to_string(),
                if r.point.power_gating { "on" } else { "off" }.to_string(),
                r.stall_cycles.to_string(),
                format!("{:.2}%", r.stall_pct),
                format!("{:.0}", r.cycles_per_image),
                format!("{:.1}", r.energy_uj_per_image),
            ]
        })
        .collect();
    print_table(
        "Memory design space — MNIST, batch 16, 16×16 paper config (closed-form)",
        &[
            "Banks",
            "Wt SPM",
            "Prefetch",
            "Gating",
            "Stalls",
            "Stall%",
            "Cycles/img",
            "µJ/img",
        ],
        &table,
    );

    // Strided-access bank conflicts: cycles for one 256-word burst into
    // the weight SPM as the address stride sweeps power-of-two and odd
    // values — why interleaved layouts want conflict-free strides.
    let conflict_rows: Vec<Vec<String>> = [2u64, 4, 8]
        .iter()
        .map(|&banks| {
            let spm = SpmConfig {
                banks,
                ..MemoryConfig::paper().weight_spm
            };
            let mut row = vec![format!("{banks}")];
            for stride in [1u64, 2, 4, 8, 3] {
                row.push(format!(
                    "{} (+{})",
                    spm.strided_word_cycles(256, stride),
                    spm.conflict_stall_cycles(256, stride)
                ));
            }
            row
        })
        .collect();
    print_table(
        "Bank conflicts — 256-word burst into the weight SPM, cycles (+conflict stall)",
        &[
            "Banks", "Stride 1", "Stride 2", "Stride 4", "Stride 8", "Stride 3",
        ],
        &conflict_rows,
    );

    let best = rows
        .iter()
        .min_by(|a, b| {
            a.energy_uj_per_image
                .partial_cmp(&b.energy_uj_per_image)
                .expect("finite energies")
        })
        .expect("non-empty sweep");
    println!(
        "\nBest energy point: {} banks, {} KiB weight SPM, {} prefetch buffers, gating {} \
         → {:.1} µJ/img at {:.0} cycles/img",
        best.point.banks,
        best.point.weight_spm_kib,
        best.point.prefetch_buffers,
        if best.point.power_gating { "on" } else { "off" },
        best.energy_uj_per_image,
        best.cycles_per_image,
    );

    match write_json(&rows, naive, prefetched) {
        Ok(()) => println!("\nWrote BENCH_mem.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_mem.json: {e}"),
    }
}
