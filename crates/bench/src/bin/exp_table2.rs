//! Regenerates **Table II** of the paper: the synthesized design
//! parameters of CapsAcc.

use capsacc_bench::print_table;
use capsacc_core::AcceleratorConfig;
use capsacc_power::PowerModel;

fn main() {
    let t2 = PowerModel::cmos_32nm().table2(&AcceleratorConfig::paper());
    print_table(
        "Table II — Parameters of the synthesized CapsAcc accelerator",
        &["Parameter", "Measured", "Paper"],
        &[
            vec![
                "Tech. node [nm]".into(),
                t2.tech_node_nm.to_string(),
                "32".into(),
            ],
            vec![
                "Voltage [V]".into(),
                format!("{:.2}", t2.voltage_v),
                "1.05".into(),
            ],
            vec![
                "Area [mm2]".into(),
                format!("{:.2}", t2.area_mm2),
                "2.90".into(),
            ],
            vec![
                "Power [mW]".into(),
                format!("{:.0}", t2.power_mw),
                "202".into(),
            ],
            vec![
                "Clk Freq. [MHz]".into(),
                t2.clock_mhz.to_string(),
                "250".into(),
            ],
            vec!["Bit width".into(), t2.bit_width.to_string(), "8".into()],
            vec![
                "On-Chip Mem. [MB]".into(),
                format!("{:.0}", t2.onchip_memory_mb),
                "8".into(),
            ],
        ],
    );
}
