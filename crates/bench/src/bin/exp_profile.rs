//! Deterministic telemetry profiling: runs instrumented workloads with
//! recording ON, validates the span trees and exporters, and writes
//! Chrome-trace (Perfetto-loadable) and metrics artifacts.
//!
//! In-binary asserts (run by `ci.sh`; this is the CI gate for the
//! telemetry layer):
//!
//! 1. **Invisibility** — every instrumented run's simulated results
//!    (`BatchRun`, `RuntimeOutcome` including the event digest) are
//!    identical to a recording-off run of the same inputs. This binary
//!    writes only PROFILE_* artifacts; the committed BENCH_*.json
//!    files are never touched (`ci.sh` checksums them around this
//!    run).
//! 2. **Exact attribution** — the engine span tree at `Phases` detail
//!    sums exactly to the MNIST `BatchRun`'s total cycles (functional
//!    backend, modeled memory), and at `Tiles` detail on the tiny
//!    config the ticked and functional backends produce *identical*
//!    span trees, each summing exactly to its run's cycles, with
//!    children partitioning parents at every nesting level.
//! 3. **Valid exports** — every emitted JSON artifact parses
//!    (`validate_json`, a dependency-free checker).
//! 4. **Timeline coverage** — the serving timeline contains exactly
//!    one `"request"` span per served request, no more, no fewer.
//!
//! Artifacts (current directory; run-dependent host annotations keep
//! them out of git — load the Chrome traces at <https://ui.perfetto.dev>
//! or `chrome://tracing`):
//!
//! - `PROFILE_inference.json` — Chrome trace of a batch-4 MNIST
//!   inference: inference → layer → matmul/squash/routing phases with
//!   memory-stall windows and host-nanosecond staging annotations;
//! - `PROFILE_inference_metrics.json` — memory-subsystem counters and
//!   per-matmul stall histograms of that run;
//! - `PROFILE_serve.json` — Chrome trace of a 2 000-request overload
//!   serve: per-worker batch tracks plus request lifecycle fan tracks
//!   (request / queued / service);
//! - `PROFILE_serve_metrics.json` / `.csv` — serving counters,
//!   windowed gauges (queue depth, shed rate, per-class SLO
//!   attainment, per-worker utilization) and latency histograms.

use std::fs;

use capsacc_bench::print_table;
use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{
    validate_span_tree, Accelerator, AcceleratorConfig, BatchScheduler, EngineBackend, LayerRun,
    MemoryConfig, SpanDetail, TelemetryConfig, TRACK_ENGINE,
};
use capsacc_serve::{
    run_runtime, run_runtime_with_sink, service_cycles_table, workload_trace, ArrivalRegime,
    AutoscalerConfig, BatcherConfig, ClassConfig, ResilienceConfig, RuntimeConfig,
    RuntimeTelemetry, WorkloadConfig,
};
use capsacc_telemetry::{chrome_trace_json, metrics_csv, metrics_json, validate_json, Recorder};
use capsacc_tensor::{u64_from, Tensor};

/// Writes an artifact, validating JSON payloads first.
fn write_artifact(path: &str, contents: &str, json: bool) {
    if json {
        validate_json(contents).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    }
    match fs::write(path, contents) {
        Ok(()) => println!("Wrote {path} ({} bytes)", contents.len()),
        Err(e) => println!("WARNING: could not write {path}: {e}"),
    }
}

/// The MNIST flame view: batch-4 functional-backend run under the
/// paper memory model, recorded at `Phases` detail with host-timing
/// annotations. Returns the recorder for export.
fn profile_mnist_batch() -> Recorder {
    let net = CapsNetConfig::mnist();
    let mut cfg = AcceleratorConfig::paper();
    cfg.backend = EngineBackend::Functional;
    cfg.memory = MemoryConfig::paper();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..4)
        .map(|s| {
            Tensor::from_fn(&[1, net.input_side, net.input_side], move |i| {
                ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
            })
        })
        .collect();

    // Recording-off baseline, then the instrumented run: byte-equal.
    let mut plain = BatchScheduler::new(cfg);
    let baseline = plain.run(&net, &qparams, &images).expect("valid batch");
    let mut sched = BatchScheduler::new(cfg);
    sched.accelerator_mut().enable_telemetry(TelemetryConfig {
        detail: SpanDetail::Phases,
        host_timing: true,
    });
    let run = sched.run(&net, &qparams, &images).expect("valid batch");
    assert_eq!(
        baseline, run,
        "telemetry recording perturbed the MNIST BatchRun"
    );

    let rec = sched.accelerator_mut().take_telemetry();
    let total = validate_span_tree(&rec, TRACK_ENGINE).expect("valid MNIST span tree");
    assert_eq!(
        total,
        run.total_cycles(),
        "MNIST span tree does not sum to the BatchRun total"
    );

    // Flame summary: the layer spans under the inference root.
    let spans = rec.spans();
    let rows: Vec<Vec<String>> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.name, "Conv1" | "PrimaryCaps" | "ClassCaps"))
        .map(|(idx, s)| {
            let kids = spans
                .iter()
                .filter(|c| c.parent == Some(idx as u32))
                .count();
            vec![
                s.name.to_string(),
                s.cycles().to_string(),
                format!("{:.1}%", 100.0 * s.cycles() as f64 / total as f64),
                kids.to_string(),
            ]
        })
        .collect();
    print_table(
        "MNIST batch-4 flame view — layer spans (functional backend, paper memory)",
        &["Layer", "Cycles", "Share", "Child spans"],
        &rows,
    );
    println!(
        "Span tree: {} spans, root sums to {} cycles == BatchRun::total_cycles ✓",
        spans.len(),
        total
    );
    rec
}

/// Tiles-detail validation at the tiny scale: both backends produce
/// identical span trees that sum exactly to their runs' cycles.
fn assert_tiles_detail_cross_backend() {
    let net = CapsNetConfig::tiny();
    let image = Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * 3 + i[2]) % 9) as f32 / 9.0
    });
    let mut trees = Vec::new();
    for backend in [EngineBackend::Ticked, EngineBackend::Functional] {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.backend = backend;
        cfg.memory = MemoryConfig::paper();
        let qparams = CapsNetParams::generate(&net, 3).quantize(cfg.numeric);
        let mut acc = Accelerator::new(cfg);
        acc.enable_telemetry(TelemetryConfig {
            detail: SpanDetail::Tiles,
            host_timing: false,
        });
        let run = acc.run_inference(&net, &qparams, &image);
        let rec = acc.take_telemetry();
        let total = validate_span_tree(&rec, TRACK_ENGINE)
            .unwrap_or_else(|e| panic!("{backend:?} tiles span tree invalid: {e}"));
        let want: u64 = run.layers.iter().map(LayerRun::cycles).sum();
        assert_eq!(total, want, "{backend:?} tiles span tree sum");
        trees.push((rec.spans().to_vec(), total));
    }
    assert_eq!(
        trees[0], trees[1],
        "ticked and functional backends must emit identical span trees"
    );
    println!(
        "Tiles detail: {} spans per backend, identical across ticked/functional, \
         sum {} cycles ✓",
        trees[0].0.len(),
        trees[0].1
    );
}

/// The serving timeline: a 2 000-request flash crowd through the
/// online runtime with a telemetry sink, against the recording-off
/// run. Returns the populated recorder and the served-request count.
fn profile_serve() -> (Recorder, usize) {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let table = service_cycles_table(&cfg, &net, 16);
    let per_request = table[16] / 16;
    let workload = WorkloadConfig {
        seed: 23,
        requests: 2_000,
        regime: ArrivalRegime::Spike {
            base_gap_cycles: (3 * per_request / 2) as f64,
            spike_start_cycle: 200 * per_request,
            spike_cycles: 600 * per_request,
            spike_gap_cycles: (per_request / 10).max(1) as f64,
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 2,
                slo_cycles: Some(30 * table[1]),
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(6 * table[1]),
            },
        ],
    };
    let requests = workload_trace(&workload);
    let rt = RuntimeConfig {
        workers: 2,
        batcher: BatcherConfig {
            max_batch: 16,
            max_wait_cycles: 20_000,
        },
        queue_capacity: Some(48),
        deadline_aware: true,
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 4,
            scale_up_queue_per_worker: 8,
            scale_down_idle_cycles: 200_000,
            eval_period_cycles: 50_000,
        }),
        record_events: false,
        resilience: ResilienceConfig::none(),
    };
    let service = |n: usize| table[n];
    let warmup = capsacc_serve::worker_warmup_cycles(&cfg, &net);

    let baseline = run_runtime(&rt, &requests, &service, warmup);
    // One gauge sample per full batch's worth of virtual time.
    let mut sink = RuntimeTelemetry::new(&requests, table[16]);
    let observed = run_runtime_with_sink(&rt, &requests, &service, warmup, &mut sink);
    assert_eq!(
        baseline, observed,
        "the telemetry sink perturbed the runtime outcome"
    );
    assert_eq!(baseline.event_digest, observed.event_digest);
    let rec = sink.finish();

    // Coverage: exactly one "request" span per served request.
    let mut seen: Vec<u64> = rec
        .spans()
        .iter()
        .filter(|s| s.name == "request")
        .map(|s| {
            s.args
                .iter()
                .find(|(k, _)| *k == "req")
                .expect("request spans carry req")
                .1
        })
        .collect();
    seen.sort_unstable();
    let want: Vec<u64> = observed.served.iter().map(|&r| u64_from(r)).collect();
    assert_eq!(
        seen, want,
        "serving timeline must cover every served request exactly once"
    );

    println!(
        "Serving timeline: {} served / {} offered, {} spans, queue-depth samples: {} ✓",
        observed.served.len(),
        observed.total_requests,
        rec.spans().len(),
        rec.metrics().gauge("serve.queue_depth").len(),
    );
    (rec, observed.served.len())
}

fn main() {
    let engine_rec = profile_mnist_batch();
    assert_tiles_detail_cross_backend();
    let (serve_rec, served) = profile_serve();

    write_artifact(
        "PROFILE_inference.json",
        &chrome_trace_json(&engine_rec),
        true,
    );
    write_artifact(
        "PROFILE_inference_metrics.json",
        &metrics_json(&engine_rec),
        true,
    );
    write_artifact("PROFILE_serve.json", &chrome_trace_json(&serve_rec), true);
    write_artifact(
        "PROFILE_serve_metrics.json",
        &metrics_json(&serve_rec),
        true,
    );
    write_artifact("PROFILE_serve_metrics.csv", &metrics_csv(&serve_rec), false);

    println!(
        "\nAll telemetry invariants hold: recording is invisible to simulated \
         results, span trees sum exactly to run totals, exports parse, and the \
         timeline covers all {served} served requests. Load the PROFILE_*.json \
         traces at https://ui.perfetto.dev."
    );
}
