//! Energy-per-inference analysis (derived metric): decomposes the
//! inference energy at the paper's design point, reconciles it against
//! the Table II average power, and quantifies what the data-reuse
//! mechanisms save.

use capsacc_bench::print_table;
use capsacc_capsnet::CapsNetConfig;
use capsacc_core::{timing, AcceleratorConfig};
use capsacc_power::EnergyModel;

use capsacc_bench::inference_macs as total_macs;

fn main() {
    let net = CapsNetConfig::mnist();
    let cfg = AcceleratorConfig::paper();
    let model = EnergyModel::cmos_32nm();

    let t = timing::full_inference(&cfg, &net);
    let traffic = timing::traffic_estimate(&cfg, &net);
    let report = model.inference_energy(&cfg, total_macs(&net), &traffic, t.total_time_us(&cfg));

    let rows: Vec<Vec<String>> = report
        .components
        .iter()
        .zip(report.breakdown())
        .map(|(c, (_, frac))| {
            vec![
                c.name.to_owned(),
                format!("{:.1} µJ", c.energy_uj),
                format!("{:.0}%", frac * 100.0),
            ]
        })
        .collect();
    print_table(
        "Energy per MNIST inference (16×16 @ 250 MHz)",
        &["Component", "Energy", "Share"],
        &rows,
    );
    println!(
        "\nTotal: {:.1} µJ over {:.2} ms → implied average power {:.0} mW\n\
         (Table II reports 202 mW — the models reconcile within calibration\n\
         tolerance).",
        report.total_uj(),
        report.latency_us / 1000.0,
        report.average_power_mw()
    );

    // Reuse ablations in energy terms.
    let mut rows = Vec::new();
    for (name, mutate) in [
        ("all optimizations (paper)", None),
        ("no routing feedback reuse", Some(0usize)),
        ("no conv weight reuse", Some(1)),
    ] {
        let mut c = cfg;
        match mutate {
            Some(0) => c.dataflow.routing_feedback = false,
            Some(1) => c.dataflow.weight_reuse = false,
            _ => {}
        }
        let t = timing::full_inference(&c, &net);
        let traffic = timing::traffic_estimate(&c, &net);
        let e = model.inference_energy(&c, total_macs(&net), &traffic, t.total_time_us(&c));
        rows.push(vec![
            name.to_owned(),
            format!("{:.1} µJ", e.total_uj()),
            format!("{:.2} ms", t.total_time_us(&c) / 1000.0),
        ]);
    }
    print_table(
        "Energy ablations — what the data reuse saves",
        &["Configuration", "Energy/inference", "Latency"],
        &rows,
    );
}
