//! Fault-tolerance sweeps (beyond the paper) at the paper 16×16
//! configuration: the online serving runtime under seeded
//! [`FaultPlan`]s, measuring what recovery costs and what it buys.
//!
//! Three sweeps, all through [`simulate_runtime_resilient`] (so
//! memory-layer faults surcharge respawn warmups and graceful
//! degradation really re-prices the service table):
//!
//! 1. **crash × retry** — worker crash rate {0, 1%, 5%} per dispatch
//!    against retry budgets {1, 3, 5}: goodput, p99, retry-exhausted
//!    count, wasted cycles, and the energy those wasted cycles burn
//!    (µJ at the calibrated 32 nm power point);
//! 2. **straggler hedging** — rare heavy stragglers (0.8% at 12×),
//!    hedging off vs on: p99 and the duplicate-work bill (rare is the
//!    regime where the p99-derived deadline can beat the straggler);
//! 3. **graceful degradation** — sustained 1.5× overload, degradation
//!    off vs on: served fraction when routing iterations shed 3→2→1
//!    under queue pressure.
//!
//! Asserts fault-tolerance invariants on every run:
//!
//! 1. **conservation** — no run loses a request: served and rejected
//!    partition the offered set even while batches crash and requeue;
//! 2. **recovery headline** — at a 1% crash rate with the standard
//!    3-attempt budget, goodput stays ≥ 90%;
//! 3. **faults-off invisibility** — the zero-rate rows are
//!    digest-identical across retry budgets and match a plain
//!    [`ResilienceConfig::none`] run bit-exactly;
//! 4. **hedging pays** — hedges fire, some win, and the hedged p99 is
//!    no worse than the unhedged tail;
//! 5. **degradation pays** — quality shifts happen and serve at least
//!    as many requests as the full-quality runtime under the same
//!    overload;
//! 6. **determinism** — rerunning every sweep produces byte-identical
//!    reports, event digests included (virtual time only).
//!
//! Emits `BENCH_faults.json` into the current directory so CI records
//! the fault-tolerance trajectory (see `ci.sh`).

use std::fs;

use capsacc_bench::{json_row, print_table, BenchJson};
use capsacc_capsnet::CapsNetConfig;
use capsacc_core::AcceleratorConfig;
use capsacc_faults::{FaultPlan, ServeFaults};
use capsacc_power::PowerModel;
use capsacc_serve::{
    service_cycles_table, simulate_runtime_resilient, workload_trace, ArrivalRegime, BatcherConfig,
    ClassConfig, DegradeConfig, HedgeConfig, Request, ResilienceConfig, RetryConfig, RuntimeConfig,
    RuntimeOutcome, WorkloadConfig,
};

/// The one seed every plan in this binary derives from — the lint
/// gate (`fault-seed`) and the rerun assert both key off plans being
/// explicit about it.
const FAULT_SEED: u64 = 0xFA17;

/// One measured point of the crash × retry sweep.
struct CrashRow {
    crash_rate: f64,
    max_attempts: u32,
    served: usize,
    retry_exhausted: usize,
    goodput_frac: f64,
    p99_cycles: u64,
    crashes: usize,
    requeues: usize,
    wasted_cycles: u64,
    wasted_uj: f64,
    event_digest: u64,
}

/// One measured point of the hedging / degradation comparisons.
struct PolicyRow {
    enabled: bool,
    served: usize,
    p99_cycles: u64,
    extra: usize,
    extra_wins: usize,
    wasted_cycles: u64,
    wasted_uj: f64,
    event_digest: u64,
}

/// Conservation under faults: every offered request is served exactly
/// once XOR rejected exactly once, crashes and requeues included, and
/// the per-class ledgers add up.
fn assert_no_request_lost(requests: &[Request], out: &RuntimeOutcome, label: &str) {
    assert_eq!(out.total_requests, requests.len(), "{label}");
    let mut seen = vec![0u32; requests.len()];
    for &r in &out.served {
        seen[r] += 1;
    }
    for r in &out.rejections {
        seen[r.request] += 1;
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "{label}: a request was lost or double-counted under faults"
    );
    for c in &out.class_stats {
        assert_eq!(
            c.offered,
            c.served + c.shed + c.infeasible + c.retry_exhausted,
            "{label}: per-class ledger does not add up"
        );
    }
}

/// A bursty two-class workload with comfortable headroom on the
/// 3-worker pool, so retries and hedges have slack and any goodput
/// loss is the faults' doing.
fn bursty_workload(seed: u64, requests: usize, per_request: u64, service_1: u64) -> Vec<Request> {
    workload_trace(&WorkloadConfig {
        seed,
        requests,
        regime: ArrivalRegime::Bursty {
            mean_gap_cycles: (3 * per_request / 2) as f64,
            mean_burst: 3.0,
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(30 * service_1),
            },
        ],
    })
}

fn runtime(per_request: u64, resilience: ResilienceConfig) -> RuntimeConfig {
    RuntimeConfig {
        workers: 3,
        batcher: BatcherConfig {
            max_batch: 8,
            max_wait_cycles: per_request,
        },
        queue_capacity: Some(64),
        deadline_aware: false,
        autoscaler: None,
        record_events: false,
        resilience,
    }
}

fn crash_plan(rate: f64) -> FaultPlan {
    FaultPlan::seeded(FAULT_SEED).with_serve(ServeFaults {
        crash_per_dispatch: rate,
        ..ServeFaults::none()
    })
}

#[allow(clippy::too_many_arguments)]
fn crash_sweep(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    requests: &[Request],
    per_request: u64,
    uj_per_cycle: f64,
) -> Vec<CrashRow> {
    let mut rows = Vec::new();
    for &crash_rate in &[0.0, 0.01, 0.05] {
        for &max_attempts in &[1u32, 3, 5] {
            let rt = runtime(
                per_request,
                ResilienceConfig {
                    faults: crash_plan(crash_rate),
                    retry: RetryConfig {
                        max_attempts,
                        backoff_base_cycles: 1_000,
                    },
                    hedge: None,
                    degrade: None,
                },
            );
            let out = simulate_runtime_resilient(cfg, net, &rt, requests);
            assert_no_request_lost(
                requests,
                &out,
                &format!("crash sweep rate {crash_rate} attempts {max_attempts}"),
            );
            let [_, _, p99] = out.sim.latency_percentiles();
            rows.push(CrashRow {
                crash_rate,
                max_attempts,
                served: out.served.len(),
                retry_exhausted: out.retry_exhausted_count(),
                goodput_frac: out.served_fraction(),
                p99_cycles: p99,
                crashes: out.faults.crashes,
                requeues: out.faults.requeues,
                wasted_cycles: out.faults.wasted_cycles,
                wasted_uj: out.faults.wasted_cycles as f64 * uj_per_cycle,
                event_digest: out.event_digest,
            });
        }
    }
    rows
}

/// The hedging comparison: rare (0.8% per dispatch) but heavy (12×)
/// stragglers over a long trace, with and without hedged re-dispatch.
/// Rarity matters: the hedge deadline is the p99 of observed service
/// durations, which only undercuts the stragglers while they stay
/// below the 1% tail.
fn hedge_rows(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    requests: &[Request],
    per_request: u64,
    uj_per_cycle: f64,
) -> Vec<PolicyRow> {
    let plan = FaultPlan::seeded(FAULT_SEED).with_serve(ServeFaults {
        straggler_per_dispatch: 0.008,
        straggler_factor: 12,
        ..ServeFaults::none()
    });
    [None, Some(HedgeConfig::standard())]
        .into_iter()
        .map(|hedge| {
            let enabled = hedge.is_some();
            let rt = runtime(
                per_request,
                ResilienceConfig {
                    faults: plan,
                    retry: RetryConfig::standard(),
                    hedge,
                    degrade: None,
                },
            );
            let out = simulate_runtime_resilient(cfg, net, &rt, requests);
            assert_no_request_lost(requests, &out, "hedging comparison");
            let [_, _, p99] = out.sim.latency_percentiles();
            PolicyRow {
                enabled,
                served: out.served.len(),
                p99_cycles: p99,
                extra: out.faults.hedges,
                extra_wins: out.faults.hedge_wins,
                wasted_cycles: out.faults.wasted_cycles,
                wasted_uj: out.faults.wasted_cycles as f64 * uj_per_cycle,
                event_digest: out.event_digest,
            }
        })
        .collect()
}

/// The degradation comparison: fault-free but sustained ~1.5×
/// overload of the full-quality capacity, with and without quality
/// shedding (routing iterations 3→2→1 under queue pressure).
fn degrade_rows(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    per_request: u64,
    service_1: u64,
    uj_per_cycle: f64,
) -> (Vec<Request>, Vec<PolicyRow>) {
    let requests = workload_trace(&WorkloadConfig {
        seed: 29,
        requests: 1_500,
        regime: ArrivalRegime::Bursty {
            // 3 workers at batched capacity absorb one request per
            // per_request/3 cycles; arrive 1.5× faster than that.
            mean_gap_cycles: (per_request / 3) as f64 / 1.5,
            mean_burst: 3.0,
        },
        classes: vec![
            ClassConfig {
                weight: 2,
                slo_cycles: None,
            },
            ClassConfig {
                weight: 1,
                slo_cycles: Some(30 * service_1),
            },
        ],
    });
    let rows = [false, true]
        .into_iter()
        .map(|enabled| {
            let rt = runtime(
                per_request,
                ResilienceConfig {
                    faults: FaultPlan::none(),
                    retry: RetryConfig::standard(),
                    hedge: None,
                    degrade: enabled.then_some(DegradeConfig {
                        high_occupancy: 32,
                        low_occupancy: 8,
                        eval_period_cycles: per_request,
                        max_level: 2,
                    }),
                },
            );
            let out = simulate_runtime_resilient(cfg, net, &rt, &requests);
            assert_no_request_lost(&requests, &out, "degradation comparison");
            let [_, _, p99] = out.sim.latency_percentiles();
            let degraded_served: usize = out.class_stats.iter().map(|c| c.degraded).sum();
            PolicyRow {
                enabled,
                served: out.served.len(),
                p99_cycles: p99,
                extra: out.faults.degrade_shifts,
                extra_wins: degraded_served,
                wasted_cycles: out.faults.wasted_cycles,
                wasted_uj: out.faults.wasted_cycles as f64 * uj_per_cycle,
                event_digest: out.event_digest,
            }
        })
        .collect();
    (requests, rows)
}

fn crash_json(rows: &[CrashRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            json_row(&[
                ("crash_rate", format!("{:.2}", r.crash_rate)),
                ("max_attempts", r.max_attempts.to_string()),
                ("served", r.served.to_string()),
                ("retry_exhausted", r.retry_exhausted.to_string()),
                ("goodput_frac", format!("{:.4}", r.goodput_frac)),
                ("p99_cycles", r.p99_cycles.to_string()),
                ("crashes", r.crashes.to_string()),
                ("requeues", r.requeues.to_string()),
                ("wasted_cycles", r.wasted_cycles.to_string()),
                ("wasted_uj", format!("{:.2}", r.wasted_uj)),
                ("event_digest", format!("\"{:016x}\"", r.event_digest)),
            ])
        })
        .collect()
}

fn policy_json(rows: &[PolicyRow], extra_key: &str, wins_key: &str) -> Vec<String> {
    rows.iter()
        .map(|r| {
            json_row(&[
                ("enabled", r.enabled.to_string()),
                ("served", r.served.to_string()),
                ("p99_cycles", r.p99_cycles.to_string()),
                (extra_key, r.extra.to_string()),
                (wins_key, r.extra_wins.to_string()),
                ("wasted_cycles", r.wasted_cycles.to_string()),
                ("wasted_uj", format!("{:.2}", r.wasted_uj)),
                ("event_digest", format!("\"{:016x}\"", r.event_digest)),
            ])
        })
        .collect()
}

fn render_json(
    crash: &[CrashRow],
    hedge: &[PolicyRow],
    degrade: &[PolicyRow],
    power_mw: f64,
) -> String {
    let mut j = BenchJson::new("exp_faults");
    j.str_field("config", "paper_16x16_250MHz");
    j.str_field("net", "mnist");
    j.field("fault_seed", FAULT_SEED);
    j.raw("power_mw", format!("{power_mw:.1}"));
    j.rows("crash_retry_sweep", crash_json(crash));
    j.rows(
        "hedging_comparison",
        policy_json(hedge, "hedges", "hedge_wins"),
    );
    j.rows(
        "degradation_comparison",
        policy_json(degrade, "degrade_shifts", "served_degraded"),
    );
    j.render()
}

fn print_crash_sweep(rows: &[CrashRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.crash_rate * 100.0),
                r.max_attempts.to_string(),
                r.served.to_string(),
                r.retry_exhausted.to_string(),
                format!("{:.1}%", r.goodput_frac * 100.0),
                r.p99_cycles.to_string(),
                r.crashes.to_string(),
                r.requeues.to_string(),
                format!("{:.1}", r.wasted_uj),
            ]
        })
        .collect();
    print_table(
        "Crash × retry sweep — seeded worker crashes, bounded retry with backoff",
        &[
            "Crash",
            "Attempts",
            "Served",
            "Exhausted",
            "Goodput",
            "p99 cy",
            "Crashes",
            "Requeues",
            "Waste uJ",
        ],
        &table,
    );
}

fn main() {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let table = service_cycles_table(&cfg, &net, 8);
    let per_request = table[8] / 8;
    // Energy per wasted cycle at the calibrated power point:
    // mW × cycles / (MHz × 1e3) = µJ.
    let power_mw = PowerModel::cmos_32nm().estimate(&cfg).total_power_mw();
    let uj_per_cycle = power_mw / (cfg.clock_mhz as f64 * 1e3);

    let requests = bursty_workload(17, 1_500, per_request, table[1]);
    let crash = crash_sweep(&cfg, &net, &requests, per_request, uj_per_cycle);
    print_crash_sweep(&crash);

    // Invariant 3: faults-off rows are identical across retry budgets
    // and bit-exact against a plain ResilienceConfig::none() run — the
    // fault machinery is byte-invisible until armed.
    let clean: Vec<&CrashRow> = crash.iter().filter(|r| r.crash_rate == 0.0).collect();
    for r in &clean {
        assert_eq!(
            r.event_digest, clean[0].event_digest,
            "faults-off behavior must not depend on the retry budget"
        );
    }
    let baseline = simulate_runtime_resilient(
        &cfg,
        &net,
        &runtime(per_request, ResilienceConfig::none()),
        &requests,
    );
    assert_eq!(
        baseline.event_digest, clean[0].event_digest,
        "a zero-rate FaultPlan must be byte-invisible vs ResilienceConfig::none()"
    );
    assert_eq!(baseline.faults.crashes, 0);
    println!(
        "\nFaults-off invisibility: zero-rate rows ≡ ResilienceConfig::none() \
         (digest {:016x})",
        baseline.event_digest
    );

    // Invariant 2: the recovery headline — 1% crash rate, standard
    // 3-attempt budget, goodput stays ≥ 90%.
    let headline = crash
        .iter()
        .find(|r| r.crash_rate == 0.01 && r.max_attempts == 3)
        .expect("swept point");
    assert!(
        headline.goodput_frac >= 0.90,
        "goodput collapsed under 1% crashes with retries: {:.3}",
        headline.goodput_frac
    );
    assert!(
        headline.crashes > 0,
        "the 1% crash plan never fired — the sweep is not exercising recovery"
    );
    println!(
        "Recovery headline: {:.1}% goodput at 1% crash rate with 3 attempts \
         ({} crashes ridden out, {:.1} uJ wasted)",
        headline.goodput_frac * 100.0,
        headline.crashes,
        headline.wasted_uj
    );

    // Invariant 4: hedging fires, wins, and does not worsen the tail
    // (a longer trace so the rare stragglers appear in force).
    let hedge_requests = bursty_workload(19, 4_000, per_request, table[1]);
    let hedge = hedge_rows(&cfg, &net, &hedge_requests, per_request, uj_per_cycle);
    let (off, on) = (&hedge[0], &hedge[1]);
    assert!(on.extra > 0, "no hedges fired under the 12x straggler tail");
    assert!(on.extra_wins > 0, "hedges fired but never won");
    assert!(
        on.p99_cycles <= off.p99_cycles,
        "hedging worsened the tail: p99 {} hedged vs {} unhedged",
        on.p99_cycles,
        off.p99_cycles
    );
    println!(
        "Hedging: p99 {} -> {} cycles under rare 12x stragglers ({} hedges, {} wins, \
         {:.1} uJ duplicate work)",
        off.p99_cycles, on.p99_cycles, on.extra, on.extra_wins, on.wasted_uj
    );

    // Invariant 5: degradation sheds quality, not requests.
    let (degrade_requests, degrade) = degrade_rows(&cfg, &net, per_request, table[1], uj_per_cycle);
    let (doff, don) = (&degrade[0], &degrade[1]);
    assert!(
        don.extra > 0,
        "sustained overload never triggered a quality shift"
    );
    assert!(
        don.served >= doff.served,
        "degradation served fewer requests than full quality: {} vs {}",
        don.served,
        doff.served
    );
    println!(
        "Degradation: {} served at full quality vs {} with shedding ({} shifts, \
         {} requests served degraded) over {} offered",
        doff.served,
        don.served,
        don.extra,
        don.extra_wins,
        degrade_requests.len()
    );

    // Invariant 6: every sweep reruns byte-identically.
    let json = render_json(&crash, &hedge, &degrade, power_mw);
    let rerun_crash = crash_sweep(&cfg, &net, &requests, per_request, uj_per_cycle);
    let rerun_hedge = hedge_rows(&cfg, &net, &hedge_requests, per_request, uj_per_cycle);
    let (_, rerun_degrade) = degrade_rows(&cfg, &net, per_request, table[1], uj_per_cycle);
    let rerun = render_json(&rerun_crash, &rerun_hedge, &rerun_degrade, power_mw);
    assert_eq!(
        json, rerun,
        "fault sweeps are not deterministic: reruns must be byte-identical"
    );
    println!("Determinism: rerun of every fault sweep is byte-identical (digests included)");

    match fs::write("BENCH_faults.json", &json) {
        Ok(()) => println!("\nWrote BENCH_faults.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_faults.json: {e}"),
    }
}
