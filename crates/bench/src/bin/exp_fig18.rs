//! Regenerates **Fig. 18** of the paper: the area and power breakdowns
//! of the CapsAcc accelerator (Data Buffer ≈ 46/47%, Systolic Array
//! ≈ 23%, buffers dominate).

use capsacc_bench::print_table;
use capsacc_core::AcceleratorConfig;
use capsacc_power::PowerModel;

fn main() {
    let report = PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper());
    let paper_area = [
        ("Accumulator", "11%"),
        ("Activation", "5%"),
        ("Data Buffer", "46%"),
        ("Routing Buffer", "11%"),
        ("Weight Buffer", "4%"),
        ("Systolic Array", "23%"),
        ("Other", "<1%"),
    ];
    let paper_power = [
        ("Accumulator", "11%"),
        ("Activation", "3%"),
        ("Data Buffer", "47%"),
        ("Routing Buffer", "11%"),
        ("Weight Buffer", "4%"),
        ("Systolic Array", "23%"),
        ("Other", "<1%"),
    ];
    let area = report.area_breakdown();
    let power = report.power_breakdown();
    let rows: Vec<Vec<String>> = area
        .iter()
        .zip(&power)
        .map(|((name, af), (_, pf))| {
            let pa = paper_area.iter().find(|(n, _)| n == name).expect("row").1;
            let pp = paper_power.iter().find(|(n, _)| n == name).expect("row").1;
            vec![
                (*name).to_owned(),
                format!("{:.1}%", af * 100.0),
                pa.to_owned(),
                format!("{:.1}%", pf * 100.0),
                pp.to_owned(),
            ]
        })
        .collect();
    print_table(
        "Fig. 18 — Area and power breakdown",
        &["Component", "Area", "Paper", "Power", "Paper"],
        &rows,
    );

    let buffers: f64 = area
        .iter()
        .filter(|(n, _)| n.contains("Buffer"))
        .map(|(_, f)| f)
        .sum();
    println!(
        "\nShape check: buffers take {:.0}% of the area; the systolic array\n\
         is about 1/4 of the budget, as the paper observes.",
        buffers * 100.0
    );
}
