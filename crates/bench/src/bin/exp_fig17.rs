//! Regenerates **Fig. 17** of the paper: CapsAcc versus GPU time for
//! every routing-by-agreement step, with the paper-style annotations
//! (Load 9% faster, FC 14% slower, Softmax 3×, Sum 3×, Squash 172×,
//! Update 6×).

use capsacc_bench::{fmt_us, print_table, speedup_label};
use capsacc_capsnet::CapsNetConfig;
use capsacc_core::{timing, AcceleratorConfig};
use capsacc_gpu_model::GpuModel;

fn paper_annotation(label: &str) -> &'static str {
    if label == "Load" {
        "9% faster"
    } else if label == "FC" {
        "14% slower"
    } else if label.starts_with("Softmax") || label.starts_with("Sum") {
        "3x faster"
    } else if label.starts_with("Squash") {
        "172x faster"
    } else {
        "6x faster"
    }
}

fn main() {
    let acc_cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let acc_steps = timing::routing_steps(&net, &acc_cfg);
    let gpu_steps = GpuModel::gtx1070().routing_steps_us(&net);
    assert_eq!(
        acc_steps.len(),
        gpu_steps.len(),
        "step sequences must align"
    );

    let rows: Vec<Vec<String>> = acc_steps
        .iter()
        .zip(&gpu_steps)
        .map(|(a, g)| {
            let label = a.step.to_string();
            assert_eq!(label, g.label, "step order mismatch");
            let acc_us = a.time_us(&acc_cfg);
            vec![
                label.clone(),
                format!("{}", a.cycles),
                fmt_us(acc_us),
                fmt_us(g.time_us),
                speedup_label(g.time_us, acc_us),
                paper_annotation(&label).to_owned(),
            ]
        })
        .collect();
    print_table(
        "Fig. 17 — CapsAcc vs GPU per routing step",
        &[
            "Step",
            "CapsAcc cycles",
            "CapsAcc",
            "GPU",
            "Measured",
            "Paper",
        ],
        &rows,
    );

    let acc_total: f64 = acc_steps.iter().map(|s| s.time_us(&acc_cfg)).sum();
    let gpu_total: f64 = gpu_steps.iter().map(|s| s.time_us).sum();
    println!(
        "\nClassCaps phase total: CapsAcc {} vs GPU {} → {}",
        fmt_us(acc_total),
        fmt_us(gpu_total),
        speedup_label(gpu_total, acc_total)
    );
    println!(
        "Note: our squash speedup exceeds the paper's 172× because the model\n\
         squashes the 10 class capsules on parallel per-column activation\n\
         units; the paper's measured squash implies extra serialization it\n\
         does not specify. The qualitative claim — squash goes from GPU\n\
         bottleneck to negligible — reproduces strongly. See EXPERIMENTS.md."
    );
}
