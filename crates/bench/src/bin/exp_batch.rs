//! Batched weight-resident serving sweep: batch size 1 → 64 at MNIST
//! scale through the closed-form batched model
//! (`timing::full_inference_batch`), reporting amortized cycles/image,
//! weight bytes/image and energy/image, plus a cycle-accurate
//! validation of the engine's `run_batch` at the tiny test scale.
//!
//! Emits `BENCH_batch.json` into the current directory so CI records
//! the perf trajectory (see `ci.sh`).

use capsacc_bench::{fmt_us, json_row, print_table, BenchJson};
use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{timing, Accelerator, AcceleratorConfig, BatchScheduler, MemoryKind};
use capsacc_power::EnergyModel;
use capsacc_tensor::Tensor;

/// One measured row of the MNIST-scale sweep.
struct Row {
    batch: u64,
    cycles_per_image: f64,
    time_per_image_us: f64,
    weight_bytes_per_image: f64,
    weight_buffer_bytes_per_image: f64,
    energy_uj_per_image: f64,
}

fn mnist_sweep(cfg: &AcceleratorConfig, net: &CapsNetConfig, batches: &[u64]) -> Vec<Row> {
    let model = EnergyModel::cmos_32nm();
    let macs_per_image = capsacc_bench::inference_macs(net);
    batches
        .iter()
        .map(|&b| {
            let t = timing::full_inference_batch(cfg, net, b);
            let traffic = timing::batch_traffic_estimate(cfg, net, b);
            let latency_us = cfg.cycles_to_us(t.total_cycles());
            let energy = model.inference_energy(cfg, b * macs_per_image, &traffic, latency_us);
            Row {
                batch: b,
                cycles_per_image: t.cycles_per_image(),
                time_per_image_us: t.time_per_image_us(cfg),
                weight_bytes_per_image: t.weight_bytes_per_image(),
                weight_buffer_bytes_per_image: traffic.bytes_per_image(MemoryKind::WeightBuffer, b),
                energy_uj_per_image: energy.per_inference_uj(b),
            }
        })
        .collect()
}

fn write_json(rows: &[Row]) -> std::io::Result<()> {
    let mut j = BenchJson::new("exp_batch");
    j.str_field("config", "paper_16x16_250MHz");
    j.str_field("net", "mnist");
    j.rows(
        "rows",
        rows.iter()
            .map(|r| {
                json_row(&[
                    ("batch", r.batch.to_string()),
                    ("cycles_per_image", format!("{:.1}", r.cycles_per_image)),
                    ("time_per_image_us", format!("{:.3}", r.time_per_image_us)),
                    (
                        "weight_bytes_per_image",
                        format!("{:.1}", r.weight_bytes_per_image),
                    ),
                    (
                        "weight_buffer_bytes_per_image",
                        format!("{:.1}", r.weight_buffer_bytes_per_image),
                    ),
                    (
                        "energy_uj_per_image",
                        format!("{:.3}", r.energy_uj_per_image),
                    ),
                ])
            })
            .collect(),
    );
    j.write("BENCH_batch.json")
}

/// Cycle-accurate validation at the tiny test scale: `run_batch` must be
/// bit-exact against sequential runs while strictly amortizing the
/// weight-buffer traffic.
fn engine_validation(batches: &[usize]) -> Vec<Vec<String>> {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 0).quantize(cfg.numeric);
    let images: Vec<Tensor<f32>> = (0..*batches.iter().max().expect("non-empty"))
        .map(|s| {
            Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
                ((i[1] * (s + 2) + i[2] * 7 + s) % 11) as f32 / 11.0
            })
        })
        .collect();

    batches
        .iter()
        .map(|&b| {
            let mut sched = BatchScheduler::new(cfg);
            let run = sched
                .run(&net, &qparams, &images[..b])
                .expect("valid batch");
            let mut exact = true;
            for (img, trace) in images[..b].iter().zip(&run.traces) {
                let mut acc = Accelerator::new(cfg);
                exact &= acc.run_inference(&net, &qparams, img).trace == *trace;
            }
            vec![
                b.to_string(),
                format!("{:.0}", run.cycles_per_image()),
                format!("{:.0}", run.weight_buffer_bytes_per_image()),
                if exact { "yes".into() } else { "NO".into() },
            ]
        })
        .collect()
}

fn main() {
    let cfg = AcceleratorConfig::paper();
    let net = CapsNetConfig::mnist();
    let batches = [1u64, 2, 4, 8, 16, 32, 64];
    let rows = mnist_sweep(&cfg, &net, &batches);

    let b1 = &rows[0];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                format!("{:.0}", r.cycles_per_image),
                fmt_us(r.time_per_image_us),
                format!("{:.0}", r.weight_bytes_per_image),
                format!("{:.0}", r.weight_buffer_bytes_per_image),
                format!("{:.1}", r.energy_uj_per_image),
                format!("{:.2}x", b1.cycles_per_image / r.cycles_per_image),
            ]
        })
        .collect();
    print_table(
        "Batched weight-resident serving — MNIST on the 16×16 paper config",
        &[
            "Batch",
            "Cycles/img",
            "Time/img",
            "Wt B/img",
            "WtBuf B/img",
            "µJ/img",
            "Speedup",
        ],
        &table,
    );
    println!(
        "\nWeights are loaded once per batch (layer-major residency), so the\n\
         5.3 MB PrimaryCaps stream and the 1.47 MB ClassCaps FC stream\n\
         amortize across images; routing state is per-image and does not."
    );

    let engine_rows = engine_validation(&[1, 4, 8]);
    print_table(
        "Engine validation — tiny network, cycle-accurate run_batch vs sequential",
        &["Batch", "Cycles/img", "WtBuf B/img", "Bit-exact"],
        &engine_rows,
    );
    assert!(
        engine_rows.iter().all(|r| r[3] == "yes"),
        "run_batch diverged from the sequential engine"
    );

    match write_json(&rows) {
        Ok(()) => println!("\nWrote BENCH_batch.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_batch.json: {e}"),
    }
}
