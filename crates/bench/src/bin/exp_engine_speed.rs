//! Wall-clock speed of the *simulator itself*: the ticked RTL backend
//! vs the bit-identical functional backend on the paper's 16×16 design
//! point at MNIST scale — the first committed wall-clock (host-time)
//! perf trajectory, alongside the simulated-cycle numbers every other
//! experiment records.
//!
//! In-binary asserts (run by `ci.sh`):
//!
//! - the two backends produce **identical** `InferenceRun`s (trace,
//!   layer cycles, routing steps, traffic, memory report) at MNIST
//!   scale — the paper-scale extension of the pinned tiny-scale golden
//!   digests;
//! - the functional backend is at least 10× faster in wall-clock time
//!   (the ISSUE's acceptance bound; the target is ≥50×).
//!
//! Emits `BENCH_engine.json` into the current directory so CI records
//! the wall-clock trajectory with every run (see `ci.sh`). Host times
//! vary run to run — the simulated-cycle fields are the deterministic
//! anchor; the host fields are the point of this experiment.

use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

use capsacc_bench::print_table;
use capsacc_capsnet::{CapsNetConfig, CapsNetParams, QuantizedParams};
use capsacc_core::{Accelerator, AcceleratorConfig, BatchScheduler, EngineBackend, InferenceRun};
use capsacc_tensor::Tensor;

/// One measured backend row.
struct Row {
    backend: &'static str,
    host_ms_per_image: f64,
    sim_cycles_per_image: f64,
    sim_ms_per_image: f64,
    batch: u64,
}

fn mnist_image(net: &CapsNetConfig) -> Tensor<f32> {
    Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * 2 + i[2] * 7) % 11) as f32 / 11.0
    })
}

/// Runs one single-image inference, returning the run and its host
/// time in seconds.
fn run_once(
    cfg: AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    image: &Tensor<f32>,
) -> (InferenceRun, f64) {
    let mut acc = Accelerator::new(cfg);
    let start = Instant::now();
    let run = acc.run_inference(net, qparams, image);
    let elapsed = start.elapsed().as_secs_f64();
    (run, elapsed)
}

fn write_json(rows: &[Row], speedup: f64) -> std::io::Result<()> {
    let mut json = String::from(
        "{\n  \"bench\": \"exp_engine_speed\",\n  \"config\": \"paper_16x16_250MHz\",\n  \
         \"net\": \"mnist\",\n",
    );
    writeln!(
        json,
        "  \"functional_speedup_over_ticked\": {speedup:.1},\n  \"rows\": ["
    )
    .expect("write to string");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"backend\": \"{}\", \"batch\": {}, \"host_ms_per_image\": {:.2}, \
             \"sim_cycles_per_image\": {:.1}, \"sim_ms_per_image\": {:.3}}}{sep}",
            r.backend, r.batch, r.host_ms_per_image, r.sim_cycles_per_image, r.sim_ms_per_image,
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");
    fs::write("BENCH_engine.json", json)
}

fn main() {
    let net = CapsNetConfig::mnist();
    let ticked_cfg = AcceleratorConfig::paper();
    let mut functional_cfg = ticked_cfg;
    functional_cfg.backend = EngineBackend::Functional;
    let qparams = CapsNetParams::generate(&net, 0).quantize(ticked_cfg.numeric);
    let image = mnist_image(&net);

    // Both backends use the same estimator — minimum over the same rep
    // count — and the reps are *interleaved* (ticked, functional,
    // ticked, functional, …) so a degraded machine window (CPU
    // throttling, CI neighbor load) is sampled by both sides instead
    // of skewing whichever backend happened to run during it. One
    // untimed functional warm-up absorbs first-touch page faults.
    const REPS: usize = 3;
    let _ = run_once(functional_cfg, &net, &qparams, &image);
    let (mut ticked_s, mut functional_s) = (f64::INFINITY, f64::INFINITY);
    let (mut ticked_run, mut functional_run) = (None, None);
    for _ in 0..REPS {
        let (run, s) = run_once(ticked_cfg, &net, &qparams, &image);
        ticked_s = ticked_s.min(s);
        ticked_run = Some(run);
        let (run, s) = run_once(functional_cfg, &net, &qparams, &image);
        functional_s = functional_s.min(s);
        functional_run = Some(run);
    }
    let (ticked_run, functional_run) = (
        ticked_run.expect("at least one rep"),
        functional_run.expect("at least one rep"),
    );

    // Bit-identity at paper scale: the entire InferenceRun, not just the
    // functional trace.
    assert_eq!(
        functional_run, ticked_run,
        "functional backend diverged from the ticked RTL reference at MNIST scale"
    );
    let speedup = ticked_s / functional_s;
    assert!(
        speedup >= 10.0,
        "functional backend below the 10x wall-clock bound: {speedup:.1}x \
         ({ticked_s:.3}s ticked vs {functional_s:.3}s functional)"
    );

    // Batched functional serving point: 16 images, weights resident.
    let batch = 16usize;
    let images = vec![image; batch];
    let mut sched = BatchScheduler::new(functional_cfg);
    let start = Instant::now();
    let brun = sched.run(&net, &qparams, &images).expect("valid batch");
    let batch_s = start.elapsed().as_secs_f64();

    let total_cycles: u64 = ticked_run.layers.iter().map(|l| l.cycles()).sum();
    let rows = vec![
        Row {
            backend: "ticked",
            host_ms_per_image: ticked_s * 1e3,
            sim_cycles_per_image: total_cycles as f64,
            sim_ms_per_image: ticked_cfg.cycles_to_us(total_cycles) / 1e3,
            batch: 1,
        },
        Row {
            backend: "functional",
            host_ms_per_image: functional_s * 1e3,
            sim_cycles_per_image: total_cycles as f64,
            sim_ms_per_image: ticked_cfg.cycles_to_us(total_cycles) / 1e3,
            batch: 1,
        },
        Row {
            backend: "functional",
            host_ms_per_image: batch_s * 1e3 / batch as f64,
            sim_cycles_per_image: brun.cycles_per_image(),
            sim_ms_per_image: ticked_cfg.cycles_to_us(brun.total_cycles()) / 1e3 / batch as f64,
            batch: batch as u64,
        },
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.backend.to_string(),
                r.batch.to_string(),
                format!("{:.2}", r.host_ms_per_image),
                format!("{:.0}", r.sim_cycles_per_image),
                format!("{:.3}", r.sim_ms_per_image),
            ]
        })
        .collect();
    print_table(
        "Engine wall-clock speed — MNIST inference on the 16×16 paper config",
        &[
            "Backend",
            "Batch",
            "Host ms/img",
            "Sim cycles/img",
            "Sim ms/img",
        ],
        &table,
    );
    println!(
        "\nBackends are bit-identical (entire InferenceRun asserted equal); the\n\
         functional backend computes each tile's saturating fold directly and\n\
         charges the exact ticked cycle counts: {speedup:.1}x wall-clock speedup\n\
         (acceptance bound 10x, target 50x)."
    );

    match write_json(&rows, speedup) {
        Ok(()) => println!("\nWrote BENCH_engine.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_engine.json: {e}"),
    }
}
