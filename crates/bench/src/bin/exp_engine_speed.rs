//! Wall-clock speed of the *simulator itself*: the ticked RTL backend
//! vs the bit-identical functional backend (scalar and parallel/SIMD)
//! on the paper's 16×16 design point at MNIST scale — the committed
//! wall-clock (host-time) perf trajectory, alongside the
//! simulated-cycle numbers every other experiment records.
//!
//! In-binary asserts (run by `ci.sh`):
//!
//! - ticked, functional-scalar and functional-SIMD produce
//!   **identical** `InferenceRun`s (trace, layer cycles, routing steps,
//!   traffic, memory report) at MNIST scale — the paper-scale extension
//!   of the pinned tiny-scale golden digests;
//! - explicit thread counts 1, 2 and 4 produce byte-identical
//!   `BatchRun`s at MNIST scale (the parallel-equivalence anchor at
//!   full size; random shapes are covered by
//!   `tests/backend_equivalence.rs`);
//! - the functional backend is at least 10× faster than ticked in
//!   wall-clock time, asserted on the **median** (the ISSUE's
//!   acceptance bound; the target is ≥50×);
//! - the SIMD batched path beats the PR 5 functional baseline
//!   (98.20 committed ms/image at batch 16) by ≥5×, again on the
//!   median.
//!
//! Every row records `reps`, the minimum and the median host time. The
//! minimum is the classic "least-noise" estimator but is biased
//! optimistic and unstable under CI neighbor load; the asserts
//! therefore use the median, which a single lucky rep cannot move.
//!
//! Emits `BENCH_engine.json` into the current directory so CI records
//! the wall-clock trajectory with every run (see `ci.sh`). Host times
//! vary run to run — the simulated-cycle fields are the deterministic
//! anchor; the host fields are the point of this experiment.

use std::time::Instant;

use capsacc_bench::{json_row, print_table, BenchJson};
use capsacc_capsnet::{CapsNetConfig, CapsNetParams, QuantizedParams};
use capsacc_core::{
    Accelerator, AcceleratorConfig, BatchRun, BatchScheduler, EngineBackend, FunctionalOptions,
    InferenceRun, SimdMode,
};
use capsacc_tensor::Tensor;

/// Timed reps per variant. Odd, so the median is an actual sample.
const REPS: usize = 3;

/// PR 5's committed functional host time at batch 16 (ms/image), the
/// baseline the ISSUE's ≥5× bound is measured against. PR 5 recorded a
/// min-of-reps estimator; comparing our *median* against its *min* only
/// makes the bound harder to clear.
const PR5_FUNCTIONAL_B16_MS_PER_IMAGE: f64 = 98.20;

/// One measured backend row.
struct Row {
    backend: &'static str,
    batch: u64,
    host_ms_min: f64,
    host_ms_median: f64,
    sim_cycles_per_image: f64,
    sim_ms_per_image: f64,
}

fn mnist_image(net: &CapsNetConfig) -> Tensor<f32> {
    Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * 2 + i[2] * 7) % 11) as f32 / 11.0
    })
}

/// Runs one single-image inference, returning the run and its host
/// time in seconds.
fn run_once(
    cfg: AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    image: &Tensor<f32>,
) -> (InferenceRun, f64) {
    let mut acc = Accelerator::new(cfg);
    let start = Instant::now();
    let run = acc.run_inference(net, qparams, image);
    let elapsed = start.elapsed().as_secs_f64();
    (run, elapsed)
}

/// Runs one batched inference on a fresh scheduler, returning the run
/// and its host time in seconds.
fn run_batch_once(
    cfg: AcceleratorConfig,
    net: &CapsNetConfig,
    qparams: &QuantizedParams,
    images: &[Tensor<f32>],
) -> (BatchRun, f64) {
    let mut sched = BatchScheduler::new(cfg);
    let start = Instant::now();
    let run = sched.run(net, qparams, images).expect("valid batch");
    let elapsed = start.elapsed().as_secs_f64();
    (run, elapsed)
}

/// Minimum and median of a sample set (median of the sorted samples;
/// `REPS` is odd so this is an actual observation, not an average).
fn min_median(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(f64::total_cmp);
    (samples[0], samples[samples.len() / 2])
}

fn write_json(rows: &[Row], speedup_ticked: f64, speedup_pr5: f64) -> std::io::Result<()> {
    let mut j = BenchJson::new("exp_engine_speed");
    j.str_field("config", "paper_16x16_250MHz");
    j.str_field("net", "mnist");
    j.field("reps", REPS);
    j.raw(
        "functional_speedup_over_ticked",
        format!("{speedup_ticked:.1}"),
    );
    j.field(
        "pr5_functional_b16_ms_per_image",
        PR5_FUNCTIONAL_B16_MS_PER_IMAGE,
    );
    j.raw(
        "speedup_over_pr5_functional_baseline",
        format!("{speedup_pr5:.2}"),
    );
    j.rows(
        "rows",
        rows.iter()
            .map(|r| {
                json_row(&[
                    ("backend", format!("\"{}\"", r.backend)),
                    ("batch", r.batch.to_string()),
                    ("host_ms_min", format!("{:.2}", r.host_ms_min)),
                    ("host_ms_median", format!("{:.2}", r.host_ms_median)),
                    (
                        "sim_cycles_per_image",
                        format!("{:.1}", r.sim_cycles_per_image),
                    ),
                    ("sim_ms_per_image", format!("{:.3}", r.sim_ms_per_image)),
                ])
            })
            .collect(),
    );
    j.write("BENCH_engine.json")
}

fn main() {
    let net = CapsNetConfig::mnist();
    let ticked_cfg = AcceleratorConfig::paper();
    let mut simd_cfg = ticked_cfg;
    simd_cfg.backend = EngineBackend::Functional;
    let mut scalar_cfg = simd_cfg;
    scalar_cfg.functional = FunctionalOptions {
        threads: 1,
        simd: SimdMode::Scalar,
        ..FunctionalOptions::default()
    };
    let qparams = CapsNetParams::generate(&net, 0).quantize(ticked_cfg.numeric);
    let image = mnist_image(&net);
    let batch = 16usize;
    let images = vec![image.clone(); batch];

    // All variants use the same estimator — min and median over the
    // same rep count — and the reps are *interleaved* (ticked, scalar,
    // SIMD, …) so a degraded machine window (CPU throttling, CI
    // neighbor load) is sampled by every variant instead of skewing
    // whichever one happened to run during it. One untimed SIMD
    // warm-up absorbs first-touch page faults.
    let _ = run_once(simd_cfg, &net, &qparams, &image);
    // Rep-major: one row of per-variant times per interleaved pass.
    let mut samples = [[0.0f64; 5]; REPS];
    let (mut ticked_run, mut scalar_run, mut simd_run) = (None, None, None);
    let (mut scalar_brun, mut simd_brun) = (None, None);
    for rep in samples.iter_mut() {
        let (run, s) = run_once(ticked_cfg, &net, &qparams, &image);
        rep[0] = s;
        ticked_run = Some(run);
        let (run, s) = run_once(scalar_cfg, &net, &qparams, &image);
        rep[1] = s;
        scalar_run = Some(run);
        let (run, s) = run_once(simd_cfg, &net, &qparams, &image);
        rep[2] = s;
        simd_run = Some(run);
        let (run, s) = run_batch_once(scalar_cfg, &net, &qparams, &images);
        rep[3] = s;
        scalar_brun = Some(run);
        let (run, s) = run_batch_once(simd_cfg, &net, &qparams, &images);
        rep[4] = s;
        simd_brun = Some(run);
    }
    let ticked_run = ticked_run.expect("at least one rep");
    let (scalar_run, simd_run) = (scalar_run.expect("reps"), simd_run.expect("reps"));
    let (scalar_brun, simd_brun) = (scalar_brun.expect("reps"), simd_brun.expect("reps"));

    // Bit-identity at paper scale: the entire InferenceRun, not just
    // the functional trace — for both functional variants.
    assert_eq!(
        scalar_run, ticked_run,
        "functional-scalar backend diverged from the ticked RTL reference at MNIST scale"
    );
    assert_eq!(
        simd_run, ticked_run,
        "functional-SIMD backend diverged from the ticked RTL reference at MNIST scale"
    );
    assert_eq!(
        scalar_brun, simd_brun,
        "scalar and SIMD batched runs diverged at MNIST scale"
    );

    // Parallel equivalence at full MNIST scale: explicit thread counts
    // must produce byte-identical BatchRuns (outputs, cycles, traffic,
    // memory report). Random shapes + thread counts are proptested in
    // tests/backend_equivalence.rs; this is the paper-scale anchor.
    for threads in [1usize, 2, 4] {
        let mut cfg = simd_cfg;
        cfg.functional.threads = threads;
        let (run, _) = run_batch_once(cfg, &net, &qparams, &images);
        assert_eq!(
            run, simd_brun,
            "threads={threads} batched run diverged from the auto-threaded run at MNIST scale"
        );
    }

    let stats: Vec<(f64, f64)> = (0..5)
        .map(|v| min_median(&mut samples.map(|rep| rep[v])))
        .collect();
    let speedup_ticked = stats[0].1 / stats[2].1;
    assert!(
        speedup_ticked >= 10.0,
        "functional backend below the 10x wall-clock bound on the median: {speedup_ticked:.1}x \
         ({:.3}s ticked vs {:.3}s functional)",
        stats[0].1,
        stats[2].1,
    );
    let simd_b16_ms = stats[4].1 * 1e3 / batch as f64;
    let speedup_pr5 = PR5_FUNCTIONAL_B16_MS_PER_IMAGE / simd_b16_ms;
    assert!(
        speedup_pr5 >= 5.0,
        "parallel+SIMD batched path below the 5x bound over the PR 5 functional baseline \
         on the median: {speedup_pr5:.2}x ({simd_b16_ms:.2} ms/img vs \
         {PR5_FUNCTIONAL_B16_MS_PER_IMAGE} ms/img baseline)"
    );

    let total_cycles: u64 = ticked_run.layers.iter().map(|l| l.cycles()).sum();
    let b1_cycles = total_cycles as f64;
    let b1_ms = ticked_cfg.cycles_to_us(total_cycles) / 1e3;
    let b16_cycles = simd_brun.cycles_per_image();
    let b16_ms = ticked_cfg.cycles_to_us(simd_brun.total_cycles()) / 1e3 / batch as f64;
    let row = |backend, batch_n: u64, (min, med): (f64, f64), cyc, sim_ms| Row {
        backend,
        batch: batch_n,
        host_ms_min: min * 1e3 / batch_n as f64,
        host_ms_median: med * 1e3 / batch_n as f64,
        sim_cycles_per_image: cyc,
        sim_ms_per_image: sim_ms,
    };
    let rows = vec![
        row("ticked", 1, stats[0], b1_cycles, b1_ms),
        row("functional-scalar", 1, stats[1], b1_cycles, b1_ms),
        row("functional-simd", 1, stats[2], b1_cycles, b1_ms),
        row("functional-scalar", 16, stats[3], b16_cycles, b16_ms),
        row("functional-simd", 16, stats[4], b16_cycles, b16_ms),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.backend.to_string(),
                r.batch.to_string(),
                format!("{:.2}", r.host_ms_min),
                format!("{:.2}", r.host_ms_median),
                format!("{:.0}", r.sim_cycles_per_image),
                format!("{:.3}", r.sim_ms_per_image),
            ]
        })
        .collect();
    print_table(
        "Engine wall-clock speed — MNIST inference on the 16×16 paper config",
        &[
            "Backend",
            "Batch",
            "Host ms/img (min)",
            "Host ms/img (median)",
            "Sim cycles/img",
            "Sim ms/img",
        ],
        &table,
    );
    println!(
        "\nAll backends are bit-identical (entire InferenceRun asserted equal,\n\
         plus BatchRun equality across threads 1/2/4); the functional backend\n\
         computes each tile's saturating fold directly and charges the exact\n\
         ticked cycle counts. Median speedups: {speedup_ticked:.1}x over ticked\n\
         (bound 10x), {speedup_pr5:.2}x over the PR 5 functional baseline of\n\
         {PR5_FUNCTIONAL_B16_MS_PER_IMAGE} ms/img at batch 16 (bound 5x)."
    );

    match write_json(&rows, speedup_ticked, speedup_pr5) {
        Ok(()) => println!("\nWrote BENCH_engine.json"),
        Err(e) => println!("\nWARNING: could not write BENCH_engine.json: {e}"),
    }
}
