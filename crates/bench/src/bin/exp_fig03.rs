//! Regenerates **Fig. 3** of the paper: the single-dimensional squashing
//! function and its first derivative over `x ∈ [0, 6]`, including the
//! derivative peak the paper reports at `(0.5767, 0.6495)`, plus the
//! hardware squash-LUT approximation error.

use capsacc_bench::print_table;
use capsacc_fixed::{squash_derivative_1d, squash_scalar_1d, NumericConfig, SquashLut};

fn main() {
    // The curve series (the paper plots these on a linear axis).
    let rows: Vec<Vec<String>> = (0..=24)
        .map(|i| {
            let x = i as f32 * 0.25;
            vec![
                format!("{x:.2}"),
                format!("{:.4}", squash_scalar_1d(x)),
                format!("{:.4}", squash_derivative_1d(x)),
            ]
        })
        .collect();
    print_table(
        "Fig. 3 — squash(x) and its first derivative",
        &["x", "squash", "squash'"],
        &rows,
    );

    // Locate the derivative peak numerically.
    let mut best = (0.0f32, 0.0f32);
    for i in 0..60_000 {
        let x = i as f32 * 1e-4;
        let d = squash_derivative_1d(x);
        if d > best.1 {
            best = (x, d);
        }
    }
    println!(
        "\nDerivative peak: ({:.4}, {:.4})   paper: (0.5767, 0.6495)",
        best.0, best.1
    );

    // Hardware LUT fidelity (6-bit data × 5-bit norm → 8-bit out).
    let lut = SquashLut::new(NumericConfig::default());
    println!(
        "Squash LUT: {} entries, max |error| = {:.4} (one Q2.5 LSB = {:.4})",
        SquashLut::ENTRIES,
        lut.max_abs_error(),
        1.0 / 32.0
    );
}
