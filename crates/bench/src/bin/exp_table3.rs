//! Regenerates **Table III** of the paper: area and power of every
//! CapsAcc component.

use capsacc_bench::print_table;
use capsacc_core::AcceleratorConfig;
use capsacc_power::PowerModel;

fn main() {
    let report = PowerModel::cmos_32nm().estimate(&AcceleratorConfig::paper());
    let paper = [
        ("Accumulator", 311_961u64, 22.80),
        ("Activation", 143_045, 5.94),
        ("Data Buffer", 1_332_349, 95.96),
        ("Routing Buffer", 316_226, 22.78),
        ("Weight Buffer", 115_643, 8.34),
        ("Systolic Array", 680_525, 46.09),
        ("Other", 4_330, 0.13),
    ];
    let rows: Vec<Vec<String>> = report
        .components
        .iter()
        .map(|c| {
            let (_, pa, pp) = paper
                .iter()
                .find(|(n, _, _)| *n == c.name)
                .expect("paper row");
            vec![
                c.name.to_owned(),
                format!("{:.0}", c.area_um2),
                pa.to_string(),
                format!("{:.2}", c.power_mw),
                format!("{pp:.2}"),
            ]
        })
        .collect();
    print_table(
        "Table III — Area and power per component",
        &[
            "Component",
            "Area [µm²]",
            "Paper [µm²]",
            "Power [mW]",
            "Paper [mW]",
        ],
        &rows,
    );
    println!(
        "\nTotals: {:.2} mm², {:.1} mW (paper: 2.90 mm², 202 mW)",
        report.total_area_mm2(),
        report.total_power_mw()
    );
}
