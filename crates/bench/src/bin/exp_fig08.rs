//! Regenerates **Fig. 8** of the paper: layer-wise GPU inference time of
//! the MNIST CapsuleNet (calibrated GTX1070 model).

use capsacc_bench::{fmt_us, log_bar, print_table};
use capsacc_capsnet::CapsNetConfig;
use capsacc_gpu_model::GpuModel;

fn main() {
    let gpu = GpuModel::gtx1070();
    let net = CapsNetConfig::mnist();
    let t = gpu.layer_times_us(&net);
    let max = t.total();
    let mut rows: Vec<Vec<String>> = t
        .rows()
        .into_iter()
        .map(|(name, us)| vec![name.to_owned(), fmt_us(us), log_bar(us, max, 40)])
        .collect();
    rows.push(vec![
        "Total".into(),
        fmt_us(t.total()),
        log_bar(t.total(), max, 40),
    ]);
    print_table(
        "Fig. 8 — Layer-wise GPU inference time (log-scale bars)",
        &["Layer", "Time", ""],
        &rows,
    );
    println!(
        "\nShape check (paper Sec. III-B): ClassCaps ≈ 10× slower than the\n\
         other layers — measured ratio: {:.1}×",
        t.class_caps / t.conv1.max(t.primary_caps)
    );
}
