//! Criterion bench for the reference CapsuleNet: float and bit-exact
//! quantized inference on the scaled network configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use capsacc_capsnet::{
    infer_f32, infer_q8, CapsNetConfig, CapsNetParams, QuantPipeline, RoutingVariant,
};
use capsacc_fixed::NumericConfig;
use capsacc_mnist::SyntheticMnist;
use capsacc_tensor::Tensor;

fn image_for(net: &CapsNetConfig) -> Tensor<f32> {
    Tensor::from_fn(&[1, net.input_side, net.input_side], |i| {
        ((i[1] * 3 + i[2] * 5) % 11) as f32 / 11.0
    })
}

fn bench_infer(c: &mut Criterion) {
    for (label, net) in [
        ("tiny", CapsNetConfig::tiny()),
        ("small", CapsNetConfig::small()),
    ] {
        let params = CapsNetParams::generate(&net, 42);
        let ncfg = NumericConfig::default();
        let qparams = params.quantize(ncfg);
        let pipe = QuantPipeline::new(ncfg);
        let image = image_for(&net);
        c.bench_function(&format!("capsnet/infer_f32/{label}"), |b| {
            b.iter(|| {
                infer_f32(
                    black_box(&net),
                    black_box(&params),
                    black_box(&image),
                    RoutingVariant::SkipFirstSoftmax,
                )
            })
        });
        c.bench_function(&format!("capsnet/infer_q8/{label}"), |b| {
            b.iter(|| {
                infer_q8(
                    black_box(&net),
                    black_box(&qparams),
                    black_box(&pipe),
                    black_box(&image),
                    RoutingVariant::SkipFirstSoftmax,
                )
            })
        });
    }
}

fn bench_dataset(c: &mut Criterion) {
    let ds = SyntheticMnist::new(7);
    c.bench_function("mnist/rasterize_sample", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            ds.sample(black_box(i))
        })
    });
}

criterion_group!(benches, bench_infer, bench_dataset);
criterion_main!(benches);
