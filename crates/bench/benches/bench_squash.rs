//! Criterion bench for the squash path (Fig. 3 substrate): the exact
//! float squash versus the hardware LUT pipeline (norm unit + 2048-entry
//! squash LUT), plus the softmax unit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use capsacc_capsnet::QuantPipeline;
use capsacc_fixed::NumericConfig;
use capsacc_tensor::ops;

fn bench_squash(c: &mut Criterion) {
    let pipe = QuantPipeline::new(NumericConfig::default());
    let v16_q: Vec<i8> = (0..16).map(|i| (i * 7 - 50) as i8).collect();
    let v16_f: Vec<f32> = v16_q.iter().map(|&x| x as f32 / 32.0).collect();

    c.bench_function("squash/f32/16d", |b| {
        b.iter(|| ops::squash(black_box(&v16_f)))
    });
    c.bench_function("squash/lut/16d", |b| {
        b.iter(|| pipe.squash_vec(black_box(&v16_q)))
    });
    c.bench_function("squash/norm_unit/16d", |b| {
        b.iter(|| pipe.norm8(black_box(&v16_q)))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let pipe = QuantPipeline::new(NumericConfig::default());
    let logits_q: Vec<i8> = (0..10).map(|i| (i * 9 - 40) as i8).collect();
    let logits_f: Vec<f32> = logits_q.iter().map(|&x| x as f32 / 16.0).collect();
    c.bench_function("softmax/f32/10way", |b| {
        b.iter(|| ops::softmax(black_box(&logits_f)))
    });
    c.bench_function("softmax/exp_lut/10way", |b| {
        b.iter(|| pipe.softmax(black_box(&logits_q)))
    });
}

fn bench_lut_construction(c: &mut Criterion) {
    c.bench_function("lut/pipeline_construction", |b| {
        b.iter(|| QuantPipeline::new(black_box(NumericConfig::default())))
    });
}

criterion_group!(benches, bench_squash, bench_softmax, bench_lut_construction);
criterion_main!(benches);
