//! Criterion bench for the layer-level timing models behind Figs. 8 and
//! 16: the analytical CapsAcc cycle model and the calibrated GPU model,
//! evaluated at MNIST scale and across array sizes (ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use capsacc_capsnet::CapsNetConfig;
use capsacc_core::{timing, AcceleratorConfig};
use capsacc_gpu_model::GpuModel;

fn bench_full_inference_model(c: &mut Criterion) {
    let net = CapsNetConfig::mnist();
    let cfg = AcceleratorConfig::paper();
    c.bench_function("timing/full_inference/mnist", |b| {
        b.iter(|| timing::full_inference(black_box(&cfg), black_box(&net)))
    });
    let gpu = GpuModel::gtx1070();
    c.bench_function("gpu_model/layer_times/mnist", |b| {
        b.iter(|| gpu.layer_times_us(black_box(&net)))
    });
}

fn bench_array_size_sweep(c: &mut Criterion) {
    let net = CapsNetConfig::mnist();
    let mut group = c.benchmark_group("timing/array_size_sweep");
    for size in [8usize, 16, 32] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        group.bench_with_input(BenchmarkId::from_parameter(size), &cfg, |b, cfg| {
            b.iter(|| timing::full_inference(black_box(cfg), black_box(&net)).total_cycles())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_inference_model, bench_array_size_sweep);
criterion_main!(benches);
