//! Criterion bench for the cycle-accurate systolic-array engine: how
//! fast the RTL-level simulation itself runs (PE ticks per second), and
//! the cost of a full cycle-accurate tiny-network inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{Accelerator, AcceleratorConfig, ActivationKind, EngineBackend, SystolicArray};
use capsacc_tensor::Tensor;

fn bench_tile_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/matmul");
    for size in [4usize, 8, 16] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        group.bench_with_input(BenchmarkId::new("square", size), &cfg, |b, cfg| {
            b.iter(|| {
                let mut acc = Accelerator::new(*cfg);
                acc.matmul(
                    &|m, k| ((m * 7 + k) % 100) as i8,
                    &|k, n| ((k * 3 + n) % 50) as i8,
                    black_box(32),
                    black_box(32),
                    black_box(32),
                    None,
                    6,
                    ActivationKind::Identity,
                )
            })
        });
    }
    group.finish();
}

fn bench_raw_stream_scratch_reuse(c: &mut Criterion) {
    // Regression guard for the per-edge allocation hoist: `tick` used to
    // allocate five Vecs per clock edge, and `stream`/`load_weights`
    // rebuilt their staging buffers per call. This pins the per-call
    // cost of the convolutional reuse pattern (load once, stream many
    // times on one long-lived array) so an accidental reintroduction of
    // per-edge allocation shows up as a step change in this number.
    let mut arr = SystolicArray::new(16, 16);
    let tile: Vec<Vec<i8>> = (0..16)
        .map(|r| (0..16).map(|c| ((r * 16 + c) % 251) as i8).collect())
        .collect();
    let tile_refs: Vec<&[i8]> = tile.iter().map(|r| r.as_slice()).collect();
    arr.load_weights(&tile_refs);
    let data: Vec<Vec<i8>> = (0..64)
        .map(|m| {
            (0..16)
                .map(|k| ((m * 31 + k * 7) % 127) as i8 - 64)
                .collect()
        })
        .collect();
    // Scratch reuse must be invisible: repeated identical streams are
    // bit-identical (cheap sanity assert, not a timed section).
    assert_eq!(arr.stream(&data), arr.stream(&data));
    c.bench_function("systolic/stream_64rows_16x16_reused", |b| {
        b.iter(|| arr.stream(black_box(&data)))
    });
    c.bench_function("systolic/load_weights_16x16_reused", |b| {
        b.iter(|| arr.load_weights(black_box(&tile_refs)))
    });
}

fn bench_backend_matmul(c: &mut Criterion) {
    // Ticked vs functional on the same 16x16 matmul: the wall-clock gap
    // the `exp_engine_speed` experiment measures at full-inference
    // scale, visible here at tile scale.
    let mut group = c.benchmark_group("engine/backend_matmul_64x64x64");
    for (label, backend) in [
        ("ticked", EngineBackend::Ticked),
        ("functional", EngineBackend::Functional),
    ] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.backend = backend;
        group.bench_with_input(BenchmarkId::new("backend", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut acc = Accelerator::new(*cfg);
                acc.matmul(
                    &|m, k| ((m * 7 + k) % 100) as i8,
                    &|k, n| ((k * 3 + n) % 50) as i8,
                    black_box(64),
                    black_box(64),
                    black_box(64),
                    None,
                    6,
                    ActivationKind::Identity,
                )
            })
        });
    }
    group.finish();
}

fn bench_full_cycle_accurate_inference(c: &mut Criterion) {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
    c.bench_function("engine/full_inference/tiny_4x4", |b| {
        b.iter(|| {
            let mut acc = Accelerator::new(cfg);
            acc.run_inference(black_box(&net), black_box(&qparams), black_box(&image))
        })
    });
}

criterion_group!(
    benches,
    bench_tile_matmul,
    bench_raw_stream_scratch_reuse,
    bench_backend_matmul,
    bench_full_cycle_accurate_inference
);
criterion_main!(benches);
