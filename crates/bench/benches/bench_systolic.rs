//! Criterion bench for the cycle-accurate systolic-array engine: how
//! fast the RTL-level simulation itself runs (PE ticks per second), and
//! the cost of a full cycle-accurate tiny-network inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
use capsacc_core::{Accelerator, AcceleratorConfig, ActivationKind};
use capsacc_tensor::Tensor;

fn bench_tile_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/matmul");
    for size in [4usize, 8, 16] {
        let mut cfg = AcceleratorConfig::paper();
        cfg.rows = size;
        cfg.cols = size;
        cfg.activation_units = size;
        group.bench_with_input(BenchmarkId::new("square", size), &cfg, |b, cfg| {
            b.iter(|| {
                let mut acc = Accelerator::new(*cfg);
                acc.matmul(
                    &|m, k| ((m * 7 + k) % 100) as i8,
                    &|k, n| ((k * 3 + n) % 50) as i8,
                    black_box(32),
                    black_box(32),
                    black_box(32),
                    None,
                    6,
                    ActivationKind::Identity,
                )
            })
        });
    }
    group.finish();
}

fn bench_full_cycle_accurate_inference(c: &mut Criterion) {
    let net = CapsNetConfig::tiny();
    let cfg = AcceleratorConfig::test_4x4();
    let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
    let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
    c.bench_function("engine/full_inference/tiny_4x4", |b| {
        b.iter(|| {
            let mut acc = Accelerator::new(cfg);
            acc.run_inference(black_box(&net), black_box(&qparams), black_box(&image))
        })
    });
}

criterion_group!(
    benches,
    bench_tile_matmul,
    bench_full_cycle_accurate_inference
);
criterion_main!(benches);
