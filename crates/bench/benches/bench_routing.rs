//! Criterion bench for routing-by-agreement (Figs. 9 and 17 substrate):
//! the float and quantized routing implementations, original versus
//! optimized variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use capsacc_capsnet::{route_f32, RoutingVariant};
use capsacc_tensor::Tensor;

fn u_hat(in_caps: usize, classes: usize, dim: usize) -> Tensor<f32> {
    Tensor::from_fn(&[in_caps, classes, dim], |i| {
        let v = (i[0] * 31 + i[1] * 17 + i[2] * 7) % 13;
        v as f32 / 13.0 - 0.5
    })
}

fn bench_route_f32(c: &mut Criterion) {
    // MNIST-shaped routing: 1152 capsules → 10 classes × 16 dims.
    let uh = u_hat(1152, 10, 16);
    c.bench_function("routing/f32/original/mnist", |b| {
        b.iter(|| route_f32(black_box(&uh), 3, RoutingVariant::Original))
    });
    c.bench_function("routing/f32/skip_first_softmax/mnist", |b| {
        b.iter(|| route_f32(black_box(&uh), 3, RoutingVariant::SkipFirstSoftmax))
    });
}

fn bench_route_iterations(c: &mut Criterion) {
    let uh = u_hat(256, 10, 16);
    let mut group = c.benchmark_group("routing/f32/iterations");
    for iters in [1usize, 3, 5] {
        group.bench_function(format!("{iters}"), |b| {
            b.iter(|| route_f32(black_box(&uh), iters, RoutingVariant::SkipFirstSoftmax))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route_f32, bench_route_iterations);
criterion_main!(benches);
