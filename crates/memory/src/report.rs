//! Counters produced by the memory subsystem.

use std::fmt;

/// The three scratchpad memories of the hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SpmKind {
    /// The Data Buffer scratchpad.
    Data,
    /// The Weight Buffer scratchpad (fed by the DRAM prefetcher).
    Weight,
    /// The Accumulator scratchpad backing the per-column FIFOs.
    Accumulator,
}

impl SpmKind {
    /// All kinds, in display order.
    pub const ALL: [SpmKind; 3] = [SpmKind::Data, SpmKind::Weight, SpmKind::Accumulator];
}

impl fmt::Display for SpmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpmKind::Data => "Data SPM",
            SpmKind::Weight => "Weight SPM",
            SpmKind::Accumulator => "Accumulator SPM",
        };
        f.write_str(s)
    }
}

/// Activity counters for one scratchpad.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SpmActivity {
    /// Bytes read out of the SPM.
    pub read_bytes: u64,
    /// Bytes written into the SPM.
    pub write_bytes: u64,
    /// Cycles at least one bank was actively serving accesses — the
    /// DESCNet power-gating model keys leakage to this.
    pub busy_cycles: u64,
}

impl SpmActivity {
    /// Total bytes moved through the SPM.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Aggregate report of the memory hierarchy: stall decomposition,
/// off-chip traffic split and per-SPM activity.
///
/// Under [`crate::MemoryMode::Ideal`] every stall field stays zero but
/// the traffic and activity counters still accumulate, so the on-chip /
/// off-chip split is measurable even on the ideal design point.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MemReport {
    /// Total cycles the array waited on the memory hierarchy
    /// (`bank_stall_cycles + prefetch_stall_cycles`).
    pub stall_cycles: u64,
    /// Stalls from SPM bank/port bandwidth shortfalls.
    pub bank_stall_cycles: u64,
    /// Stalls from exposed DRAM fills (tile prefetch misses plus input
    /// staging).
    pub prefetch_stall_cycles: u64,
    /// DRAM fill cycles hidden behind compute by the prefetcher.
    pub hidden_fill_cycles: u64,
    /// Off-chip bytes fetched for weights.
    pub dram_weight_bytes: u64,
    /// Off-chip bytes fetched for input data.
    pub dram_data_bytes: u64,
    /// Per-SPM activity, indexed like [`SpmKind::ALL`].
    pub spm: [SpmActivity; 3],
}

impl MemReport {
    fn index(kind: SpmKind) -> usize {
        SpmKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind present in ALL")
    }

    /// Activity of one scratchpad.
    pub fn spm(&self, kind: SpmKind) -> SpmActivity {
        self.spm[Self::index(kind)]
    }

    /// Mutable activity of one scratchpad.
    pub(crate) fn spm_mut(&mut self, kind: SpmKind) -> &mut SpmActivity {
        &mut self.spm[Self::index(kind)]
    }

    /// Total off-chip bytes (weights + data).
    pub fn offchip_bytes(&self) -> u64 {
        self.dram_weight_bytes + self.dram_data_bytes
    }

    /// Returns the difference `self − earlier`, counter by counter: the
    /// activity that occurred after `earlier` was snapshotted from the
    /// same counter stream.
    ///
    /// # Panics
    ///
    /// Panics if any counter of `earlier` exceeds its counterpart in
    /// `self` (`earlier` is not a prior snapshot).
    pub fn since(&self, earlier: &MemReport) -> MemReport {
        let sub = |a: u64, b: u64| a.checked_sub(b).expect("snapshot is not a prior state");
        let mut out = MemReport {
            stall_cycles: sub(self.stall_cycles, earlier.stall_cycles),
            bank_stall_cycles: sub(self.bank_stall_cycles, earlier.bank_stall_cycles),
            prefetch_stall_cycles: sub(self.prefetch_stall_cycles, earlier.prefetch_stall_cycles),
            hidden_fill_cycles: sub(self.hidden_fill_cycles, earlier.hidden_fill_cycles),
            dram_weight_bytes: sub(self.dram_weight_bytes, earlier.dram_weight_bytes),
            dram_data_bytes: sub(self.dram_data_bytes, earlier.dram_data_bytes),
            spm: [SpmActivity::default(); 3],
        };
        for ((o, a), b) in out.spm.iter_mut().zip(&self.spm).zip(&earlier.spm) {
            o.read_bytes = sub(a.read_bytes, b.read_bytes);
            o.write_bytes = sub(a.write_bytes, b.write_bytes);
            o.busy_cycles = sub(a.busy_cycles, b.busy_cycles);
        }
        out
    }

    /// Returns this report with every counter multiplied by `k` — the
    /// exact aggregate of `k` identical transaction sequences (each
    /// matmul replay restarts the prefetch timeline, so repeats are
    /// bit-identical).
    pub fn scaled(&self, k: u64) -> MemReport {
        let mut out = MemReport {
            stall_cycles: self.stall_cycles * k,
            bank_stall_cycles: self.bank_stall_cycles * k,
            prefetch_stall_cycles: self.prefetch_stall_cycles * k,
            hidden_fill_cycles: self.hidden_fill_cycles * k,
            dram_weight_bytes: self.dram_weight_bytes * k,
            dram_data_bytes: self.dram_data_bytes * k,
            spm: self.spm,
        };
        for a in out.spm.iter_mut() {
            a.read_bytes *= k;
            a.write_bytes *= k;
            a.busy_cycles *= k;
        }
        out
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &MemReport) {
        self.stall_cycles += other.stall_cycles;
        self.bank_stall_cycles += other.bank_stall_cycles;
        self.prefetch_stall_cycles += other.prefetch_stall_cycles;
        self.hidden_fill_cycles += other.hidden_fill_cycles;
        self.dram_weight_bytes += other.dram_weight_bytes;
        self.dram_data_bytes += other.dram_data_bytes;
        for (a, b) in self.spm.iter_mut().zip(&other.spm) {
            a.read_bytes += b.read_bytes;
            a.write_bytes += b.write_bytes;
            a.busy_cycles += b.busy_cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_merge_roundtrip() {
        let mut a = MemReport {
            stall_cycles: 10,
            bank_stall_cycles: 4,
            prefetch_stall_cycles: 6,
            hidden_fill_cycles: 20,
            dram_weight_bytes: 100,
            dram_data_bytes: 50,
            ..MemReport::default()
        };
        a.spm_mut(SpmKind::Weight).read_bytes = 30;
        let snapshot = a;
        a.merge(&snapshot);
        let delta = a.since(&snapshot);
        assert_eq!(delta, snapshot);
        assert_eq!(delta.spm(SpmKind::Weight).read_bytes, 30);
        assert_eq!(delta.offchip_bytes(), 150);
        // scaled(k) == k merges.
        let mut thrice = snapshot;
        thrice.merge(&snapshot);
        thrice.merge(&snapshot);
        assert_eq!(snapshot.scaled(3), thrice);
        assert_eq!(snapshot.scaled(1), snapshot);
    }

    #[test]
    #[should_panic(expected = "not a prior state")]
    fn since_rejects_non_snapshots() {
        let a = MemReport::default();
        let b = MemReport {
            stall_cycles: 1,
            ..MemReport::default()
        };
        let _ = a.since(&b);
    }

    #[test]
    fn display_names() {
        assert_eq!(SpmKind::Weight.to_string(), "Weight SPM");
        assert_eq!(SpmKind::ALL.len(), 3);
    }
}
