//! The memory subsystem behind the engine's tile schedule.

use crate::dram::DramConfig;
use crate::prefetch::PrefetchPipeline;
use crate::report::{MemReport, SpmKind};
use crate::spm::SpmConfig;
use capsacc_faults::FaultPlan;
use capsacc_telemetry::Recorder;
use capsacc_tensor::u64_from;

/// Bytes one 25-bit accumulator entry occupies in the Accumulator SPM
/// (padded to a 32-bit word).
pub const ACC_ENTRY_BYTES: u64 = 4;

/// Fidelity of the memory model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemoryMode {
    /// "IdealMemory": infinite bandwidth, zero latency. Traffic and
    /// activity counters still accumulate, but every stall is zero —
    /// this reproduces the pre-memory engine's cycle counts exactly.
    Ideal,
    /// The full banked-SPM + DRAM + prefetch model.
    Modeled,
}

/// Static configuration of the whole hierarchy.
///
/// # Example
///
/// ```
/// use capsacc_memory::{MemoryConfig, MemoryMode};
/// let ideal = MemoryConfig::ideal();
/// assert_eq!(ideal.mode, MemoryMode::Ideal);
/// let paper = MemoryConfig::paper();
/// assert_eq!(paper.mode, MemoryMode::Modeled);
/// paper.validate().expect("paper memory config is valid");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemoryConfig {
    /// Model fidelity.
    pub mode: MemoryMode,
    /// The Data Buffer scratchpad.
    pub data_spm: SpmConfig,
    /// The Weight Buffer scratchpad (target of the DRAM prefetcher).
    pub weight_spm: SpmConfig,
    /// The Accumulator scratchpad.
    pub acc_spm: SpmConfig,
    /// The off-chip channel.
    pub dram: DramConfig,
    /// Tile-buffer slots in the weight prefetcher (1 = no prefetch,
    /// 2 = double-buffered).
    pub prefetch_buffers: usize,
    /// DESCNet-style sector power gating: idle SPM banks drop to
    /// retention leakage (an energy-model switch; it does not change
    /// timing).
    pub power_gating: bool,
}

impl MemoryConfig {
    /// The finite design point matched to the paper's Table II buffers:
    /// 256 KiB / 24 KiB / 8 KiB scratchpads with enough bank-port
    /// bandwidth for the 16×16 array, a double-buffered weight
    /// prefetcher and an LPDDR-class DRAM channel.
    pub fn paper() -> Self {
        Self {
            mode: MemoryMode::Modeled,
            data_spm: SpmConfig {
                bytes: 256 * 1024,
                banks: 8,
                ports_per_bank: 1,
                word_bytes: 8,
            },
            weight_spm: SpmConfig {
                bytes: 24 * 1024,
                banks: 4,
                ports_per_bank: 1,
                word_bytes: 4,
            },
            acc_spm: SpmConfig {
                bytes: 8 * 1024,
                banks: 4,
                ports_per_bank: 2,
                word_bytes: 16,
            },
            // 16 B/cycle at 250 MHz = 4 GB/s, 64 B bursts, ~0.5 µs
            // first-access latency.
            dram: DramConfig {
                latency_cycles: 120,
                bytes_per_cycle: 16,
                burst_bytes: 64,
            },
            prefetch_buffers: 2,
            power_gating: true,
        }
    }

    /// The "IdealMemory" configuration: same structural parameters as
    /// [`MemoryConfig::paper`] but with stalls disabled everywhere.
    pub fn ideal() -> Self {
        Self {
            mode: MemoryMode::Ideal,
            ..Self::paper()
        }
    }

    /// Whether this is the ideal (stall-free) model.
    pub fn is_ideal(&self) -> bool {
        self.mode == MemoryMode::Ideal
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint in any
    /// SPM, the DRAM channel or the prefetcher.
    pub fn validate(&self) -> Result<(), String> {
        self.data_spm.validate()?;
        self.weight_spm.validate()?;
        self.acc_spm.validate()?;
        self.dram.validate()?;
        if self.prefetch_buffers == 0 {
            return Err("at least one prefetch tile buffer required".into());
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    /// Ideal memory — the backward-compatible default.
    fn default() -> Self {
        Self::ideal()
    }
}

/// One tiled matmul as the engine schedules it: `batch · m` data rows
/// stream against `ceil(k/rows) × ceil(n/cols)` weight tiles, K-major
/// within each N-tile (the exact loop nest of
/// `Accelerator::matmul_batch` in `capsacc-core`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MatmulGeometry {
    /// Streamed data rows per image.
    pub m: usize,
    /// Reduction length.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Images sharing the resident weight tiles.
    pub batch: usize,
    /// Systolic-array rows.
    pub rows: usize,
    /// Systolic-array columns.
    pub cols: usize,
    /// Whether the weight operand streams in from DRAM through the
    /// prefetcher (true for the network's parameter layers) or is
    /// already on chip (routing operands such as `û` and `v_j`).
    pub weights_offchip: bool,
    /// The tile schedule the stalls are added on top of. This sizes the
    /// per-tile window the prefetcher can hide DRAM fills behind: the
    /// ticked engine executes tiles serially and passes
    /// [`TileSchedule::Serial`]; the closed-form model passes its own
    /// schedule so stalls stay consistent with its base cycle count.
    pub schedule: TileSchedule,
}

/// The compute schedule whose per-tile windows DRAM fills hide behind —
/// each variant's windows sum exactly to the matching closed-form cycle
/// formula.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TileSchedule {
    /// Every tile pays its own load and drain (the ticked engine).
    Serial,
    /// Consecutive K-tiles stream back-to-back; load/drain once per
    /// N-tile (the paper's "full throttle" dataflow).
    Pipelined,
    /// The weight-reuse ablation: the tile reloads before every data
    /// row, so each tile occupies the array far longer.
    ReloadPerRow,
}

/// Outcome of a fault-injected weight staging: the exposed cycles plus
/// how many bursts were retried at each layer of the hierarchy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct StageOutcome {
    /// Exposed cycles: the base fill plus every recovery re-transfer.
    pub cycles: u64,
    /// DRAM bursts that errored and crossed the channel again.
    pub dram_rebursts: u64,
    /// SPM sectors that failed parity and were re-staged from DRAM.
    pub spm_restages: u64,
}

/// The three scratchpads, the DRAM channel and the prefetcher, driven
/// through the same tile schedule by both the cycle-accurate engine and
/// the closed-form timing model — which is what makes the two agree
/// exactly.
#[derive(Clone, PartialEq, Debug)]
pub struct MemorySubsystem {
    cfg: MemoryConfig,
    pipeline: PrefetchPipeline,
    report: MemReport,
}

impl MemorySubsystem {
    /// Builds a subsystem instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MemoryConfig::validate`].
    pub fn new(cfg: MemoryConfig) -> Self {
        cfg.validate().expect("invalid memory configuration");
        Self {
            pipeline: PrefetchPipeline::new(cfg.prefetch_buffers),
            report: MemReport::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Cumulative counters since construction.
    pub fn report(&self) -> MemReport {
        self.report
    }

    /// Replays one matmul's tile schedule through the hierarchy and
    /// returns the stall cycles it adds on top of the compute schedule.
    /// Counters (traffic, busy cycles, off-chip bytes) accumulate in
    /// [`MemorySubsystem::report`]; under [`MemoryMode::Ideal`] the
    /// returned stall is always zero.
    ///
    /// The prefetcher timeline restarts per matmul: the first tile of
    /// every stream pays its DRAM fill cold, subsequent fills overlap
    /// the previous tiles' compute.
    pub fn matmul(&mut self, g: &MatmulGeometry) -> u64 {
        self.pipeline.begin_stream();
        let kk = g.k.div_ceil(g.rows.max(1));
        let mut stalls = 0u64;
        for n0 in (0..g.n).step_by(g.cols.max(1)) {
            let nt = g.cols.min(g.n - n0);
            for (kt_idx, k0) in (0..g.k).step_by(g.rows.max(1)).enumerate() {
                let kt = g.rows.min(g.k - k0);
                let compute = self.tile_compute_window(g, kt_idx, kk);
                stalls += self.tile(kt, nt, kt_idx == 0, compute, g);
            }
        }
        stalls
    }

    /// Array cycles one tile occupies in the target compute schedule —
    /// the window the next tile's DRAM fill can hide behind. Per
    /// [`TileSchedule`], the per-tile windows sum exactly to the
    /// matching closed-form cycle formula: serial tiles each pay their
    /// own load and drain; pipelined K-tiles stream back-to-back,
    /// paying load/drain once per N-tile; the reuse ablation reloads
    /// the tile before every data row (and drains once per image).
    fn tile_compute_window(&self, g: &MatmulGeometry, kt_idx: usize, kk: usize) -> u64 {
        let stream = u64_from(g.batch * g.m);
        let load = u64_from(g.rows) + 1;
        let drain = u64_from(g.rows + g.cols);
        match g.schedule {
            TileSchedule::Serial => load + stream + drain,
            TileSchedule::Pipelined => {
                let mut window = if kt_idx == 0 {
                    load + stream
                } else {
                    stream.max(load)
                };
                if kt_idx + 1 == kk {
                    window += drain;
                }
                window
            }
            TileSchedule::ReloadPerRow => stream * load + stream + u64_from(g.batch) * drain,
        }
    }

    /// One weight tile: `kt × nt` weights loaded (from DRAM when
    /// off-chip), `batch · m` data rows of `kt` bytes streamed, and the
    /// accumulator FIFOs written (and read back when folding a non-first
    /// K-tile).
    fn tile(
        &mut self,
        kt: usize,
        nt: usize,
        first_fold: bool,
        compute_window: u64,
        g: &MatmulGeometry,
    ) -> u64 {
        let weight_bytes = u64_from(kt * nt);
        let data_bytes = u64_from(g.batch * g.m * kt);
        let acc_write_bytes = u64_from(g.batch * g.m * nt) * ACC_ENTRY_BYTES;
        let acc_read_bytes = if first_fold { 0 } else { acc_write_bytes };

        let w_busy = self.cfg.weight_spm.burst_cycles(weight_bytes);
        let d_busy = self.cfg.data_spm.burst_cycles(data_bytes);
        let a_busy = self
            .cfg
            .acc_spm
            .burst_cycles(acc_write_bytes + acc_read_bytes);

        {
            let w = self.report.spm_mut(SpmKind::Weight);
            w.read_bytes += weight_bytes;
            w.busy_cycles += w_busy;
            if g.weights_offchip {
                w.write_bytes += weight_bytes; // the prefetcher's fill
            }
        }
        {
            let d = self.report.spm_mut(SpmKind::Data);
            d.read_bytes += data_bytes;
            d.busy_cycles += d_busy;
        }
        {
            let a = self.report.spm_mut(SpmKind::Accumulator);
            a.write_bytes += acc_write_bytes;
            a.read_bytes += acc_read_bytes;
            a.busy_cycles += a_busy;
        }
        if g.weights_offchip {
            self.report.dram_weight_bytes += weight_bytes;
        }
        if self.cfg.is_ideal() {
            return 0;
        }

        // Bank/port shortfalls: the array wants one nt-byte weight row
        // per load edge (kt edges) and kt data bytes + nt accumulator
        // entries per stream edge (batch·m edges).
        let weight_edges = u64_from(kt);
        let stream_edges = u64_from(g.batch * g.m);
        let bank_stall = w_busy.saturating_sub(weight_edges)
            + d_busy.saturating_sub(stream_edges)
            + a_busy.saturating_sub(stream_edges);

        // The tile's compute window, stretched by the bank stalls — all
        // of which the next tile's DRAM fill can hide behind.
        let compute = compute_window + bank_stall;
        let fill = if g.weights_offchip {
            self.cfg.dram.transfer_cycles(weight_bytes)
        } else {
            0
        };
        let outcome = self.pipeline.tile(fill, compute);

        self.report.bank_stall_cycles += bank_stall;
        self.report.prefetch_stall_cycles += outcome.stall_cycles;
        self.report.hidden_fill_cycles += outcome.hidden_cycles;
        let total = bank_stall + outcome.stall_cycles;
        self.report.stall_cycles += total;
        total
    }

    /// Stages `bytes` of input data from DRAM into the on-chip Data
    /// Memory (the per-batch image upload) and returns the exposed
    /// cycles (zero under [`MemoryMode::Ideal`]).
    pub fn stage_input(&mut self, bytes: u64) -> u64 {
        self.report.dram_data_bytes += bytes;
        let busy = self.cfg.data_spm.burst_cycles(bytes);
        let d = self.report.spm_mut(SpmKind::Data);
        d.write_bytes += bytes;
        d.busy_cycles += busy;
        if self.cfg.is_ideal() {
            return 0;
        }
        let cycles = self.cfg.dram.transfer_cycles(bytes);
        self.report.prefetch_stall_cycles += cycles;
        self.report.stall_cycles += cycles;
        cycles
    }

    /// Stages `bytes` of weight parameters from DRAM into the Weight
    /// SPM as one exposed bulk fill — nothing to hide the transfer
    /// behind — and returns the cycles it takes (zero under
    /// [`MemoryMode::Ideal`]).
    ///
    /// This is the cost of bringing a *cold* replica's weights
    /// on-chip: the serving layer charges it as autoscaler warmup when
    /// a new weight-resident worker spins up, with `bytes` equal to
    /// the network's `total_parameters()` so the fill is consistent
    /// with the engine's own `dram_weight_bytes` accounting.
    pub fn stage_weights(&mut self, bytes: u64) -> u64 {
        self.report.dram_weight_bytes += bytes;
        let busy = self.cfg.weight_spm.burst_cycles(bytes);
        let w = self.report.spm_mut(SpmKind::Weight);
        w.write_bytes += bytes;
        w.busy_cycles += busy;
        if self.cfg.is_ideal() {
            return 0;
        }
        let cycles = self.cfg.dram.transfer_cycles(bytes);
        self.report.prefetch_stall_cycles += cycles;
        self.report.stall_cycles += cycles;
        cycles
    }

    /// [`MemorySubsystem::stage_weights`] under a seeded [`FaultPlan`]:
    /// the bulk fill proceeds burst by burst, and burst `i` draws its
    /// fate at fault sequence `seq_base + i`. A DRAM transfer error
    /// re-bursts that burst — the channel is charged again, honestly,
    /// in both cycles and off-chip bytes. An SPM sector parity failure
    /// re-stages the burst from DRAM through the Weight SPM (a full
    /// per-burst weight stage). With no memory faults in the plan this
    /// is byte-identical to `stage_weights`: same cycles, same
    /// counters. Under [`MemoryMode::Ideal`] recoveries are counted
    /// but, like every other transfer, never stall.
    pub fn stage_weights_faulted(
        &mut self,
        bytes: u64,
        plan: &FaultPlan,
        seq_base: u64,
    ) -> StageOutcome {
        let mut out = StageOutcome {
            cycles: self.stage_weights(bytes),
            ..StageOutcome::default()
        };
        if !plan.has_memory_faults() || bytes == 0 {
            return out;
        }
        let burst = self.cfg.dram.burst_bytes.max(1);
        let bursts = bytes.div_ceil(burst);
        for i in 0..bursts {
            let seq = seq_base + i;
            if plan.dram_reburst(seq) {
                // The corrupted burst crosses the channel again.
                self.report.dram_weight_bytes += burst;
                if !self.cfg.is_ideal() {
                    let c = self.cfg.dram.transfer_cycles(burst);
                    self.report.prefetch_stall_cycles += c;
                    self.report.stall_cycles += c;
                    out.cycles += c;
                }
                out.dram_rebursts += 1;
            }
            if plan.spm_parity(seq) {
                // The failed sector re-stages from DRAM through the
                // Weight SPM, paying the full per-burst staging cost.
                out.cycles += self.stage_weights(burst);
                out.spm_restages += 1;
            }
        }
        out
    }

    /// Stages `bytes` of bias parameters from DRAM into the Weight SPM.
    /// Biases ride along with their layer's weight stream, so every
    /// parameter byte crosses the off-chip channel exactly once per
    /// batch; the transfer is small enough to hide entirely behind the
    /// layer's tile fills, so it adds no stall.
    pub fn stage_bias(&mut self, bytes: u64) {
        self.report.dram_weight_bytes += bytes;
        let busy = self.cfg.weight_spm.burst_cycles(2 * bytes);
        let w = self.report.spm_mut(SpmKind::Weight);
        w.write_bytes += bytes;
        w.read_bytes += bytes;
        w.busy_cycles += busy;
    }

    /// [`MemorySubsystem::matmul`] with the per-call stall window
    /// decomposition recorded into a telemetry [`Recorder`]: counters
    /// for total/bank/prefetch stalls and hidden fill cycles, plus a
    /// per-matmul stall histogram. The simulated result is identical
    /// to the unrecorded call — the recorder only observes.
    pub fn matmul_recorded(&mut self, g: &MatmulGeometry, rec: &mut Recorder) -> u64 {
        let before = self.report;
        let stall = self.matmul(g);
        let d = self.report.since(&before);
        rec.counter_add("mem.matmul_calls", 1);
        rec.counter_add("mem.stall_cycles", d.stall_cycles);
        rec.counter_add("mem.bank_stall_cycles", d.bank_stall_cycles);
        rec.counter_add("mem.prefetch_stall_cycles", d.prefetch_stall_cycles);
        rec.counter_add("mem.hidden_fill_cycles", d.hidden_fill_cycles);
        rec.hist_record("mem.matmul_stall_cycles", d.stall_cycles);
        rec.hist_record("mem.matmul_hidden_fill_cycles", d.hidden_fill_cycles);
        stall
    }

    /// [`MemorySubsystem::stage_input`] with the exposed staging
    /// window recorded into a telemetry [`Recorder`]; simulated result
    /// identical to the unrecorded call.
    pub fn stage_input_recorded(&mut self, bytes: u64, rec: &mut Recorder) -> u64 {
        let cycles = self.stage_input(bytes);
        rec.counter_add("mem.stage_input_calls", 1);
        rec.counter_add("mem.stage_input_stall_cycles", cycles);
        cycles
    }

    /// Merges a previously measured [`MemReport`] delta into this
    /// subsystem's counters — used by the closed-form model to scale one
    /// replayed matmul across many identical calls (each call restarts
    /// the prefetch timeline, so `n` identical calls are exactly one
    /// call's delta `n` times).
    pub fn charge(&mut self, delta: &MemReport) {
        self.report.merge(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geometry(m: usize, k: usize, n: usize, batch: usize, offchip: bool) -> MatmulGeometry {
        MatmulGeometry {
            m,
            k,
            n,
            batch,
            rows: 4,
            cols: 4,
            weights_offchip: offchip,
            schedule: TileSchedule::Serial,
        }
    }

    #[test]
    fn validate_rejects_every_degenerate_channel_parameter() {
        // The channel cycle math divides by `bytes_per_cycle` and
        // `burst_bytes`, and the SPM burst math divides by the per-bank
        // port bandwidth: every zero that could reach those divisions
        // must be rejected here, before a subsystem is ever built.
        let ok = MemoryConfig::paper();
        assert!(ok.validate().is_ok());
        assert!(MemoryConfig::ideal().validate().is_ok());

        let mut c = ok;
        c.dram.bytes_per_cycle = 0;
        assert!(c.validate().unwrap_err().contains("DRAM"));
        let mut c = ok;
        c.dram.burst_bytes = 0;
        assert!(c.validate().unwrap_err().contains("DRAM"));
        let mut c = ok;
        c.prefetch_buffers = 0;
        assert!(c.validate().unwrap_err().contains("prefetch"));
        let spms: [fn(&mut MemoryConfig) -> &mut SpmConfig; 3] = [
            |c| &mut c.data_spm,
            |c| &mut c.weight_spm,
            |c| &mut c.acc_spm,
        ];
        for spm in spms {
            let mut c = ok;
            spm(&mut c).banks = 0;
            assert!(c.validate().unwrap_err().contains("SPM"));
            let mut c = ok;
            spm(&mut c).word_bytes = 0;
            assert!(c.validate().unwrap_err().contains("SPM"));
            let mut c = ok;
            spm(&mut c).ports_per_bank = 0;
            assert!(c.validate().unwrap_err().contains("SPM"));
            let mut c = ok;
            spm(&mut c).bytes = 0;
            assert!(c.validate().unwrap_err().contains("capacity"));
        }
    }

    #[test]
    #[should_panic(expected = "invalid memory configuration")]
    fn subsystem_refuses_divide_by_zero_configs() {
        let mut cfg = MemoryConfig::paper();
        cfg.dram.bytes_per_cycle = 0;
        let _ = MemorySubsystem::new(cfg);
    }

    #[test]
    fn ideal_memory_never_stalls_but_still_counts() {
        let mut mem = MemorySubsystem::new(MemoryConfig::ideal());
        let stalls = mem.matmul(&geometry(5, 8, 8, 2, true)) + mem.stage_input(1000);
        assert_eq!(stalls, 0);
        let r = mem.report();
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.dram_weight_bytes, 64);
        assert_eq!(r.dram_data_bytes, 1000);
        assert_eq!(r.spm(SpmKind::Weight).read_bytes, 64);
        // Data streamed once per (K, N) tile pair: 2 × 2 × batch 2 × 5
        // rows × 4 bytes.
        assert_eq!(r.spm(SpmKind::Data).read_bytes, 2 * 2 * 2 * 5 * 4);
    }

    #[test]
    fn weight_staging_charges_the_dram_channel_and_weight_spm() {
        // The autoscaler's cold-replica warmup: a bulk weight fill is
        // fully exposed (nothing to hide behind), lands on the DRAM
        // weight counter and the Weight SPM write side, and costs
        // exactly the channel's transfer time.
        let cfg = MemoryConfig::paper();
        let mut mem = MemorySubsystem::new(cfg);
        let cycles = mem.stage_weights(6_804_224);
        assert_eq!(cycles, cfg.dram.transfer_cycles(6_804_224));
        let r = mem.report();
        assert_eq!(r.dram_weight_bytes, 6_804_224);
        assert_eq!(r.spm(SpmKind::Weight).write_bytes, 6_804_224);
        assert_eq!(r.stall_cycles, cycles);
        // Ideal memory: counted, never stalled.
        let mut ideal = MemorySubsystem::new(MemoryConfig::ideal());
        assert_eq!(ideal.stage_weights(1_000), 0);
        assert_eq!(ideal.report().dram_weight_bytes, 1_000);
    }

    #[test]
    fn faultless_staging_is_byte_identical_to_the_plain_path() {
        // A FaultPlan with no memory faults must be invisible: same
        // cycles, same counters — even when the plan carries serve or
        // engine faults, which this layer must never consult.
        let plan = FaultPlan::seeded(7);
        let cfg = MemoryConfig::paper();
        let mut plain = MemorySubsystem::new(cfg);
        let base = plain.stage_weights(1_000_000);
        let mut faulted = MemorySubsystem::new(cfg);
        let out = faulted.stage_weights_faulted(1_000_000, &plan, 0);
        assert_eq!(out.cycles, base);
        assert_eq!(out.dram_rebursts, 0);
        assert_eq!(out.spm_restages, 0);
        assert_eq!(plain.report(), faulted.report());
    }

    #[test]
    fn faulted_staging_is_deterministic_and_charged_honestly() {
        let mut plan = FaultPlan::seeded(11);
        plan.memory.dram_reburst_per_burst = 0.05;
        plan.memory.spm_parity_per_burst = 0.02;
        let cfg = MemoryConfig::paper();
        let run = || {
            let mut mem = MemorySubsystem::new(cfg);
            let out = mem.stage_weights_faulted(1_000_000, &plan, 0);
            (out, mem.report())
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_eq!(ra, rb);
        assert!(a.dram_rebursts > 0, "5% over ~15k bursts must fire");
        assert!(a.spm_restages > 0);
        // Every re-burst moved burst_bytes across the channel again.
        let base_bytes = 1_000_000u64;
        assert_eq!(
            ra.dram_weight_bytes,
            base_bytes + (a.dram_rebursts + a.spm_restages) * cfg.dram.burst_bytes
        );
        // Recoveries cost real exposed cycles beyond the clean fill.
        let clean = MemorySubsystem::new(cfg).stage_weights(base_bytes);
        assert!(a.cycles > clean);
        // A different seed gives a different (but still valid) schedule.
        let mut other = FaultPlan::seeded(12);
        other.memory = plan.memory;
        let mut mem = MemorySubsystem::new(cfg);
        let c = mem.stage_weights_faulted(base_bytes, &other, 0);
        assert_ne!(
            (a.dram_rebursts, a.spm_restages),
            (c.dram_rebursts, c.spm_restages)
        );
    }

    #[test]
    fn ideal_memory_counts_recoveries_but_never_stalls() {
        let mut plan = FaultPlan::seeded(3);
        plan.memory.dram_reburst_per_burst = 1.0;
        plan.memory.spm_parity_per_burst = 1.0;
        let mut mem = MemorySubsystem::new(MemoryConfig::ideal());
        let out = mem.stage_weights_faulted(10_000, &plan, 0);
        assert_eq!(out.cycles, 0);
        assert!(out.dram_rebursts > 0 && out.spm_restages > 0);
        assert_eq!(mem.report().stall_cycles, 0);
        assert!(mem.report().dram_weight_bytes > 10_000);
    }

    #[test]
    fn onchip_operands_never_touch_dram() {
        let mut mem = MemorySubsystem::new(MemoryConfig::paper());
        mem.matmul(&geometry(1, 32, 4, 1, false));
        let r = mem.report();
        assert_eq!(r.dram_weight_bytes, 0);
        assert_eq!(r.prefetch_stall_cycles, 0);
        assert_eq!(r.hidden_fill_cycles, 0);
    }

    #[test]
    fn accumulator_folds_read_back_partials() {
        let mut mem = MemorySubsystem::new(MemoryConfig::ideal());
        // Two K-tiles: the second folds, reading the partials back.
        mem.matmul(&geometry(3, 8, 4, 1, false));
        let a = mem.report().spm(SpmKind::Accumulator);
        assert_eq!(a.write_bytes, 2 * 3 * 4 * ACC_ENTRY_BYTES);
        assert_eq!(a.read_bytes, 3 * 4 * ACC_ENTRY_BYTES);
    }

    #[test]
    fn pipelined_windows_expose_more_fill_than_serial() {
        // Pipelined K-tiles leave smaller per-tile windows to hide fills
        // behind (load/drain paid once per N-tile), so with the same
        // DRAM channel the exposed stalls can only grow — and the
        // windows sum exactly to the pipelined schedule's cycle count.
        let mut g = MatmulGeometry {
            m: 2,
            k: 64,
            n: 16,
            batch: 1,
            rows: 16,
            cols: 16,
            weights_offchip: true,
            schedule: TileSchedule::Serial,
        };
        let serial = MemorySubsystem::new(MemoryConfig::paper()).matmul(&g);
        g.schedule = TileSchedule::Pipelined;
        let pipelined = MemorySubsystem::new(MemoryConfig::paper()).matmul(&g);
        assert!(pipelined >= serial, "{pipelined} < {serial}");

        let mem = MemorySubsystem::new(MemoryConfig::paper());
        let kk = g.k.div_ceil(g.rows);
        let windows: u64 = (0..kk).map(|i| mem.tile_compute_window(&g, i, kk)).sum();
        // nn = 1: load + m + (kk-1)·max(m, load) + (rows + cols).
        let (m, load) = (g.m as u64, g.rows as u64 + 1);
        assert_eq!(
            windows,
            load + m + (kk as u64 - 1) * m.max(load) + (g.rows + g.cols) as u64
        );
    }

    #[test]
    fn stall_decomposition_adds_up() {
        let mut cfg = MemoryConfig::paper();
        cfg.weight_spm.banks = 1;
        cfg.weight_spm.word_bytes = 1;
        let mut mem = MemorySubsystem::new(cfg);
        mem.matmul(&MatmulGeometry {
            m: 2,
            k: 32,
            n: 32,
            batch: 1,
            rows: 16,
            cols: 16,
            weights_offchip: true,
            schedule: TileSchedule::Serial,
        });
        let r = mem.report();
        assert!(
            r.bank_stall_cycles > 0,
            "1-byte/cycle weight SPM must stall"
        );
        assert!(r.prefetch_stall_cycles > 0, "cold fill must be exposed");
        assert_eq!(
            r.stall_cycles,
            r.bank_stall_cycles + r.prefetch_stall_cycles
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Prefetch-overlap bounds at the matmul level: memory-aware
        /// stalls are never negative (cycles ≥ ideal), monotone in DRAM
        /// latency, and weakly decreasing in prefetch depth.
        #[test]
        fn matmul_stalls_are_bounded_and_monotone(
            m in 1usize..8,
            k in 1usize..40,
            n in 1usize..24,
            batch in 1usize..4,
            extra_latency in 0u64..300,
        ) {
            let g = MatmulGeometry {
                m, k, n, batch,
                rows: 4,
                cols: 4,
                weights_offchip: true,
                schedule: TileSchedule::Serial,
            };
            let base = MemoryConfig::paper();
            let mut slower = base;
            slower.dram.latency_cycles += extra_latency;
            let mut naive = base;
            naive.prefetch_buffers = 1;
            let mut deep = base;
            deep.prefetch_buffers = 4;

            let stall = |cfg: MemoryConfig| MemorySubsystem::new(cfg).matmul(&g);
            let s_base = stall(base);
            prop_assert_eq!(stall(MemoryConfig::ideal()), 0);
            prop_assert!(stall(slower) >= s_base);
            prop_assert!(stall(naive) >= s_base);
            prop_assert!(stall(deep) <= s_base);
        }
    }
}
