//! The off-chip DRAM channel.

/// Static configuration of the DRAM channel feeding the on-chip
/// hierarchy: a fixed access latency, a streaming bandwidth, and a burst
/// granularity (transfers are rounded up to whole bursts, the CapStore
/// off-chip model).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct DramConfig {
    /// Cycles from request to first data beat.
    pub latency_cycles: u64,
    /// Streaming bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: u64,
    /// Burst granularity in bytes (transfers round up to this).
    pub burst_bytes: u64,
}

impl DramConfig {
    /// Cycles to transfer `bytes` over the channel: the fixed latency
    /// plus the burst-rounded streaming time. Zero bytes cost zero
    /// cycles (no transaction is issued).
    ///
    /// # Example
    ///
    /// ```
    /// use capsacc_memory::DramConfig;
    /// let d = DramConfig { latency_cycles: 100, bytes_per_cycle: 16, burst_bytes: 64 };
    /// assert_eq!(d.transfer_cycles(0), 0);
    /// // 100 + ceil(roundup(100, 64) / 16) = 100 + 8.
    /// assert_eq!(d.transfer_cycles(100), 108);
    /// ```
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let burst_rounded = bytes.div_ceil(self.burst_bytes) * self.burst_bytes;
        self.latency_cycles + burst_rounded.div_ceil(self.bytes_per_cycle)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// bandwidth or burst size).
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 || self.burst_bytes == 0 {
            return Err("DRAM bandwidth and burst size must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_is_latency_plus_burst_rounded_stream() {
        let d = DramConfig {
            latency_cycles: 50,
            bytes_per_cycle: 8,
            burst_bytes: 32,
        };
        assert_eq!(d.transfer_cycles(1), 50 + 4);
        assert_eq!(d.transfer_cycles(32), 50 + 4);
        assert_eq!(d.transfer_cycles(33), 50 + 8);
    }

    #[test]
    fn validation() {
        let mut d = DramConfig {
            latency_cycles: 0,
            bytes_per_cycle: 8,
            burst_bytes: 32,
        };
        assert!(d.validate().is_ok());
        d.bytes_per_cycle = 0;
        assert!(d.validate().is_err());
        // Zero burst granularity divides by zero in `transfer_cycles`
        // just like zero bandwidth: both rejection paths are covered.
        d.bytes_per_cycle = 8;
        d.burst_bytes = 0;
        assert!(d.validate().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Transfers are monotone in latency and in byte count, and a
        /// wider channel never slows one down.
        #[test]
        fn transfer_cycles_monotone(
            latency in 0u64..500,
            bpc in 1u64..64,
            burst in 1u64..128,
            bytes in 0u64..100_000,
        ) {
            let d = DramConfig { latency_cycles: latency, bytes_per_cycle: bpc, burst_bytes: burst };
            let slower = DramConfig { latency_cycles: latency + 7, ..d };
            let wider = DramConfig { bytes_per_cycle: bpc * 2, ..d };
            if bytes > 0 {
                prop_assert!(slower.transfer_cycles(bytes) > d.transfer_cycles(bytes));
            }
            prop_assert!(wider.transfer_cycles(bytes) <= d.transfer_cycles(bytes));
            prop_assert!(d.transfer_cycles(bytes + 1) >= d.transfer_cycles(bytes));
        }
    }
}
