//! # capsacc-memory — the on-chip memory hierarchy, cycle-accurate
//!
//! The CapsAcc paper's headline claim is *data reuse*, which is a memory
//! claim — but the paper itself models the Data / Weight / Accumulator
//! buffers only as capacities and bandwidths. The follow-on papers show
//! that the memory hierarchy is where most of a CapsNet accelerator's
//! area, energy and a large share of latency actually live:
//!
//! - **DESCNet** (scratchpad sizing + *sector power gating* for CapsNet
//!   accelerators) motivates the banked-SPM model with idle-bank gating;
//! - **CapStore** (on-chip memory design/management for CapsuleNet
//!   inference) motivates per-access energy that scales with SPM
//!   capacity and the explicit off-chip (DRAM) channel.
//!
//! This crate sits between `capsacc-tensor` and `capsacc-core` in the
//! workspace graph and models that hierarchy for real:
//!
//! - [`SpmConfig`] — banked scratchpad memories (banks × ports × word
//!   width): unit-stride bursts stall on bank/port bandwidth shortfall,
//!   and a strided-access model ([`SpmConfig::strided_word_cycles`])
//!   quantifies bank conflicts for irregular patterns (used by the
//!   design-space explorer);
//! - [`DramConfig`] — an off-chip channel (latency + bandwidth + burst);
//! - [`PrefetchPipeline`] — a double-buffered (or deeper) tile
//!   prefetcher that overlaps the next tile's DRAM fill with the current
//!   tile's compute;
//! - [`MemorySubsystem`] — the three SPMs + DRAM + prefetcher behind the
//!   engine's matmul tile schedule, producing stall cycles and a
//!   [`MemReport`].
//!
//! Everything is deterministic and closed-form per tile, so the
//! cycle-accurate engine and the analytical timing model in
//! `capsacc-core` drive the *same* [`MemorySubsystem`] code and agree
//! exactly by construction. [`MemoryMode::Ideal`] ("IdealMemory") keeps
//! every counter but returns zero stalls everywhere, reproducing the
//! pre-memory engine's cycle counts bit-for-bit.
//!
//! # Example
//!
//! ```
//! use capsacc_memory::{MatmulGeometry, MemoryConfig, MemorySubsystem};
//!
//! let g = MatmulGeometry {
//!     m: 36, k: 2304, n: 256, batch: 1, rows: 16, cols: 16,
//!     weights_offchip: true, schedule: capsacc_memory::TileSchedule::Serial,
//! };
//! let mut ideal = MemorySubsystem::new(MemoryConfig::ideal());
//! assert_eq!(ideal.matmul(&g), 0);
//! let mut real = MemorySubsystem::new(MemoryConfig::paper());
//! let stalls = real.matmul(&g);
//! // The double-buffered prefetcher hides most fills behind compute...
//! assert!(real.report().hidden_fill_cycles > stalls);
//! // ...and every weight byte crossed the off-chip channel exactly once.
//! assert_eq!(real.report().dram_weight_bytes, 2304 * 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dram;
mod prefetch;
mod report;
mod spm;
mod subsystem;

pub use dram::DramConfig;
pub use prefetch::{PrefetchPipeline, TileOutcome};
pub use report::{MemReport, SpmActivity, SpmKind};
pub use spm::SpmConfig;
pub use subsystem::{
    MatmulGeometry, MemoryConfig, MemoryMode, MemorySubsystem, StageOutcome, TileSchedule,
    ACC_ENTRY_BYTES,
};
