//! Banked scratchpad memories (SPMs).
//!
//! Each of the accelerator's working buffers (Data / Weight /
//! Accumulator) is a scratchpad built from `banks` independent banks of
//! `bank_bytes()` each, word-interleaved at `word_bytes` granularity,
//! with `ports_per_bank` single-word ports per bank — the DESCNet-style
//! organization where every bank is also a power-gating sector.

/// Static configuration of one scratchpad memory.
///
/// # Example
///
/// ```
/// use capsacc_memory::SpmConfig;
/// let spm = SpmConfig { bytes: 24 * 1024, banks: 4, ports_per_bank: 1, word_bytes: 4 };
/// assert_eq!(spm.bytes_per_cycle(), 16);
/// // A 256-byte burst drains in ceil(256 / 16) cycles.
/// assert_eq!(spm.burst_cycles(256), 16);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SpmConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Number of banks (also the number of power-gating sectors).
    pub banks: u64,
    /// Single-word ports per bank.
    pub ports_per_bank: u64,
    /// Word width of one bank port in bytes (the interleaving grain).
    pub word_bytes: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl SpmConfig {
    /// Peak bandwidth: every bank port transfers one word per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.banks * self.ports_per_bank * self.word_bytes
    }

    /// Capacity of one bank (= one power-gating sector) in bytes.
    pub fn bank_bytes(&self) -> u64 {
        capsacc_tensor::u64_from(self.bytes).div_ceil(self.banks)
    }

    /// Cycles to move a unit-stride burst of `bytes` through the SPM:
    /// consecutive words hit consecutive banks, so the full port
    /// parallelism applies.
    pub fn burst_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle())
    }

    /// Cycles to move `words` words whose addresses step by
    /// `word_stride` words: only `banks / gcd(banks, stride)` banks are
    /// ever addressed, so the effective port count shrinks — the
    /// bank-conflict model. A stride of zero (all accesses to one
    /// address) serializes onto a single bank.
    pub fn strided_word_cycles(&self, words: u64, word_stride: u64) -> u64 {
        let effective_banks = if word_stride == 0 {
            1
        } else {
            self.banks / gcd(self.banks, word_stride)
        };
        words.div_ceil(effective_banks * self.ports_per_bank)
    }

    /// Extra cycles a strided burst costs over the same burst at unit
    /// stride — the pure bank-conflict penalty.
    pub fn conflict_stall_cycles(&self, words: u64, word_stride: u64) -> u64 {
        let ideal = words.div_ceil(self.banks * self.ports_per_bank);
        self.strided_word_cycles(words, word_stride) - ideal
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// capacity, banks, ports or word width).
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes == 0 {
            return Err("SPM capacity must be non-zero".into());
        }
        if self.banks == 0 || self.ports_per_bank == 0 || self.word_bytes == 0 {
            return Err("SPM banks, ports and word width must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spm(banks: u64) -> SpmConfig {
        SpmConfig {
            bytes: 16 * 1024,
            banks,
            ports_per_bank: 1,
            word_bytes: 4,
        }
    }

    #[test]
    fn unit_stride_uses_all_banks() {
        let s = spm(8);
        assert_eq!(s.bytes_per_cycle(), 32);
        assert_eq!(s.burst_cycles(0), 0);
        assert_eq!(s.burst_cycles(1), 1);
        assert_eq!(s.burst_cycles(64), 2);
        assert_eq!(s.strided_word_cycles(64, 1), 8);
        assert_eq!(s.conflict_stall_cycles(64, 1), 0);
    }

    #[test]
    fn power_of_two_strides_concentrate_banks() {
        let s = spm(8);
        // Stride 2 → 4 effective banks, stride 8 → 1 bank.
        assert_eq!(s.strided_word_cycles(64, 2), 16);
        assert_eq!(s.strided_word_cycles(64, 8), 64);
        assert_eq!(s.conflict_stall_cycles(64, 8), 56);
        // Odd strides are conflict-free on a power-of-two bank count.
        assert_eq!(s.conflict_stall_cycles(64, 3), 0);
    }

    #[test]
    fn zero_stride_serializes() {
        let s = spm(4);
        assert_eq!(s.strided_word_cycles(10, 0), 10);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        assert!(spm(0).validate().is_err());
        let mut s = spm(4);
        s.word_bytes = 0;
        assert!(s.validate().is_err());
        s = spm(4);
        s.bytes = 0;
        assert!(s.validate().is_err());
        assert!(spm(4).validate().is_ok());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Bank-conflict accounting: strided bursts are never cheaper
        /// than unit-stride ones, more banks never slow a burst down,
        /// and the conflict stall is exactly the strided/unit difference.
        #[test]
        fn conflict_accounting_is_consistent(
            banks_log2 in 0u32..5,
            words in 1u64..2000,
            stride in 0u64..64,
        ) {
            let s = spm(1 << banks_log2);
            let unit = s.strided_word_cycles(words, 1);
            let strided = s.strided_word_cycles(words, stride);
            prop_assert!(strided >= unit);
            prop_assert_eq!(s.conflict_stall_cycles(words, stride), strided - unit);
            if banks_log2 > 0 {
                let fewer = spm(1 << (banks_log2 - 1));
                prop_assert!(fewer.strided_word_cycles(words, stride) >= strided);
            }
            // A burst is never faster than the single-bank floor allows.
            prop_assert!(strided <= words);
        }
    }
}
