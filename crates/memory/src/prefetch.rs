//! The double-buffered tile prefetch engine.
//!
//! Weight tiles stream from DRAM through a small pool of tile buffers.
//! While the array computes on the resident tile, the prefetcher pulls
//! the next tile(s) over the DRAM channel — the classic double-buffering
//! overlap, generalized to `buffers` slots:
//!
//! - `buffers == 1` — no prefetch: every fill serializes before its
//!   tile's compute (the naive baseline the design-space explorer
//!   measures against);
//! - `buffers == 2` — double buffering: tile *i+1* fills while tile *i*
//!   computes;
//! - `buffers > 2` — deeper lookahead that additionally smooths bursty
//!   fill sequences through the shared DRAM channel.
//!
//! The timeline model is exact and deterministic: tile *i*'s fill may
//! start once the DRAM channel is free **and** tile *i − buffers* has
//! finished computing (its buffer slot is recycled); tile *i*'s compute
//! starts once tile *i − 1*'s compute ended and its own fill completed.

use std::collections::VecDeque;

/// Stall/overlap outcome of one tile through the prefetcher.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TileOutcome {
    /// Cycles the array waited on this tile beyond the previous tile's
    /// compute (fill exposure plus DRAM queueing).
    pub stall_cycles: u64,
    /// Fill cycles hidden behind earlier tiles' compute.
    pub hidden_cycles: u64,
}

/// Deterministic timeline of a tile stream through `buffers` tile slots
/// and one shared DRAM channel.
///
/// # Example
///
/// ```
/// use capsacc_memory::PrefetchPipeline;
/// let mut naive = PrefetchPipeline::new(1);
/// let mut double = PrefetchPipeline::new(2);
/// let tiles = [(100u64, 300u64); 4]; // (fill, compute)
/// let stall = |p: &mut PrefetchPipeline| {
///     p.begin_stream();
///     tiles.iter().map(|&(f, c)| p.tile(f, c).stall_cycles).sum::<u64>()
/// };
/// assert_eq!(stall(&mut naive), 400); // every fill exposed
/// assert_eq!(stall(&mut double), 100); // only the cold first fill
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrefetchPipeline {
    buffers: usize,
    /// Absolute time the DRAM channel becomes free.
    dram_free: u64,
    /// Compute-end times of the last `buffers` tiles (front = oldest).
    compute_ends: VecDeque<u64>,
}

impl PrefetchPipeline {
    /// Creates a pipeline with `buffers` tile slots.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` is zero.
    pub fn new(buffers: usize) -> Self {
        assert!(buffers > 0, "at least one tile buffer required");
        Self {
            buffers,
            dram_free: 0,
            compute_ends: VecDeque::with_capacity(buffers),
        }
    }

    /// Number of tile slots.
    pub fn buffers(&self) -> usize {
        self.buffers
    }

    /// Resets the timeline for a new tile stream (a new matmul): the
    /// first tile of every stream pays its fill cold.
    ///
    /// This is the *complete* reuse contract: **all** timeline state —
    /// the DRAM-channel free time and every buffered compute-end — is
    /// cleared, so a reused pipeline produces [`TileOutcome`]s
    /// bit-identical to a freshly constructed one for any subsequent
    /// stream (pinned by the `reused_pipeline_is_bit_identical_to_fresh`
    /// proptest). A long-lived serving worker replays thousands of
    /// matmuls through one pipeline; any carry-over here would silently
    /// skew every stall count after the first batch.
    pub fn begin_stream(&mut self) {
        self.dram_free = 0;
        self.compute_ends.clear();
    }

    /// Advances the timeline by one tile whose DRAM fill costs `fill`
    /// cycles (zero for on-chip-resident operands) and whose compute
    /// occupies the array for `compute` cycles.
    pub fn tile(&mut self, fill: u64, compute: u64) -> TileOutcome {
        let prev_end = self.compute_ends.back().copied().unwrap_or(0);
        // The buffer slot for this tile recycles when the tile `buffers`
        // positions back finishes computing.
        let slot_free = if self.compute_ends.len() >= self.buffers {
            self.compute_ends[self.compute_ends.len() - self.buffers]
        } else {
            0
        };
        let fill_start = self.dram_free.max(slot_free);
        let fill_end = fill_start + fill;
        let compute_start = prev_end.max(fill_end);
        let compute_end = compute_start + compute;
        self.dram_free = fill_end;
        self.compute_ends.push_back(compute_end);
        if self.compute_ends.len() > self.buffers {
            self.compute_ends.pop_front();
        }
        let stall_cycles = compute_start - prev_end;
        TileOutcome {
            stall_cycles,
            hidden_cycles: fill.saturating_sub(stall_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn total_stall(buffers: usize, tiles: &[(u64, u64)]) -> u64 {
        let mut p = PrefetchPipeline::new(buffers);
        p.begin_stream();
        tiles.iter().map(|&(f, c)| p.tile(f, c).stall_cycles).sum()
    }

    #[test]
    fn single_buffer_serializes_every_fill() {
        let tiles = [(10, 5), (20, 5), (30, 5)];
        assert_eq!(total_stall(1, &tiles), 60);
    }

    #[test]
    fn double_buffer_hides_fills_behind_long_compute() {
        let tiles = [(10, 100), (10, 100), (10, 100)];
        // Only the cold first fill is exposed.
        assert_eq!(total_stall(2, &tiles), 10);
    }

    #[test]
    fn double_buffer_exposes_fill_excess_over_compute() {
        let tiles = [(100, 30), (100, 30), (100, 30)];
        // Cold fill + (fill − compute) per later tile.
        assert_eq!(total_stall(2, &tiles), 100 + 70 + 70);
    }

    #[test]
    fn onchip_tiles_never_stall() {
        let tiles = [(0, 7), (0, 9), (0, 1)];
        for buffers in 1..4 {
            assert_eq!(total_stall(buffers, &tiles), 0);
        }
    }

    #[test]
    fn begin_stream_makes_streams_independent() {
        let mut p = PrefetchPipeline::new(2);
        p.begin_stream();
        p.tile(50, 1000);
        p.begin_stream();
        // Cold again: no credit carried over from the previous stream.
        assert_eq!(p.tile(50, 10).stall_cycles, 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The reuse contract of `begin_stream`: a pipeline that has
        /// already replayed arbitrary earlier streams must produce
        /// **bit-identical** `TileOutcome`s to a freshly constructed
        /// one — outcome by outcome *and* in its full internal timeline
        /// state (`dram_free` / `compute_ends` carry nothing over).
        #[test]
        fn reused_pipeline_is_bit_identical_to_fresh(
            prior_fills in proptest::collection::vec(0u64..500, 0..16),
            prior_computes in proptest::collection::vec(1u64..500, 0..16),
            fills in proptest::collection::vec(0u64..500, 1..16),
            computes in proptest::collection::vec(1u64..500, 1..16),
            buffers in 1usize..5,
        ) {
            // Dirty a pipeline with a random prior stream...
            let mut reused = PrefetchPipeline::new(buffers);
            reused.begin_stream();
            for (&f, &c) in prior_fills.iter().zip(&prior_computes) {
                reused.tile(f, c);
            }
            // ...then replay a second stream against a fresh twin.
            reused.begin_stream();
            let mut fresh = PrefetchPipeline::new(buffers);
            fresh.begin_stream();
            for (&f, &c) in fills.iter().zip(&computes) {
                prop_assert_eq!(reused.tile(f, c), fresh.tile(f, c));
            }
            prop_assert_eq!(&reused, &fresh, "internal timeline state diverged");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Prefetch-overlap bounds: stalls shrink (weakly) with more
        /// buffers, never beat the DRAM-channel serial floor, never
        /// exceed the naive sum of fills, and stall + hidden account for
        /// every fill cycle exactly.
        #[test]
        fn overlap_bounds(
            fills in proptest::collection::vec(0u64..200, 1..20),
            computes in proptest::collection::vec(1u64..200, 1..20),
            buffers in 1usize..5,
        ) {
            let tiles: Vec<(u64, u64)> =
                fills.iter().zip(&computes).map(|(&f, &c)| (f, c)).collect();
            let naive = total_stall(1, &tiles);
            let this = total_stall(buffers, &tiles);
            let deeper = total_stall(buffers + 1, &tiles);
            prop_assert_eq!(naive, tiles.iter().map(|&(f, _)| f).sum::<u64>());
            prop_assert!(this <= naive);
            prop_assert!(deeper <= this);
            // The shared channel is a hard floor: total time ≥ all fills
            // streamed back to back, so stalls ≥ fills − compute overlap.
            let fill_sum: u64 = tiles.iter().map(|&(f, _)| f).sum();
            let compute_sum: u64 = tiles.iter().map(|&(_, c)| c).sum();
            let last_compute = tiles.last().map(|&(_, c)| c).unwrap_or(0);
            prop_assert!(
                this + compute_sum >= fill_sum + last_compute,
                "stall {} breaks the DRAM serial floor", this
            );
            // Per-tile conservation: stall + hidden == fill whenever the
            // channel is un-queued; globally, hidden ≤ fills − cold fill.
            let mut p = PrefetchPipeline::new(buffers);
            p.begin_stream();
            let mut hidden = 0u64;
            for &(f, c) in &tiles {
                let out = p.tile(f, c);
                prop_assert!(out.hidden_cycles <= f);
                hidden += out.hidden_cycles;
            }
            prop_assert!(hidden + this >= fill_sum);
        }
    }
}
