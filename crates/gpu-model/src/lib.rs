//! # capsacc-gpu-model — the GPU baseline as an analytical timing model
//!
//! The paper benchmarks CapsuleNet inference on an Nvidia GeForce GTX1070
//! under PyTorch/cuDNN (Sec. III, Figs. 7–9) and uses those measurements
//! as the baseline for every comparison (Figs. 16–17). This crate
//! replaces the physical GPU with a mechanistic timing model:
//!
//! ```text
//! t(op) = launches(op) · t_sync  +  work(op) / rate(op_class)  +  bytes / bw
//! ```
//!
//! - `launches` — how many synchronized kernel launches the PyTorch
//!   implementation of the op issues (counted from the reference
//!   implementation structure);
//! - `t_sync` — per-launch overhead including the `cuda.synchronize`
//!   the paper's per-step timing requires;
//! - `rate` — effective MAC throughput of the kernel class (tiny
//!   single-image convs run at a fraction of peak; deep multi-channel
//!   convs run near cuDNN efficiency);
//! - `bw` — host↔device transfer bandwidth for the Load step.
//!
//! The constants ([`GpuModel::gtx1070`]) are calibrated so the MNIST
//! CapsuleNet reproduces the *measured anchors* of Figs. 8 and 9
//! (Conv1 ≈ 1 ms, PrimaryCaps ≈ 1.8 ms, ClassCaps ≈ 12 ms dominated by
//! ≈ 3 ms squash steps). Because each term scales with workload shape,
//! the model extrapolates to the scaled-down configurations used in
//! tests.
//!
//! This substitution preserves what the evaluation needs from the GPU:
//! the per-layer and per-step time *profile* whose bottleneck (squash
//! inside routing) motivates the accelerator.
//!
//! # Example
//!
//! ```
//! use capsacc_gpu_model::GpuModel;
//! use capsacc_capsnet::CapsNetConfig;
//! let gpu = GpuModel::gtx1070();
//! let net = CapsNetConfig::mnist();
//! // ClassCaps is roughly an order of magnitude slower than the other
//! // layers (Sec. III-B: "around 10× slower").
//! let t = gpu.layer_times_us(&net);
//! assert!(t.class_caps > 5.0 * t.conv1);
//! assert!(t.class_caps > 5.0 * t.primary_caps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use capsacc_capsnet::CapsNetConfig;

/// Per-layer GPU inference times in microseconds (Fig. 8).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct GpuLayerTimes {
    /// Conv1 time.
    pub conv1: f64,
    /// PrimaryCaps time.
    pub primary_caps: f64,
    /// ClassCaps time (FC + routing, the sum of the Fig. 9 steps).
    pub class_caps: f64,
}

impl GpuLayerTimes {
    /// Total inference time in microseconds.
    pub fn total(&self) -> f64 {
        self.conv1 + self.primary_caps + self.class_caps
    }

    /// `(name, µs)` rows in Fig. 8 order.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Conv1", self.conv1),
            ("PrimaryCaps", self.primary_caps),
            ("ClassCaps", self.class_caps),
        ]
    }
}

/// One routing step's GPU time (Fig. 9). Step labels match the
/// `capsacc-core` routing steps so harnesses can join the two series.
#[derive(Clone, PartialEq, Debug)]
pub struct GpuStepTime {
    /// Step label ("Load", "FC", "Softmax1", …).
    pub label: String,
    /// Time in microseconds.
    pub time_us: f64,
}

/// The calibrated GPU timing model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct GpuModel {
    /// Per-synchronized-launch overhead (µs).
    pub sync_launch_us: f64,
    /// Effective MAC rate of shallow single-image convolutions (MAC/µs).
    pub shallow_conv_rate: f64,
    /// Effective MAC rate of deep multi-channel convolutions (MAC/µs).
    pub deep_conv_rate: f64,
    /// Effective MAC rate of the batched tiny matmuls of the ClassCaps
    /// transform (MAC/µs).
    pub batched_matmul_rate: f64,
    /// Effective MAC rate of the routing reductions (MAC/µs).
    pub reduction_rate: f64,
    /// Host↔device transfer bandwidth (bytes/µs).
    pub transfer_bytes_per_us: f64,
}

impl GpuModel {
    /// Constants calibrated to the paper's GTX1070 measurements
    /// (Figs. 8–9). See the crate docs for the calibration anchors.
    pub fn gtx1070() -> Self {
        Self {
            sync_launch_us: 60.0,
            shallow_conv_rate: 9_400.0,
            deep_conv_rate: 113_000.0,
            batched_matmul_rate: 2_800.0,
            reduction_rate: 40_000.0,
            transfer_bytes_per_us: 4_500.0,
        }
    }

    fn op(&self, launches: f64, macs: f64, rate: f64, bytes: f64) -> f64 {
        launches * self.sync_launch_us + macs / rate + bytes / self.transfer_bytes_per_us
    }

    /// Conv1 time (µs): one cuDNN conv + one ReLU launch.
    pub fn conv1_us(&self, net: &CapsNetConfig) -> f64 {
        let g = net.conv1_geometry();
        self.op(2.0, g.macs() as f64, self.shallow_conv_rate, 0.0)
    }

    /// PrimaryCaps time (µs): one deep conv + reshape/squash launches.
    pub fn primary_caps_us(&self, net: &CapsNetConfig) -> f64 {
        let g = net.primary_caps_geometry();
        self.op(2.0, g.macs() as f64, self.deep_conv_rate, 0.0)
    }

    /// The per-step GPU times of the ClassCaps phase (Fig. 9): Load, FC,
    /// then Softmax/Sum/Squash (every iteration) and Update (all but the
    /// last), labelled with 1-based iteration suffixes.
    pub fn routing_steps_us(&self, net: &CapsNetConfig) -> Vec<GpuStepTime> {
        let caps = net.num_primary_caps() as f64;
        let classes = net.num_classes as f64;
        let in_dim = net.pc_caps_dim as f64;
        let out_dim = net.class_caps_dim as f64;
        let mut steps = Vec::new();

        // Load: staging û-sized working buffers onto the device.
        let u_hat_bytes = caps * classes * out_dim;
        steps.push(GpuStepTime {
            label: "Load".into(),
            time_us: self.op(1.0, 0.0, 1.0, u_hat_bytes),
        });

        // FC: torch.matmul over [caps, classes] tiny transforms — a
        // batched matmul with poor occupancy.
        let fc_macs = caps * classes * in_dim * out_dim;
        steps.push(GpuStepTime {
            label: "FC".into(),
            time_us: self.op(3.0, fc_macs, self.batched_matmul_rate, 0.0),
        });

        for iter in 1..=net.routing_iterations {
            // Softmax over [caps, classes]: one fused kernel plus a sync.
            steps.push(GpuStepTime {
                label: format!("Softmax{iter}"),
                time_us: self.op(2.0, caps * classes, self.reduction_rate, 0.0),
            });
            // Sum: (c · û) reduction over capsules — mul + sum kernels.
            steps.push(GpuStepTime {
                label: format!("Sum{iter}"),
                time_us: self.op(2.0, caps * classes * out_dim, self.reduction_rate, 0.0),
            });
            // Squash: the PyTorch reference squashes per class with a
            // chain of norm/square/div/mul ops — ~5 synchronized
            // launches per class. This is the measured bottleneck of
            // Fig. 9 (≈3 ms on MNIST).
            steps.push(GpuStepTime {
                label: format!("Squash{iter}"),
                time_us: self.op(5.0 * classes, classes * out_dim, self.reduction_rate, 0.0),
            });
            if iter < net.routing_iterations {
                // Update: bmm(û, v) + add — ~5 launches.
                steps.push(GpuStepTime {
                    label: format!("Update{iter}"),
                    time_us: self.op(5.0, caps * classes * out_dim, self.reduction_rate, 0.0),
                });
            }
        }
        steps
    }

    /// ClassCaps total time (µs): the sum of the routing steps.
    pub fn class_caps_us(&self, net: &CapsNetConfig) -> f64 {
        self.routing_steps_us(net).iter().map(|s| s.time_us).sum()
    }

    /// Per-layer times (Fig. 8).
    pub fn layer_times_us(&self, net: &CapsNetConfig) -> GpuLayerTimes {
        GpuLayerTimes {
            conv1: self.conv1_us(net),
            primary_caps: self.primary_caps_us(net),
            class_caps: self.class_caps_us(net),
        }
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::gtx1070()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mnist() -> CapsNetConfig {
        CapsNetConfig::mnist()
    }

    #[test]
    fn conv1_anchor_about_one_ms() {
        let t = GpuModel::gtx1070().conv1_us(&mnist());
        assert!((800.0..1300.0).contains(&t), "Conv1 = {t} µs");
    }

    #[test]
    fn primary_caps_anchor_about_two_ms() {
        let t = GpuModel::gtx1070().primary_caps_us(&mnist());
        assert!((1400.0..2400.0).contains(&t), "PrimaryCaps = {t} µs");
    }

    #[test]
    fn class_caps_is_about_ten_x_slower() {
        // Sec. III-B: "The ClassCaps layer is the computational
        // bottleneck, because it is around 10× slower than the previous
        // layers."
        let gpu = GpuModel::gtx1070();
        let t = gpu.layer_times_us(&mnist());
        let ratio = t.class_caps / t.conv1.max(t.primary_caps);
        assert!((4.0..15.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn squash_dominates_routing() {
        // Sec. III-B: "the Squashing operation inside the ClassCaps layer
        // represents the most compute-intensive operation."
        let gpu = GpuModel::gtx1070();
        let steps = gpu.routing_steps_us(&mnist());
        let squash: f64 = steps
            .iter()
            .filter(|s| s.label.starts_with("Squash"))
            .map(|s| s.time_us)
            .sum();
        let total: f64 = steps.iter().map(|s| s.time_us).sum();
        assert!(squash / total > 0.5, "squash share = {}", squash / total);
        // Each squash lands near the ~3 ms anchor of Fig. 9.
        let squash1 = steps
            .iter()
            .find(|s| s.label == "Squash1")
            .expect("squash1")
            .time_us;
        assert!((2000.0..4500.0).contains(&squash1), "Squash1 = {squash1}");
    }

    #[test]
    fn step_sequence_matches_fig9() {
        let labels: Vec<String> = GpuModel::gtx1070()
            .routing_steps_us(&mnist())
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert_eq!(
            labels,
            vec![
                "Load", "FC", "Softmax1", "Sum1", "Squash1", "Update1", "Softmax2", "Sum2",
                "Squash2", "Update2", "Softmax3", "Sum3", "Squash3",
            ]
        );
    }

    #[test]
    fn fc_anchor_under_one_ms() {
        let gpu = GpuModel::gtx1070();
        let steps = gpu.routing_steps_us(&mnist());
        let fc = steps.iter().find(|s| s.label == "FC").expect("fc").time_us;
        assert!((500.0..1000.0).contains(&fc), "FC = {fc}");
    }

    #[test]
    fn total_in_low_tens_of_ms() {
        let t = GpuModel::gtx1070().layer_times_us(&mnist());
        let ms = t.total() / 1000.0;
        assert!((10.0..20.0).contains(&ms), "total = {ms} ms");
    }

    #[test]
    fn model_scales_down_with_tiny_config() {
        let gpu = GpuModel::gtx1070();
        let tiny = gpu.layer_times_us(&CapsNetConfig::tiny());
        let full = gpu.layer_times_us(&mnist());
        assert!(tiny.total() < full.total());
        // Fixed launch overheads keep tiny times from collapsing to zero.
        assert!(tiny.conv1 >= 2.0 * gpu.sync_launch_us);
    }
}
