//! Deterministic, seeded fault-injection plans for the CapsAcc stack.
//!
//! A [`FaultPlan`] is a *pure function* from a seed and an injection
//! index to a fault decision: no RNG state is carried between draws,
//! no wall clock is consulted, and the same `(seed, index)` pair
//! always yields the same answer. That makes fault schedules
//!
//! - **byte-identical on rerun** — the serving runtime's event order
//!   is deterministic, so every consumer asks the plan the same
//!   questions in the same order;
//! - **enumerable** — tests can walk an index range and list every
//!   fault the plan will ever inject (see
//!   [`FaultPlan::enumerate_worker_crashes`]);
//! - **order-independent** — decisions are keyed by a stable sequence
//!   number (dispatch attempt, DRAM burst, accumulator drain op), not
//!   by call order, so parallel backends and serial backends agree.
//!
//! Three fault layers are modeled, mirroring the crates they perturb:
//!
//! | layer  | faults | consumer |
//! |--------|--------|----------|
//! | serve  | worker crash mid-batch, stall-then-recover, straggler ×k, shard-pool panic | `capsacc-serve` runtime + `ShardPool` |
//! | memory | DRAM transfer error (charged re-burst), SPM sector parity error (re-stage) | `capsacc-memory` `MemorySubsystem` |
//! | engine | transient PE accumulator bit-flip, optional saturating-clamp masking | `capsacc-core` drain path |
//!
//! Construction is **seed-explicit**: use [`FaultPlan::none`] for the
//! fault-free plan or [`FaultPlan::seeded`] plus the `with_*`
//! builders. `FaultPlan::default()` exists (it is `none()`), but the
//! workspace lint's `fault-seed` rule forbids it on simulated paths
//! so a fault-free run is always a visible, auditable choice.

#![forbid(unsafe_code)]

/// Domain separator for serve-layer worker-crash draws.
const DOMAIN_CRASH: u64 = 0x01;
/// Domain separator for serve-layer stall draws.
const DOMAIN_STALL: u64 = 0x02;
/// Domain separator for serve-layer straggler draws.
const DOMAIN_STRAGGLER: u64 = 0x03;
/// Domain separator for shard-pool panic draws.
const DOMAIN_POOL: u64 = 0x04;
/// Domain separator for DRAM re-burst draws.
const DOMAIN_DRAM: u64 = 0x05;
/// Domain separator for SPM parity draws.
const DOMAIN_SPM: u64 = 0x06;
/// Domain separator for accumulator bit-flip draws.
const DOMAIN_ACC: u64 = 0x07;

/// Crash position granularity: a crash lands at
/// `fraction/1024` of the way through the attempt's service window.
pub const CRASH_FRACTION_DENOM: u64 = 1024;

/// Accumulator datapath width targeted by engine bit-flips; matches
/// `AccumulatorUnit::BITS` in `capsacc-core` (25-bit saturating
/// accumulators, sign included).
pub const ACC_FAULT_BITS: u64 = 25;

/// Serve-layer fault rates. All rates are per dispatch attempt and
/// must lie in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeFaults {
    /// Probability that a dispatch attempt crashes its worker partway
    /// through the batch (work wasted, batch requeued).
    pub crash_per_dispatch: f64,
    /// Probability that an attempt stalls before recovering.
    pub stall_per_dispatch: f64,
    /// Maximum stall length; actual stalls draw uniformly from
    /// `1..=stall_cycles`.
    pub stall_cycles: u64,
    /// Probability that an attempt runs as a straggler.
    pub straggler_per_dispatch: f64,
    /// Service multiplier applied to straggling attempts (`>= 2`).
    pub straggler_factor: u64,
    /// Probability that a `ShardPool` worker thread panics on one of
    /// its assigned batches (offline replay path).
    pub pool_panic_per_batch: f64,
}

/// Memory-layer fault rates, drawn once per staged DRAM burst.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryFaults {
    /// Probability that a DRAM burst transfer errors and must be
    /// re-burst (re-charged against DRAM bandwidth).
    pub dram_reburst_per_burst: f64,
    /// Probability that an SPM sector fails parity after the write
    /// and must be re-staged from DRAM.
    pub spm_parity_per_burst: f64,
}

/// Engine-layer fault rates, drawn once per accumulator drain op.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineFaults {
    /// Probability that a drained accumulator value has one bit
    /// (within the 25-bit datapath) flipped in flight.
    pub acc_bitflip_per_drain: f64,
    /// When set, flipped values are re-clamped to the saturating
    /// accumulator range, masking flips that escape it; masked flips
    /// are still attributed.
    pub mask_with_saturation: bool,
}

/// A deterministic, seeded fault schedule across the serve, memory
/// and engine layers. See the crate docs for the determinism
/// contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Serve-layer fault configuration.
    pub serve: ServeFaults,
    /// Memory-layer fault configuration.
    pub memory: MemoryFaults,
    /// Engine-layer fault configuration.
    pub engine: EngineFaults,
}

impl ServeFaults {
    /// Fault-free serve layer.
    pub fn none() -> Self {
        ServeFaults {
            crash_per_dispatch: 0.0,
            stall_per_dispatch: 0.0,
            stall_cycles: 0,
            straggler_per_dispatch: 0.0,
            straggler_factor: 2,
            pool_panic_per_batch: 0.0,
        }
    }
}

impl MemoryFaults {
    /// Fault-free memory layer.
    pub fn none() -> Self {
        MemoryFaults {
            dram_reburst_per_burst: 0.0,
            spm_parity_per_burst: 0.0,
        }
    }
}

impl EngineFaults {
    /// Fault-free engine layer.
    pub fn none() -> Self {
        EngineFaults {
            acc_bitflip_per_drain: 0.0,
            mask_with_saturation: false,
        }
    }
}

/// `Default` is the fault-free plan. Simulated paths must not rely on
/// it — the workspace lint's `fault-seed` rule requires seed-explicit
/// construction (`FaultPlan::none()` or `FaultPlan::seeded(seed)`) so
/// a rerun can always be reproduced from the logged seed.
impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: every decision method returns "no fault"
    /// without consuming entropy. Byte-invisible to any consumer.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            serve: ServeFaults::none(),
            memory: MemoryFaults::none(),
            engine: EngineFaults::none(),
        }
    }

    /// A plan with an explicit seed and no faults enabled yet; turn
    /// layers on with [`with_serve`](Self::with_serve),
    /// [`with_memory`](Self::with_memory) and
    /// [`with_engine`](Self::with_engine).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replaces the serve-layer fault configuration.
    pub fn with_serve(mut self, serve: ServeFaults) -> Self {
        self.serve = serve;
        self
    }

    /// Replaces the memory-layer fault configuration.
    pub fn with_memory(mut self, memory: MemoryFaults) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the engine-layer fault configuration.
    pub fn with_engine(mut self, engine: EngineFaults) -> Self {
        self.engine = engine;
        self
    }

    /// True when no layer can ever inject a fault; consumers use this
    /// to keep the fault-free path byte-identical to pre-fault code.
    pub fn is_none(&self) -> bool {
        self.serve.crash_per_dispatch == 0.0
            && self.serve.stall_per_dispatch == 0.0
            && self.serve.straggler_per_dispatch == 0.0
            && self.serve.pool_panic_per_batch == 0.0
            && self.memory.dram_reburst_per_burst == 0.0
            && self.memory.spm_parity_per_burst == 0.0
            && self.engine.acc_bitflip_per_drain == 0.0
    }

    /// True when the serve layer can perturb dispatch attempts.
    pub fn has_serve_faults(&self) -> bool {
        self.serve.crash_per_dispatch > 0.0
            || self.serve.stall_per_dispatch > 0.0
            || self.serve.straggler_per_dispatch > 0.0
    }

    /// True when the memory layer can perturb staging.
    pub fn has_memory_faults(&self) -> bool {
        self.memory.dram_reburst_per_burst > 0.0 || self.memory.spm_parity_per_burst > 0.0
    }

    /// True when the engine layer can flip accumulator bits.
    pub fn has_engine_faults(&self) -> bool {
        self.engine.acc_bitflip_per_drain > 0.0
    }

    /// Validates every rate and parameter; `Err` carries the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        let rates = [
            self.serve.crash_per_dispatch,
            self.serve.stall_per_dispatch,
            self.serve.straggler_per_dispatch,
            self.serve.pool_panic_per_batch,
            self.memory.dram_reburst_per_burst,
            self.memory.spm_parity_per_burst,
            self.engine.acc_bitflip_per_drain,
        ];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err("fault rates must lie in [0, 1]");
        }
        if self.serve.stall_per_dispatch > 0.0 && self.serve.stall_cycles == 0 {
            return Err("stall_per_dispatch > 0 requires stall_cycles >= 1");
        }
        if self.serve.straggler_per_dispatch > 0.0 && self.serve.straggler_factor < 2 {
            return Err("straggler_per_dispatch > 0 requires straggler_factor >= 2");
        }
        Ok(())
    }

    /// Does dispatch attempt `attempt_seq` crash its worker? `Some`
    /// carries the crash point as a numerator over
    /// [`CRASH_FRACTION_DENOM`], always in `1..=1023` so a crash
    /// never lands exactly at the start or the end of the window.
    pub fn worker_crash(&self, attempt_seq: u64) -> Option<u64> {
        let draw = self.prf(DOMAIN_CRASH, attempt_seq);
        if unit(draw) < self.serve.crash_per_dispatch {
            Some(1 + self.prf(DOMAIN_CRASH, attempt_seq ^ u64::MAX) % (CRASH_FRACTION_DENOM - 1))
        } else {
            None
        }
    }

    /// Does dispatch attempt `attempt_seq` stall? `Some` carries the
    /// stall length in cycles, uniform in `1..=stall_cycles`.
    pub fn worker_stall(&self, attempt_seq: u64) -> Option<u64> {
        if self.serve.stall_cycles == 0 {
            return None;
        }
        let draw = self.prf(DOMAIN_STALL, attempt_seq);
        if unit(draw) < self.serve.stall_per_dispatch {
            Some(1 + self.prf(DOMAIN_STALL, attempt_seq ^ u64::MAX) % self.serve.stall_cycles)
        } else {
            None
        }
    }

    /// Does dispatch attempt `attempt_seq` straggle? `Some` carries
    /// the service multiplier.
    pub fn straggler(&self, attempt_seq: u64) -> Option<u64> {
        let draw = self.prf(DOMAIN_STRAGGLER, attempt_seq);
        if unit(draw) < self.serve.straggler_per_dispatch {
            Some(self.serve.straggler_factor)
        } else {
            None
        }
    }

    /// Does shard-pool worker `worker` panic while executing batch
    /// `batch`? Keyed by the (worker, batch) pair so the decision is
    /// independent of thread interleaving.
    pub fn pool_panic(&self, worker: u64, batch: u64) -> bool {
        let index = worker
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(batch);
        unit(self.prf(DOMAIN_POOL, index)) < self.serve.pool_panic_per_batch
    }

    /// Does DRAM burst `burst_seq` error and require a re-burst?
    pub fn dram_reburst(&self, burst_seq: u64) -> bool {
        unit(self.prf(DOMAIN_DRAM, burst_seq)) < self.memory.dram_reburst_per_burst
    }

    /// Does the SPM sector written by burst `burst_seq` fail parity
    /// and require a re-stage?
    pub fn spm_parity(&self, burst_seq: u64) -> bool {
        unit(self.prf(DOMAIN_SPM, burst_seq)) < self.memory.spm_parity_per_burst
    }

    /// Does accumulator drain op `op_seq` suffer a bit-flip? `Some`
    /// carries the flipped bit position in `0..ACC_FAULT_BITS`.
    pub fn acc_bitflip(&self, op_seq: u64) -> Option<u32> {
        let draw = self.prf(DOMAIN_ACC, op_seq);
        if unit(draw) < self.engine.acc_bitflip_per_drain {
            let bit = self.prf(DOMAIN_ACC, op_seq ^ u64::MAX) % ACC_FAULT_BITS;
            Some(u32::try_from(bit).expect("bit position fits u32"))
        } else {
            None
        }
    }

    /// Enumerates every worker crash the plan injects over the first
    /// `attempts` dispatch attempts, as `(attempt_seq, crash
    /// fraction)` pairs. Tests use this to cross-check the runtime's
    /// logged crashes against the schedule.
    pub fn enumerate_worker_crashes(&self, attempts: u64) -> Vec<(u64, u64)> {
        (0..attempts)
            .filter_map(|seq| self.worker_crash(seq).map(|f| (seq, f)))
            .collect()
    }

    /// SplitMix64-style pseudorandom function over `(seed, domain,
    /// index)`. Stateless: the whole schedule is a pure function of
    /// the plan.
    fn prf(&self, domain: u64, index: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps a PRF draw to a uniform float in `[0, 1)` using the top 53
/// bits, so threshold comparisons are exact in f64.
fn unit(draw: u64) -> f64 {
    let mantissa = draw >> 11;
    mantissa_f64(mantissa) / mantissa_f64(1u64 << 53)
}

/// Exact u64→f64 conversion for values below 2^53.
fn mantissa_f64(v: u64) -> f64 {
    debug_assert!(v <= 1u64 << 53);
    let hi = u32::try_from(v >> 32).expect("below 2^53");
    let lo = u32::try_from(v & 0xFFFF_FFFF).expect("masked to 32 bits");
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::seeded(seed)
            .with_serve(ServeFaults {
                crash_per_dispatch: 0.25,
                stall_per_dispatch: 0.25,
                stall_cycles: 500,
                straggler_per_dispatch: 0.25,
                straggler_factor: 4,
                pool_panic_per_batch: 0.25,
            })
            .with_memory(MemoryFaults {
                dram_reburst_per_burst: 0.25,
                spm_parity_per_burst: 0.25,
            })
            .with_engine(EngineFaults {
                acc_bitflip_per_drain: 0.25,
                mask_with_saturation: true,
            })
    }

    #[test]
    fn none_plan_is_silent_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().expect("none plan is valid");
        for seq in 0..10_000 {
            assert_eq!(plan.worker_crash(seq), None);
            assert_eq!(plan.worker_stall(seq), None);
            assert_eq!(plan.straggler(seq), None);
            assert!(!plan.pool_panic(seq, seq));
            assert!(!plan.dram_reburst(seq));
            assert!(!plan.spm_parity(seq));
            assert_eq!(plan.acc_bitflip(seq), None);
        }
        assert_eq!(FaultPlan::default(), plan);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = lossy_plan(42);
        let b = lossy_plan(42);
        for seq in 0..5_000 {
            assert_eq!(a.worker_crash(seq), b.worker_crash(seq));
            assert_eq!(a.worker_stall(seq), b.worker_stall(seq));
            assert_eq!(a.straggler(seq), b.straggler(seq));
            assert_eq!(a.acc_bitflip(seq), b.acc_bitflip(seq));
            assert_eq!(a.dram_reburst(seq), b.dram_reburst(seq));
            assert_eq!(a.spm_parity(seq), b.spm_parity(seq));
        }
        assert_eq!(
            a.enumerate_worker_crashes(5_000),
            b.enumerate_worker_crashes(5_000)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = lossy_plan(1);
        let b = lossy_plan(2);
        let crashes_a = a.enumerate_worker_crashes(2_000);
        let crashes_b = b.enumerate_worker_crashes(2_000);
        assert_ne!(crashes_a, crashes_b, "seeds 1 and 2 agree on 2000 draws");
    }

    #[test]
    fn rates_land_near_target() {
        let plan = lossy_plan(7);
        let n = 40_000u64;
        let crashes = plan.enumerate_worker_crashes(n).len();
        let expect = 10_000usize;
        let slack = 1_000usize;
        assert!(
            crashes.abs_diff(expect) < slack,
            "crash rate off: {crashes} of {n} at p=0.25"
        );
    }

    #[test]
    fn crash_fraction_in_open_interval() {
        let plan = lossy_plan(11);
        for (_, frac) in plan.enumerate_worker_crashes(10_000) {
            assert!((1..CRASH_FRACTION_DENOM).contains(&frac));
        }
    }

    #[test]
    fn stall_and_bitflip_ranges_hold() {
        let plan = lossy_plan(13);
        for seq in 0..10_000 {
            if let Some(stall) = plan.worker_stall(seq) {
                assert!((1..=plan.serve.stall_cycles).contains(&stall));
            }
            if let Some(bit) = plan.acc_bitflip(seq) {
                assert!(u64::from(bit) < ACC_FAULT_BITS);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut plan = lossy_plan(1);
        plan.serve.crash_per_dispatch = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = lossy_plan(1);
        plan.serve.stall_cycles = 0;
        assert!(plan.validate().is_err());
        let mut plan = lossy_plan(1);
        plan.serve.straggler_factor = 1;
        assert!(plan.validate().is_err());
    }
}
