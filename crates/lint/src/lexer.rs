//! A minimal Rust lexer, just faithful enough to audit token streams.
//!
//! The rule engine needs exactly one guarantee from this module: a
//! keyword or identifier reported at `(line, col)` really is code —
//! never the inside of a string literal, raw string, char literal,
//! byte literal, line comment, nested block comment or doc comment.
//! Everything subtler (float suffix grammar, punctuation joining,
//! shebangs) is deliberately loose: rules only look at identifiers,
//! single-character punctuation and comment text.

/// What a [`Token`] is.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`) — distinct from [`TokenKind::Char`].
    Lifetime,
    /// Numeric literal (integers and floats, suffixes included).
    Number,
    /// String literal: `"…"`, `b"…"`, `c"…"` (escapes handled).
    Str,
    /// Raw string literal: `r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"`.
    RawStr,
    /// `// …` comment; `doc` distinguishes `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` is `/** … */` or `/*! … */`.
    BlockComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// Any other single character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token category.
    pub kind: TokenKind,
    /// Raw source text of the token (comment markers included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based byte column of the token's first character.
    pub col: u32,
    /// 1-based line of the token's last character (differs from
    /// `line` only for multi-line strings and block comments).
    pub end_line: u32,
}

impl Token {
    /// Whether the token is a comment of either form.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Lexes `src` into a token stream, comments included.
///
/// Unterminated constructs (string/comment running to end of file) are
/// tolerated and closed at EOF — the linter must keep walking a broken
/// tree rather than panic mid-audit.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.advance(1);
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident_or_prefixed(),
                _ => {
                    let start = self.pos;
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    let (line, col) = (self.line, self.col);
                    self.advance(ch_len);
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances `n` bytes, updating line/col bookkeeping.
    fn advance(&mut self, n: usize) {
        for &b in &self.bytes[self.pos..self.pos + n] {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos += n;
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
            col,
            end_line: self.line - u32::from(self.col == 1 && self.pos > start),
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance(1);
        }
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.push(TokenKind::LineComment { doc }, start, line, col);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance(2); // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with("/**") && !text.starts_with("/**/")) || text.starts_with("/*!");
        self.push(TokenKind::BlockComment { doc }, start, line, col);
    }

    /// Lexes a `"…"` string starting at the current `"`; `start` may
    /// point earlier when a `b`/`c` prefix was already consumed.
    fn string(&mut self, start: usize) {
        let (line, col) = self.start_at(start);
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                b'"' => {
                    self.advance(1);
                    break;
                }
                _ => self.advance(1),
            }
        }
        self.push(TokenKind::Str, start, line, col);
    }

    /// Lexes a raw string whose prefix (`r`, `br`, `cr`) ends at the
    /// current position (pointing at `#` or `"`).
    fn raw_string(&mut self, start: usize) {
        let (line, col) = self.start_at(start);
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.advance(1);
        }
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"'
                && self.bytes[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                self.advance(1 + hashes);
                break;
            }
            self.advance(1);
        }
        self.push(TokenKind::RawStr, start, line, col);
    }

    /// Reconstructs the (line, col) of an earlier byte offset on the
    /// current line (prefixes never span lines).
    fn start_at(&self, start: usize) -> (u32, u32) {
        let back = u32::try_from(self.pos - start).expect("prefix length fits u32");
        (self.line, self.col - back)
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        // `'` then: an escape is always a char literal; otherwise one
        // char followed by a closing `'` is a char literal, anything
        // else is a lifetime.
        if self.peek(1) == Some(b'\\') {
            self.advance(2);
            while self.pos < self.bytes.len() {
                match self.bytes[self.pos] {
                    b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                    b'\'' => {
                        self.advance(1);
                        break;
                    }
                    _ => self.advance(1),
                }
            }
            self.push(TokenKind::Char, start, line, col);
            return;
        }
        let after = self.src[self.pos + 1..].chars().next();
        let char_len = after.map_or(0, char::len_utf8);
        if after.is_some() && self.bytes.get(self.pos + 1 + char_len) == Some(&b'\'') {
            self.advance(2 + char_len);
            self.push(TokenKind::Char, start, line, col);
        } else {
            self.advance(1);
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.advance(1);
            }
            self.push(TokenKind::Lifetime, start, line, col);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b == b'.' || b.is_ascii_alphanumeric())
        {
            // `0..5` must stay three tokens: a `.` only joins the
            // number when the next byte is not another `.`.
            if self.bytes[self.pos] == b'.' && self.peek(1) == Some(b'.') {
                break;
            }
            let was_exp = matches!(self.bytes[self.pos], b'e' | b'E')
                && self.pos > start
                && self.bytes[self.pos - 1].is_ascii_digit();
            self.advance(1);
            if was_exp && matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                self.advance(1);
            }
        }
        self.push(TokenKind::Number, start, line, col);
    }

    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.advance(1);
        }
        let ident = &self.src[start..self.pos];
        // String-literal prefixes (`r"…"`, `b"…"`, `br#"…"#`, `c"…"`,
        // `cr"…"`, `b'…'`) and raw identifiers (`r#ident`).
        match (ident, self.peek(0)) {
            ("r" | "br" | "cr", Some(b'#')) => {
                // `r#ident` is a raw identifier, `r#"…"` a raw string.
                let mut j = self.pos;
                while self.bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'"') {
                    self.raw_string(start);
                } else {
                    self.advance(1);
                    while self
                        .peek(0)
                        .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
                    {
                        self.advance(1);
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
            }
            ("r" | "br" | "cr", Some(b'"')) => self.raw_string(start),
            ("b" | "c", Some(b'"')) => self.string(start),
            ("b", Some(b'\'')) => {
                // Byte literal: lex like a char literal, keep the prefix.
                self.advance(1);
                if self.peek(0) == Some(b'\\') {
                    self.advance(2.min(self.bytes.len() - self.pos));
                }
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.advance(1);
                }
                if self.pos < self.bytes.len() {
                    self.advance(1);
                }
                self.push(TokenKind::Char, start, line, col);
            }
            _ => self.push(TokenKind::Ident, start, line, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_are_opaque() {
        // Hash-delimited raw string whose body would otherwise lex as
        // a quote, a line comment and an `unsafe` keyword.
        let toks = kinds("let s = r#\"quote \" // unsafe\"#;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unsafe")));
        assert!(!toks
            .iter()
            .any(|(k, _)| matches!(k, TokenKind::LineComment { .. })));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
        // Byte and double-hash variants.
        let toks = kinds("br##\"as u64 \"# still\"## cr\"x\"");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).count(),
            2
        );
        assert!(!toks.iter().any(|(_, t)| t == "u64"));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0].0, TokenKind::BlockComment { doc: false }));
        assert!(toks[0].1.contains("still comment"));
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = kinds("let c = 'a'; let l: &'static str = x; let e = '\\n';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(lifetimes.len(), 1, "{toks:?}");
        assert_eq!(lifetimes[0].1, "'static");
        // A char literal must not swallow the rest of the line: the
        // identifier after it still lexes as code.
        let toks = kinds("let c = 'x'; Instant");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let toks = kinds("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/*! bang doc */\n/* plain */");
        let docs: Vec<bool> = toks
            .iter()
            .map(|(k, _)| match k {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => *doc,
                _ => panic!("non-comment token"),
            })
            .collect();
        assert_eq!(docs, [true, true, false, true, true, false]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab cd\n  ef\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
        // Multi-line block comments record their end line.
        let toks = lex("/* a\nb\nc */ x");
        assert_eq!((toks[0].line, toks[0].end_line), (1, 3));
        assert_eq!((toks[1].line, toks[1].col), (3, 6));
    }

    #[test]
    fn strings_hide_keywords() {
        let toks = kinds("let s = \"unsafe as u64 Instant\"; done");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && (t == "unsafe" || t == "Instant")));
        assert!(toks.iter().any(|(_, t)| t == "done"));
    }
}
