//! Diagnostics and the machine-readable JSON report.
//!
//! The JSON renderer follows the same conventions as the bench
//! artifacts (`bench/src/json.rs`): two-space indent for scalar
//! fields in insertion order, four-space one-object-per-line rows
//! inside arrays, and a trailing newline — so `LINT_report.json`
//! diffs line-by-line and is byte-identical across reruns. The
//! renderer is re-implemented here rather than imported because
//! `capsacc-lint` must stay dependency-free.

use std::fmt::Write as _;

/// The closed set of rule names, sorted; `waiver` covers hygiene of
/// the waiver grammar itself (unknown rule, missing reason, unused).
pub const RULES: [&str; 7] = [
    "cast-audit",
    "determinism",
    "doc-drift",
    "fault-seed",
    "safety-comment",
    "unsafe-containment",
    "waiver",
];

/// One finding at a `file:line:col` position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when an inline `// lint:allow(rule, reason)`
    /// waiver covers this finding.
    pub waived: Option<String>,
}

impl Diagnostic {
    /// Renders the diagnostic in the classic `path:line:col` shape.
    pub fn render(&self) -> String {
        let mark = if self.waived.is_some() {
            " (waived)"
        } else {
            ""
        };
        format!(
            "{}:{}:{}: [{}] {}{}",
            self.path, self.line, self.col, self.rule, self.message, mark
        )
    }
}

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned (Rust sources plus audited docs).
    pub files_scanned: usize,
    /// All findings, waived included, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Sorts diagnostics into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
    }

    /// Findings not covered by a waiver — these fail `--deny`.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived.is_none())
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.diagnostics.len() - self.unwaived_count()
    }

    /// Renders the byte-stable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"report\": \"capsacc-lint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"unwaived\": {},", self.unwaived_count());
        let _ = writeln!(out, "  \"waived\": {},", self.waived_count());
        out.push_str("  \"rule_counts\": [\n");
        for rule in RULES {
            let unwaived = self
                .diagnostics
                .iter()
                .filter(|d| d.rule == rule && d.waived.is_none())
                .count();
            let waived = self
                .diagnostics
                .iter()
                .filter(|d| d.rule == rule && d.waived.is_some())
                .count();
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{rule}\", \"unwaived\": {unwaived}, \"waived\": {waived}}},"
            );
        }
        close_rows(&mut out);
        out.push_str("  ],\n  \"diagnostics\": [\n");
        for d in self.unwaived() {
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}},",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message)
            );
        }
        close_rows(&mut out);
        out.push_str("  ],\n  \"waivers\": [\n");
        for d in self.diagnostics.iter().filter(|d| d.waived.is_some()) {
            let reason = d.waived.as_deref().unwrap_or_default();
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\", \"reason\": \"{}\"}},",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.col,
                json_escape(&d.message),
                json_escape(reason)
            );
        }
        close_rows(&mut out);
        out.push_str("  ]\n}\n");
        out
    }
}

/// Drops the trailing comma of the last emitted row, if any.
fn close_rows(out: &mut String) {
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let d = |rule, path: &str, line, waived: Option<&str>| Diagnostic {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            message: format!("m{line}"),
            waived: waived.map(str::to_string),
        };
        Report {
            files_scanned: 3,
            diagnostics: vec![
                d("determinism", "b.rs", 2, None),
                d("cast-audit", "a.rs", 9, Some("ok")),
                d("cast-audit", "a.rs", 4, None),
            ],
        }
    }

    #[test]
    fn sort_orders_by_path_line_col_rule() {
        let mut r = sample();
        r.sort();
        let order: Vec<(String, u32)> = r
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            [
                ("a.rs".to_string(), 4),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 2)
            ]
        );
        assert_eq!(r.unwaived_count(), 2);
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn json_is_byte_identical_across_renders() {
        let mut r = sample();
        r.sort();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.ends_with("\n"));
        assert!(a.contains("\"unwaived\": 2,"));
        assert!(a.contains("\"reason\": \"ok\""));
        // No trailing commas before closing brackets (the BENCH json
        // convention close_rows enforces).
        assert!(!a.contains(",\n  ]"));
    }

    #[test]
    fn escaping_covers_quotes_and_control_bytes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_marks_waived_findings() {
        let r = sample();
        assert_eq!(r.diagnostics[0].render(), "b.rs:2:1: [determinism] m2");
        assert!(r.diagnostics[1].render().ends_with("(waived)"));
    }
}
