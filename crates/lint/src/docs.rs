//! `doc-drift`: README/ARCHITECTURE references must name real code.
//!
//! The audited docs promise that their "Invariants → Tests" pointers
//! and workspace map track the code. This pass checks, per Markdown
//! line, every `` `…` `` code span that looks like a reference:
//!
//! - `path/to/file.rs` (optionally `file.rs::item`) must resolve to a
//!   workspace source file (exact path or unique basename suffix),
//!   and the named item must appear in that file;
//! - `crates/…`, `src/…`, `tests/…`, `vendor/…` paths must exist on
//!   disk (brace/glob shorthands like `lut/{a,b}.rs` are checked up
//!   to the expansion point);
//! - bare `snake_case` identifiers (all `[a-z0-9_]`, at least one
//!   underscore, length ≥ 4) must appear somewhere in the workspace
//!   sources or file paths.
//!
//! Spans containing whitespace are prose and skipped. Waivers use the
//! same grammar inside HTML comments: `<!-- lint:allow(doc-drift,
//! reason) -->` on the line above the reference.

use std::path::Path;

use crate::report::Diagnostic;
use crate::rules::{apply_waivers, parse_waiver_text, Waiver};

/// A snapshot of the workspace used to resolve doc references.
pub struct Inventory {
    /// Repo-relative `/`-separated paths of every audited source file.
    pub paths: Vec<String>,
    /// Concatenated contents of those files plus their paths — the
    /// haystack for bare-identifier references.
    pub haystack: String,
    /// `(path, contents)` pairs for `file.rs::item` resolution.
    pub files: Vec<(String, String)>,
}

/// Lints one Markdown file against the workspace inventory.
pub fn lint_markdown(path: &str, text: &str, root: &Path, inv: &Inventory) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut waivers = Vec::new();
    let mut nonblank_lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = u32::try_from(idx + 1).expect("line fits u32");
        if !raw.trim().is_empty() {
            nonblank_lines.push(line);
        }
        if let Some(pos) = raw.find("lint:allow(") {
            if let Some((rule, reason)) = parse_waiver_text(raw) {
                waivers.push(Waiver {
                    rule,
                    reason,
                    line,
                    col: u32::try_from(pos + 1).expect("col fits u32"),
                    used: false,
                });
            }
        }
        for (col, span) in code_spans(raw) {
            if let Some(message) = check_span(span, root, inv) {
                diags.push(Diagnostic {
                    rule: "doc-drift",
                    path: path.to_string(),
                    line,
                    col,
                    message,
                    waived: None,
                });
            }
        }
    }
    // Coverage for Markdown: the waiver's own line plus the next
    // non-blank line.
    apply_waivers(path, &mut diags, &mut waivers, |l| {
        let mut covered = vec![l];
        if let Some(&next) = nonblank_lines.iter().find(|&&n| n > l) {
            covered.push(next);
        }
        covered
    });
    diags
}

/// Extracts `` `…` `` spans from one line as `(1-based col, content)`.
fn code_spans(line: &str) -> Vec<(u32, &str)> {
    let mut out = Vec::new();
    let mut rest = line;
    let mut base = 0usize;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let col = u32::try_from(base + open + 2).expect("col fits u32");
        out.push((col, &after[..close]));
        base += open + 1 + close + 1;
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// Returns a drift message if the span is a checkable reference that
/// fails to resolve; `None` for prose spans and resolved references.
fn check_span(span: &str, root: &Path, inv: &Inventory) -> Option<String> {
    if span.is_empty() || span.chars().any(char::is_whitespace) {
        return None;
    }
    // `file.rs::item` — split the item off first.
    let (pathish, item) = match span.split_once("::") {
        Some((p, f)) if p.ends_with(".rs") && !f.is_empty() => (p, Some(f)),
        _ => (span, None),
    };
    // Brace/glob shorthand (`lut/{a,b}.rs`, `bin/exp_*.rs`): verify
    // the directory part before the expansion point only.
    if let Some(cut) = pathish.find(['{', '*']) {
        let dir_end = pathish[..cut].rfind('/')?;
        let prefix = &pathish[..dir_end];
        if prefix.contains('/') && resolve_dir_or_file(prefix, root, inv).is_none() {
            return Some(format!("references missing path `{prefix}`"));
        }
        return None;
    }
    if pathish.ends_with(".rs") {
        let Some(resolved) = resolve_source(pathish, inv) else {
            return Some(format!("references missing source file `{pathish}`"));
        };
        if let Some(item) = item {
            let found = inv
                .files
                .iter()
                .any(|(p, content)| p == resolved && content.contains(item));
            if !found {
                return Some(format!("`{resolved}` does not define `{item}`"));
            }
        }
        return None;
    }
    if ["crates/", "src/", "tests/", "vendor/"]
        .iter()
        .any(|p| pathish.starts_with(p) || pathish.trim_end_matches('/') == p.trim_end_matches('/'))
    {
        if resolve_dir_or_file(pathish.trim_end_matches('/'), root, inv).is_none() {
            return Some(format!("references missing path `{pathish}`"));
        }
        return None;
    }
    // Bare snake_case identifier.
    if span.len() >= 4
        && span.contains('_')
        && span
            .chars()
            .all(|c| c == '_' || c.is_ascii_lowercase() || c.is_ascii_digit())
        && !inv.haystack.contains(span)
    {
        return Some(format!(
            "names `{span}`, which appears nowhere in the workspace sources"
        ));
    }
    None
}

/// Resolves a `.rs` reference against the inventory: exact relative
/// path, or a `/`-suffix match (so `engine.rs` and
/// `core/src/engine.rs` both resolve).
fn resolve_source<'i>(pathish: &str, inv: &'i Inventory) -> Option<&'i str> {
    let suffix = format!("/{pathish}");
    inv.paths
        .iter()
        .find(|p| p.as_str() == pathish || p.ends_with(&suffix))
        .map(String::as_str)
}

/// Resolves a directory-or-file reference: on disk relative to the
/// repo root (also under `crates/`), or as an inventory suffix.
fn resolve_dir_or_file(pathish: &str, root: &Path, inv: &Inventory) -> Option<()> {
    if root.join(pathish).exists() || root.join("crates").join(pathish).exists() {
        return Some(());
    }
    resolve_source(pathish, inv).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Inventory {
        let engine = "pub fn run_inference() {}\n".to_string();
        let paths = vec![
            "crates/core/src/engine.rs".to_string(),
            "crates/fixed/src/lut/exp.rs".to_string(),
        ];
        let mut haystack = String::new();
        for p in &paths {
            haystack.push_str(p);
            haystack.push('\n');
        }
        haystack.push_str(&engine);
        Inventory {
            files: vec![("crates/core/src/engine.rs".to_string(), engine)],
            paths,
            haystack,
        }
    }

    fn drift(text: &str) -> Vec<(u32, u32, String)> {
        lint_markdown("DOC.md", text, Path::new("/nonexistent"), &inv())
            .into_iter()
            .filter(|d| d.waived.is_none())
            .map(|d| (d.line, d.col, d.message))
            .collect()
    }

    #[test]
    fn missing_file_is_drift() {
        assert_eq!(drift("See `engine.rs` for the loop.\n"), []);
        let out = drift("See `missing_file.rs` for the loop.\n");
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].0, out[0].1), (1, 6));
        assert!(out[0].2.contains("missing_file.rs"));
    }

    #[test]
    fn item_references_must_resolve() {
        assert_eq!(drift("Call `engine.rs::run_inference` first.\n"), []);
        let out = drift("Call `engine.rs::gone_fn` first.\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("gone_fn"));
    }

    #[test]
    fn glob_and_brace_shorthands_check_the_directory() {
        assert_eq!(drift("Tables live in `lut/{exp,sqrt}.rs`.\n"), []);
        let out = drift("Tables live in `nowhere/sub/{a,b}.rs`.\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("nowhere/sub"));
    }

    #[test]
    fn bare_identifiers_must_appear_in_sources() {
        assert_eq!(drift("The `run_inference` entry point.\n"), []);
        let out = drift("The `vanished_helper` entry point.\n");
        assert_eq!(out.len(), 1);
        // Prose spans (whitespace) and short/non-snake spans are skipped.
        assert_eq!(drift("Run `cargo test -p capsacc-core` and `a_b`.\n"), []);
    }

    #[test]
    fn html_comment_waivers_cover_the_next_nonblank_line() {
        let text = "<!-- lint:allow(doc-drift, removed on purpose) -->\n\nSee `missing_file.rs`.\n";
        assert_eq!(drift(text), []);
        // And hygiene still applies: an unused waiver is a finding.
        let text = "<!-- lint:allow(doc-drift, nothing here) -->\n\nAll fine.\n";
        let out = drift(text);
        assert_eq!(out.len(), 1);
        assert!(out[0].2.contains("unused"));
    }
}
