//! Deterministic workspace walk and per-file rule scoping.
//!
//! Lint targets are every `.rs` file under `crates/*/src/` plus the
//! facade `src/lib.rs`. Integration tests (`tests/`), benches and
//! `vendor/` stand-ins are excluded from the rules but still feed the
//! doc-drift [`Inventory`], so ARCHITECTURE.md may point at test
//! files and functions. Directory entries are visited in sorted
//! order, so diagnostics and the JSON report are byte-stable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::docs::{lint_markdown, Inventory};
use crate::report::Report;
use crate::rules::{lint_rust_source, FileScope};

/// Markdown files audited by the doc-drift rule.
const AUDITED_DOCS: [&str; 2] = ["README.md", "ARCHITECTURE.md"];

/// Decides which rules apply to a repo-relative source path.
pub fn scope_for(rel: &str) -> FileScope {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    FileScope {
        // bench is the host-measurement harness: wall-clock timing is
        // its purpose, so the determinism rule stops at its boundary.
        determinism: crate_name != Some("bench"),
        cast_audit: true,
        safety: true,
        // Seed-hiding FaultPlan construction is forbidden everywhere:
        // an implicit default seed would break rerun reproducibility
        // exactly where it matters most.
        fault_seed: true,
        crate_root: rel == "src/lib.rs"
            || (rel.starts_with("crates/")
                && rel.ends_with("/src/lib.rs")
                && rel.matches('/').count() == 3),
    }
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut targets = Vec::new();
    for dir in sorted_subdirs(&root.join("crates"))? {
        walk_rs(&dir.join("src"), &mut targets)?;
    }
    walk_rs(&root.join("src"), &mut targets)?;

    // The doc-drift inventory additionally covers integration tests
    // and benches, so docs may reference them.
    let mut inv_paths = targets.clone();
    for dir in sorted_subdirs(&root.join("crates"))? {
        walk_rs(&dir.join("tests"), &mut inv_paths)?;
        walk_rs(&dir.join("benches"), &mut inv_paths)?;
    }
    walk_rs(&root.join("tests"), &mut inv_paths)?;
    walk_rs(&root.join("examples"), &mut inv_paths)?;

    let mut inv = Inventory {
        paths: Vec::new(),
        haystack: String::new(),
        files: Vec::new(),
    };
    for abs in &inv_paths {
        let rel = rel_path(root, abs);
        let content = fs::read_to_string(abs)?;
        inv.haystack.push_str(&content);
        inv.haystack.push('\n');
        inv.haystack.push_str(&rel);
        inv.haystack.push('\n');
        inv.files.push((rel.clone(), content));
        inv.paths.push(rel);
    }

    let mut report = Report::default();
    for abs in &targets {
        let rel = rel_path(root, abs);
        let src = fs::read_to_string(abs)?;
        report
            .diagnostics
            .extend(lint_rust_source(&rel, &src, scope_for(&rel)));
        report.files_scanned += 1;
    }
    for md in AUDITED_DOCS {
        let path = root.join(md);
        if path.is_file() {
            let text = fs::read_to_string(&path)?;
            report
                .diagnostics
                .extend(lint_markdown(md, &text, root, &inv));
            report.files_scanned += 1;
        }
    }
    report.sort();
    Ok(report)
}

/// Repo-relative `/`-separated path.
fn rel_path(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    parts.join("/")
}

/// Immediate subdirectories of `dir`, sorted by name.
fn sorted_subdirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, sorted by name.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        entries.push(entry?.path());
    }
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
