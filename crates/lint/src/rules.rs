//! Token-stream rules and the inline waiver grammar.
//!
//! Rules run over the [`crate::lexer`] token stream, so string
//! literals, char literals and comments can never false-positive a
//! keyword match. `#[cfg(test)]` items (and `#[test]` functions) are
//! excluded from every rule by brace-matched region tracking.
//!
//! Waiver grammar: a comment containing `lint:allow(rule, reason)`
//! waives findings of `rule` on the comment's own line and on the
//! next line that carries code. A waiver with an unknown rule name, a
//! missing reason, or no finding to cover is itself a finding (rule
//! `waiver`), so the exception list can never silently rot.

use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Diagnostic, RULES};

/// Identifiers whose appearance in simulated-path code breaks the
/// byte-identical-rerun guarantee.
const NONDETERMINISM: [&str; 5] = ["Instant", "SystemTime", "thread_rng", "HashMap", "HashSet"];

/// Cast targets that can silently truncate on 32-bit hosts or wrap
/// accounting totals; conversions must go through `u64_from` /
/// `usize_from` / `checked_product` or `From`-based widenings.
const LOSSY_TARGETS: [&str; 3] = ["u64", "usize", "i64"];

/// Which rule families apply to a given file.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    /// Simulated-path crate: clocks and unordered maps are forbidden.
    pub determinism: bool,
    /// Accounting code: bare `as u64`/`as usize`/`as i64` forbidden.
    pub cast_audit: bool,
    /// `unsafe` requires an adjacent `// SAFETY:` comment, and
    /// `#[allow(unsafe_code)]` escape hatches need waivers.
    pub safety: bool,
    /// Fault plans must be seed-explicit: `FaultPlan::default()` is
    /// forbidden in favor of `FaultPlan::seeded(seed)` / `none()`.
    pub fault_seed: bool,
    /// File is a crate root and must pin `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// One parsed `lint:allow(rule, reason)` waiver.
#[derive(Debug)]
pub(crate) struct Waiver {
    pub(crate) rule: String,
    pub(crate) reason: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) used: bool,
}

/// Lints one Rust source file. `path` is only used to label
/// diagnostics; the caller decides the [`FileScope`].
pub fn lint_rust_source(path: &str, src: &str, scope: FileScope) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let max_line = tokens.iter().map(|t| t.end_line).max().unwrap_or(1);
    let structure = analyze(&tokens, &code, max_line);

    let mut diags = Vec::new();
    let diag = |rule: &'static str, t: &Token, message: String| Diagnostic {
        rule,
        path: path.to_string(),
        line: t.line,
        col: t.col,
        message,
        waived: None,
    };

    for &i in &code {
        if structure.in_test[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if scope.determinism && NONDETERMINISM.contains(&t.text.as_str()) {
            diags.push(diag(
                "determinism",
                t,
                format!("nondeterminism source `{}` in simulated-path code", t.text),
            ));
        }
        if scope.cast_audit && t.text == "as" {
            if let Some(&j) = code.iter().find(|&&j| j > i) {
                if tokens[j].kind == TokenKind::Ident
                    && LOSSY_TARGETS.contains(&tokens[j].text.as_str())
                {
                    diags.push(diag(
                        "cast-audit",
                        t,
                        format!(
                            "bare `as {}` cast; use u64_from/usize_from/checked_product or a From-based widening",
                            tokens[j].text
                        ),
                    ));
                }
            }
        }
        if scope.fault_seed && t.text == "FaultPlan" {
            let mut after = code.iter().filter(|&&j| j > i);
            let (n1, n2, n3) = (after.next(), after.next(), after.next());
            let punct = |j: Option<&usize>, c| j.is_some_and(|&j| is_punct(&tokens[j], c));
            let ident = |j: Option<&usize>, s: &str| {
                j.is_some_and(|&j| tokens[j].kind == TokenKind::Ident && tokens[j].text == s)
            };
            if punct(n1, ':') && punct(n2, ':') && ident(n3, "default") {
                diags.push(diag(
                    "fault-seed",
                    t,
                    "`FaultPlan::default()` hides the fault seed; construct with \
                     `FaultPlan::seeded(seed)` or `FaultPlan::none()`"
                        .to_string(),
                ));
            }
        }
        if scope.safety && t.text == "unsafe" && !structure.safety_commented(t) {
            diags.push(diag(
                "safety-comment",
                t,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }

    if scope.safety {
        for &(i, ref kind) in &structure.unsafe_attrs {
            if structure.in_test[i] {
                continue;
            }
            if kind == "allow" {
                diags.push(diag(
                    "unsafe-containment",
                    &tokens[i],
                    "escape hatch `allow(unsafe_code)`".to_string(),
                ));
            }
        }
    }
    if scope.crate_root {
        let forbid = structure.unsafe_attrs.iter().find(|(_, k)| k == "forbid");
        let deny = structure.unsafe_attrs.iter().find(|(_, k)| k == "deny");
        match (forbid, deny) {
            (Some(_), _) => {}
            (None, Some(&(i, _))) => diags.push(diag(
                "unsafe-containment",
                &tokens[i],
                "crate root relies on `deny(unsafe_code)` instead of `forbid`".to_string(),
            )),
            (None, None) => diags.push(Diagnostic {
                rule: "unsafe-containment",
                path: path.to_string(),
                line: 1,
                col: 1,
                message: "crate root missing `#![forbid(unsafe_code)]`".to_string(),
                waived: None,
            }),
        }
    }

    let mut waivers = parse_waivers(&tokens);
    apply_waivers(path, &mut diags, &mut waivers, |l| {
        structure.waiver_coverage(l)
    });
    diags
}

/// Parses every `lint:allow(rule, reason)` waiver out of the comment
/// tokens. Exposed to the docs module, which reuses the grammar for
/// HTML comments in Markdown.
pub(crate) fn parse_waiver_text(text: &str) -> Option<(String, String)> {
    let start = text.find("lint:allow(")?;
    let body = &text[start + "lint:allow(".len()..];
    let end = body.find(')')?;
    let body = &body[..end];
    let (rule, reason) = body.split_once(',').unwrap_or((body, ""));
    Some((rule.trim().to_string(), reason.trim().to_string()))
}

fn parse_waivers(tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in tokens {
        // Waivers live in plain comments only: doc comments merely
        // *describe* the grammar (as this crate's own docs do).
        let plain = matches!(
            t.kind,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        );
        if !plain {
            continue;
        }
        if let Some((rule, reason)) = parse_waiver_text(&t.text) {
            out.push(Waiver {
                rule,
                reason,
                line: t.line,
                col: t.col,
                used: false,
            });
        }
    }
    out
}

/// Applies waivers to the findings and appends waiver-hygiene
/// findings (unknown rule, missing reason, unused waiver). The
/// `coverage` closure maps a waiver's line to the lines it covers.
pub(crate) fn apply_waivers(
    path: &str,
    diags: &mut Vec<Diagnostic>,
    waivers: &mut [Waiver],
    coverage: impl Fn(u32) -> Vec<u32>,
) {
    let mut hygiene = Vec::new();
    for w in waivers.iter_mut() {
        if !RULES.contains(&w.rule.as_str()) {
            hygiene.push(Diagnostic {
                rule: "waiver",
                path: path.to_string(),
                line: w.line,
                col: w.col,
                message: format!("waiver names unknown rule `{}`", w.rule),
                waived: None,
            });
            w.used = true; // already reported; don't double-flag as unused
            continue;
        }
        if w.reason.is_empty() {
            hygiene.push(Diagnostic {
                rule: "waiver",
                path: path.to_string(),
                line: w.line,
                col: w.col,
                message: format!("waiver for `{}` is missing a reason", w.rule),
                waived: None,
            });
        }
        let covered = coverage(w.line);
        for d in diags.iter_mut() {
            if d.rule == w.rule && d.waived.is_none() && covered.contains(&d.line) {
                d.waived = Some(w.reason.clone());
                w.used = true;
            }
        }
    }
    for w in waivers.iter().filter(|w| !w.used) {
        hygiene.push(Diagnostic {
            rule: "waiver",
            path: path.to_string(),
            line: w.line,
            col: w.col,
            message: format!("unused waiver for rule `{}`", w.rule),
            waived: None,
        });
    }
    diags.append(&mut hygiene);
}

/// Structural facts derived from the token stream.
struct Structure {
    /// Token is inside a `#[cfg(test)]`/`#[test]` item.
    in_test: Vec<bool>,
    /// Token is part of an attribute (`#[...]`/`#![...]`).
    in_attr: Vec<bool>,
    /// `(token index, lint level)` for every attribute naming
    /// `unsafe_code`; level is `forbid`, `deny` or `allow`.
    unsafe_attrs: Vec<(usize, String)>,
    /// Line carries at least one non-comment, non-attribute token.
    has_plain_code: Vec<bool>,
    /// Line carries at least one non-comment token (attributes count).
    has_any_code: Vec<bool>,
    /// Concatenated comment text per line (block comments contribute
    /// to every line they span).
    comment_text: Vec<String>,
}

impl Structure {
    /// Lines covered by a waiver at `line`: the line itself plus the
    /// next line carrying any non-comment token (intervening comments
    /// and blank lines are skipped).
    fn waiver_coverage(&self, line: u32) -> Vec<u32> {
        let mut covered = vec![line];
        let mut l = li(line) + 1;
        while l < self.has_any_code.len() {
            if self.has_any_code[l] {
                covered.push(u32::try_from(l).expect("line fits u32"));
                break;
            }
            l += 1;
        }
        covered
    }

    /// Whether an `unsafe` token has a `SAFETY:`/`# Safety` marker on
    /// its own line or on the contiguous comment/attribute/blank run
    /// above it (the first code line above is checked for a trailing
    /// comment, then the walk stops).
    fn safety_commented(&self, t: &Token) -> bool {
        let marker = |l: usize| {
            self.comment_text
                .get(l)
                .is_some_and(|c| c.contains("SAFETY:") || c.contains("# Safety"))
        };
        let mut l = li(t.line);
        if marker(l) {
            return true;
        }
        while l > 1 {
            l -= 1;
            if marker(l) {
                return true;
            }
            if self.has_plain_code[l] {
                return false;
            }
        }
        false
    }
}

/// Converts a 1-based line number to an index (lines always fit).
fn li(line: u32) -> usize {
    usize::try_from(line).expect("line fits usize")
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == c as u8
}

/// Single pass over the code tokens: attribute spans, `cfg(test)`
/// item regions, and `unsafe_code` lint-level attributes.
fn analyze(tokens: &[Token], code: &[usize], max_line: u32) -> Structure {
    let lines = li(max_line) + 2;
    let mut s = Structure {
        in_test: vec![false; tokens.len()],
        in_attr: vec![false; tokens.len()],
        unsafe_attrs: Vec::new(),
        has_plain_code: vec![false; lines],
        has_any_code: vec![false; lines],
        comment_text: vec![String::new(); lines],
    };

    let mut i = 0;
    while i < code.len() {
        if !is_punct(&tokens[code[i]], '#') {
            i += 1;
            continue;
        }
        let inner = code.get(i + 1).is_some_and(|&j| is_punct(&tokens[j], '!'));
        let lb = if inner { i + 2 } else { i + 1 };
        if !code.get(lb).is_some_and(|&j| is_punct(&tokens[j], '[')) {
            i += 1;
            continue;
        }
        let end = match_bracket(tokens, code, lb);
        mark_attr(&mut s, tokens, code, i, end);
        if inner {
            i = end + 1;
            continue;
        }
        // Outer attribute: absorb any stacked attributes that follow,
        // then decide whether the attributed item is test-only.
        let mut any_test = attr_is_test(tokens, code, lb + 1, end);
        let mut j = end + 1;
        while code.get(j).is_some_and(|&k| is_punct(&tokens[k], '#'))
            && code.get(j + 1).is_some_and(|&k| is_punct(&tokens[k], '['))
        {
            let end2 = match_bracket(tokens, code, j + 1);
            mark_attr(&mut s, tokens, code, j, end2);
            any_test |= attr_is_test(tokens, code, j + 2, end2);
            j = end2 + 1;
        }
        if any_test && j < code.len() {
            let item_end = item_end(tokens, code, j);
            for &c in &code[j..=item_end] {
                s.in_test[c] = true;
            }
            i = item_end + 1;
        } else {
            i = j;
        }
    }

    for (idx, t) in tokens.iter().enumerate() {
        let lo = li(t.line);
        let hi = li(t.end_line);
        if t.is_comment() {
            for l in lo..=hi {
                s.comment_text[l].push_str(&t.text);
                s.comment_text[l].push('\n');
            }
        } else {
            for l in lo..=hi {
                s.has_any_code[l] = true;
                if !s.in_attr[idx] {
                    s.has_plain_code[l] = true;
                }
            }
        }
    }
    s
}

/// Marks the attribute token span and records `unsafe_code` levels.
fn mark_attr(s: &mut Structure, tokens: &[Token], code: &[usize], start: usize, end: usize) {
    for &c in &code[start..=end.min(code.len() - 1)] {
        s.in_attr[c] = true;
    }
    let idents: Vec<&str> = code[start..=end.min(code.len() - 1)]
        .iter()
        .filter(|&&c| tokens[c].kind == TokenKind::Ident)
        .map(|&c| tokens[c].text.as_str())
        .collect();
    if idents.contains(&"unsafe_code") {
        for level in ["forbid", "deny", "allow"] {
            if idents.contains(&level) {
                s.unsafe_attrs.push((code[start], level.to_string()));
            }
        }
    }
}

/// Whether the attribute body `code[from..to]` marks test-only code:
/// a bare `#[test]`, or `cfg(...)` mentioning `test` without `not`.
fn attr_is_test(tokens: &[Token], code: &[usize], from: usize, to: usize) -> bool {
    let idents: Vec<&str> = code[from..to.min(code.len())]
        .iter()
        .filter(|&&c| tokens[c].kind == TokenKind::Ident)
        .map(|&c| tokens[c].text.as_str())
        .collect();
    idents == ["test"]
        || (idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not"))
}

/// Code index of the `]` matching the `[` at code index `lb`.
fn match_bracket(tokens: &[Token], code: &[usize], lb: usize) -> usize {
    let mut depth = 0usize;
    let mut j = lb;
    while j < code.len() {
        if is_punct(&tokens[code[j]], '[') {
            depth += 1;
        } else if is_punct(&tokens[code[j]], ']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len() - 1
}

/// Code index of the last token of the item starting at `start`: the
/// `;` or the `}` that closes the item at nesting depth zero.
fn item_end(tokens: &[Token], code: &[usize], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'{' | b'(' | b'[') => depth += 1,
                Some(b'}' | b')' | b']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && t.text.as_bytes()[0] == b'}' {
                        return j;
                    }
                }
                Some(b';') if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules() -> FileScope {
        FileScope {
            determinism: true,
            cast_audit: true,
            safety: true,
            fault_seed: true,
            crate_root: false,
        }
    }

    fn unwaived(diags: &[Diagnostic]) -> Vec<(&'static str, u32, u32)> {
        diags
            .iter()
            .filter(|d| d.waived.is_none())
            .map(|d| (d.rule, d.line, d.col))
            .collect()
    }

    #[test]
    fn determinism_fixture_positions() {
        let src = "fn main() {\n    let t = Instant::now();\n    let m: HashMap<u8, u8> = x;\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(
            unwaived(&diags),
            [("determinism", 2, 13), ("determinism", 3, 12)]
        );
    }

    #[test]
    fn determinism_ignores_strings_chars_and_comments() {
        let src = "fn main() {\n    // Instant in a comment\n    let s = \"SystemTime\";\n    let c = 'H'; let m = ashMap; // not HashMap\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), []);
    }

    #[test]
    fn cast_audit_fixture_positions() {
        let src = "fn f(x: u32) -> u64 {\n    let a = x as u64;\n    let b = x as u16;\n    a + b as u64\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        // `as u16` is not a lossy-accounting target; the two `as u64`
        // casts are flagged at the `as` keyword.
        assert_eq!(
            unwaived(&diags),
            [("cast-audit", 2, 15), ("cast-audit", 4, 11)]
        );
    }

    #[test]
    fn safety_comment_fixture() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        let diags = lint_rust_source("fix.rs", bad, all_rules());
        assert_eq!(unwaived(&diags), [("safety-comment", 2, 5)]);

        let good = "fn f() {\n    // SAFETY: g is sound here.\n    unsafe { g() }\n}\n";
        assert_eq!(unwaived(&lint_rust_source("fix.rs", good, all_rules())), []);

        // A `# Safety` doc section above an unsafe fn also counts,
        // even with attributes in between.
        let doc = "/// Does things.\n///\n/// # Safety\n///\n/// Caller checks x.\n#[inline]\nunsafe fn g() {}\n";
        assert_eq!(unwaived(&lint_rust_source("fix.rs", doc, all_rules())), []);
    }

    #[test]
    fn unsafe_containment_fixture() {
        let root = FileScope {
            crate_root: true,
            ..all_rules()
        };
        let missing = "pub fn f() {}\n";
        assert_eq!(
            unwaived(&lint_rust_source("lib.rs", missing, root)),
            [("unsafe-containment", 1, 1)]
        );
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(
            unwaived(&lint_rust_source("lib.rs", deny, root)),
            [("unsafe-containment", 1, 1)]
        );
        let forbid = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(unwaived(&lint_rust_source("lib.rs", forbid, root)), []);
        // The escape hatch is flagged wherever it appears.
        let hatch = "mod m {\n    #[allow(unsafe_code)]\n    mod k {}\n}\n";
        assert_eq!(
            unwaived(&lint_rust_source("fix.rs", hatch, all_rules())),
            [("unsafe-containment", 2, 5)]
        );
    }

    #[test]
    fn fault_seed_fixture() {
        let src = "fn f() {\n    let p = FaultPlan::default();\n    let q = FaultPlan::seeded(7);\n    let r = FaultPlan::none();\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        // Only the seed-hiding constructor is flagged; the explicit
        // seeded()/none() constructors pass.
        assert_eq!(unwaived(&diags), [("fault-seed", 2, 13)]);
        // Exempt in tests, like every other rule.
        let test_src = "#[test]\nfn t() {\n    let p = FaultPlan::default();\n}\n";
        assert_eq!(
            unwaived(&lint_rust_source("fix.rs", test_src, all_rules())),
            []
        );
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: usize) -> u64 {\n        let t = Instant::now();\n        x as u64\n    }\n}\n#[test]\nfn t() {\n    let h: HashSet<u8> = x;\n}\n";
        assert_eq!(unwaived(&lint_rust_source("fix.rs", src, all_rules())), []);
        // `cfg(not(test))` code is NOT exempt.
        let src = "#[cfg(not(test))]\nfn f(x: usize) -> u64 {\n    x as u64\n}\n";
        assert_eq!(
            unwaived(&lint_rust_source("fix.rs", src, all_rules())),
            [("cast-audit", 3, 7)]
        );
    }

    #[test]
    fn waiver_covers_next_code_line() {
        let src = "fn f(x: usize) -> u64 {\n    // lint:allow(cast-audit, fixture reason)\n    x as u64\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), []);
        let waived: Vec<_> = diags.iter().filter(|d| d.waived.is_some()).collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].waived.as_deref(), Some("fixture reason"));
    }

    #[test]
    fn waiver_hygiene_is_enforced() {
        // Unknown rule.
        let src = "// lint:allow(bogus-rule, why)\nfn f() {}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), [("waiver", 1, 1)]);
        assert!(diags[0].message.contains("bogus-rule"));
        // Missing reason.
        let src = "fn f(x: usize) -> u64 {\n    // lint:allow(cast-audit)\n    x as u64\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), [("waiver", 2, 5)]);
        // Unused waiver.
        let src = "// lint:allow(determinism, nothing here needs it)\nfn f() {}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), [("waiver", 1, 1)]);
        assert!(diags[0].message.contains("unused"));
    }

    #[test]
    fn waiver_grammar_in_doc_comments_is_inert() {
        // Doc comments describe the grammar without enacting it.
        let src = "/// Use `lint:allow(cast-audit, reason)` to waive.\nfn f(x: usize) -> u64 {\n    x as u64\n}\n";
        let diags = lint_rust_source("fix.rs", src, all_rules());
        assert_eq!(unwaived(&diags), [("cast-audit", 3, 7)]);
    }

    #[test]
    fn scoping_disables_rule_families() {
        let src = "fn f(x: usize) -> u64 {\n    let t = Instant::now();\n    x as u64\n}\n";
        let none = FileScope::default();
        assert_eq!(unwaived(&lint_rust_source("fix.rs", src, none)), []);
        let det_only = FileScope {
            determinism: true,
            ..FileScope::default()
        };
        assert_eq!(
            unwaived(&lint_rust_source("fix.rs", src, det_only)),
            [("determinism", 2, 13)]
        );
    }
}
