//! The `capsacc-lint` binary: walk the workspace, print diagnostics,
//! optionally write the JSON report, and gate CI via `--deny`.
//!
//! Usage: `capsacc-lint [--root DIR] [--json PATH] [--deny]`
//!
//! - `--root DIR`  workspace root to lint (default `.`)
//! - `--json PATH` write the machine-readable report to `PATH`
//! - `--deny`      exit nonzero if any unwaived diagnostic remains

use std::path::PathBuf;
use std::process::ExitCode;

use capsacc_lint::lint_workspace;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json requires a path"),
            },
            "--deny" => deny = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("capsacc-lint: failed to walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in report.unwaived() {
        println!("{}", d.render());
    }
    println!(
        "capsacc-lint: {} files, {} unwaived, {} waived",
        report.files_scanned,
        report.unwaived_count(),
        report.waived_count()
    );

    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("capsacc-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if deny && report.unwaived_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("capsacc-lint: {msg}");
    eprintln!("usage: capsacc-lint [--root DIR] [--json PATH] [--deny]");
    ExitCode::FAILURE
}
