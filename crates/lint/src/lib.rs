//! `capsacc-lint` — a dependency-free workspace lint engine.
//!
//! The CapsAcc reproduction rests on invariants that a compiler
//! cannot check: simulated paths must be byte-identical across reruns
//! (no wall clocks, no unordered maps), lossy integer casts must go
//! through the audited helpers, `unsafe` stays confined to the SIMD
//! kernels behind `// SAFETY:` obligations, and the architecture docs
//! must keep naming code that exists. This crate turns those
//! conventions into a mechanical gate: a hand-rolled Rust lexer
//! ([`lexer`]) feeds a token-stream rule engine ([`rules`]), a
//! Markdown reference auditor ([`docs`]) covers the prose, and the
//! `capsacc-lint` binary walks the workspace ([`walk`]) emitting
//! `file:line:col` diagnostics plus a byte-stable JSON report
//! ([`report`]).
//!
//! Exceptions are inline and greppable: `// lint:allow(rule, reason)`
//! waives findings on the next code line, and waivers without a
//! reason — or without a finding to cover — are themselves findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docs;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{Diagnostic, Report, RULES};
pub use rules::{lint_rust_source, FileScope};
pub use walk::{lint_workspace, scope_for};
