//! The gate the CI enforces, as a test: linting this workspace finds
//! zero unwaived violations, every waiver carries a reason, and the
//! JSON report is byte-identical across runs.

use std::path::PathBuf;

use capsacc_lint::lint_workspace;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_deny() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk");
    let stragglers: Vec<String> = report.unwaived().map(|d| d.render()).collect();
    assert!(
        stragglers.is_empty(),
        "unwaived lint findings:\n{}",
        stragglers.join("\n")
    );
    // The gate is meaningful only if it actually scanned the tree.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

#[test]
fn every_waiver_has_a_reason() {
    let report = lint_workspace(&workspace_root()).expect("workspace walk");
    for d in report.diagnostics.iter().filter(|d| d.waived.is_some()) {
        let reason = d.waived.as_deref().unwrap_or_default();
        assert!(
            reason.len() >= 10,
            "{}: waiver reason too thin: {reason:?}",
            d.render()
        );
    }
}

#[test]
fn report_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run").to_json();
    let b = lint_workspace(&root).expect("second run").to_json();
    assert_eq!(a, b);
}
