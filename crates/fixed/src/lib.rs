//! # capsacc-fixed — fixed-point arithmetic and hardware lookup tables
//!
//! This crate is the numeric substrate of the CapsAcc reproduction. It
//! models, bit-exactly, the arithmetic the paper's datapath performs:
//!
//! - [`Fx8`] — 8-bit two's-complement fixed-point values with a
//!   compile-time fraction width (the paper uses 8-bit data and weights).
//! - [`Acc`] — the 25-bit partial-sum accumulator used by every processing
//!   element and by the per-column accumulator units.
//! - [`requantize`] — the shift/round/saturate step the activation unit
//!   applies when reducing 25-bit accumulator values back to 8 bits.
//! - [`SquashLut`] — the squashing-function lookup table (6-bit data ×
//!   5-bit norm → 8-bit output, Fig. 11e of the paper).
//! - [`ExpLut`] — the 8-bit exponential lookup table inside the softmax
//!   unit (Fig. 11g).
//! - [`SquareLut`] — the 12-bit → 8-bit Power-2 lookup table inside the
//!   norm unit (Fig. 11f).
//! - [`isqrt`] — the integer square root used by the norm unit.
//!
//! The same functions are used by the software reference model
//! (`capsacc-capsnet`) and by the cycle-accurate simulator
//! (`capsacc-core`), which is what makes bit-exact cross-validation of the
//! two possible — the Rust analogue of the paper's ModelSim-vs-PyTorch
//! functional validation flow (Fig. 15).
//!
//! # Example
//!
//! ```
//! use capsacc_fixed::{Fx8, NumericConfig};
//!
//! // Quantize an activation into the default Q2.5 data format.
//! let x: Fx8<5> = Fx8::from_f32(0.75);
//! assert_eq!(x.to_f32(), 0.75);
//!
//! // The numeric configuration shared by reference model and simulator.
//! let cfg = NumericConfig::default();
//! assert_eq!(cfg.data_frac + cfg.weight_frac, cfg.product_frac());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod config;
mod convert;
mod lut;
mod q;

pub use acc::{Acc, Acc25, ACC_BITS};
pub use config::NumericConfig;
pub use convert::{requantize, saturate_to_bits};
pub use lut::exp::ExpLut;
pub use lut::sqrt::{isqrt, norm_code};
pub use lut::square::SquareLut;
pub use lut::squash::{squash_derivative_1d, squash_gain, squash_scalar_1d, SquashLut};
pub use q::{Coupling8, Data8, Fx8, ParseFxError, Weight8};
