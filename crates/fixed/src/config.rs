//! The numeric configuration shared by the reference model and simulator.

/// Fraction widths and derived shift amounts for every fixed-point signal
/// in the CapsAcc datapath.
///
/// The paper fixes the *bit widths* (8-bit data/weights, 25-bit sums,
/// 6-/5-/12-bit LUT inputs) but leaves the binary-point placement to the
/// implementation; the activation unit realizes it with programmable
/// shifts. This struct is the single source of truth for those
/// placements, used identically by the software reference
/// (`capsacc-capsnet`) and the cycle-accurate simulator (`capsacc-core`),
/// which is what makes their outputs bit-exact against each other.
///
/// # Example
///
/// ```
/// use capsacc_fixed::NumericConfig;
/// let cfg = NumericConfig::default();
/// // MAC products of Q2.5 data and Q1.6 weights carry 11 fraction bits;
/// // requantizing back to Q2.5 data shifts right by 6.
/// assert_eq!(cfg.product_frac(), 11);
/// assert_eq!(cfg.mac_shift(), 6);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NumericConfig {
    /// Fraction bits of 8-bit activations/data (`Data8`, default Q2.5).
    pub data_frac: u32,
    /// Fraction bits of 8-bit weights (`Weight8`, default Q1.6).
    pub weight_frac: u32,
    /// Fraction bits of 8-bit coupling coefficients `c_ij` (default Q0.7).
    pub coupling_frac: u32,
    /// Fraction bits of 8-bit routing logits `b_ij` (default Q3.4).
    pub logit_frac: u32,
    /// Fraction bits of the 8-bit norm-unit output (default Q4.4).
    pub norm_frac: u32,
    /// Fraction bits of the 5-bit norm index into the squash LUT
    /// (default Q3.2).
    pub norm5_frac: u32,
    /// Fraction bits of the 6-bit data index into the squash LUT
    /// (default Q3.3, i.e. the top 6 bits of a Q2.5 value).
    pub data6_frac: u32,
    /// Fraction bits of the 8-bit square-LUT output (default Q4.4).
    pub square_frac: u32,
    /// Fraction bits of the 16-bit exponential-LUT output (default Q4.12).
    pub exp_frac: u32,
}

impl Default for NumericConfig {
    fn default() -> Self {
        Self {
            data_frac: 5,
            weight_frac: 6,
            coupling_frac: 7,
            logit_frac: 4,
            norm_frac: 4,
            norm5_frac: 2,
            data6_frac: 3,
            square_frac: 4,
            exp_frac: 12,
        }
    }
}

impl NumericConfig {
    /// Creates the default configuration (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction width of a data × weight product (the PE multiplier
    /// output feeding the 25-bit accumulator).
    #[inline]
    pub fn product_frac(&self) -> u32 {
        self.data_frac + self.weight_frac
    }

    /// Fraction width of a data × coupling-coefficient product (the
    /// routing weighted-sum path, Fig. 12b/d).
    #[inline]
    pub fn coupling_product_frac(&self) -> u32 {
        self.data_frac + self.coupling_frac
    }

    /// Fraction width of a data × data product (the logit-update path
    /// `b_ij += û·v`, Fig. 12c).
    #[inline]
    pub fn update_product_frac(&self) -> u32 {
        self.data_frac + self.data_frac
    }

    /// Right-shift applied when requantizing a weight-MAC accumulator back
    /// to the data format (conv and FC layers).
    #[inline]
    pub fn mac_shift(&self) -> u32 {
        self.product_frac() - self.data_frac
    }

    /// Right-shift applied when requantizing a coupling-MAC accumulator to
    /// the data format (the routing sums `s_j`).
    #[inline]
    pub fn coupling_mac_shift(&self) -> u32 {
        self.coupling_product_frac() - self.data_frac
    }

    /// Right-shift applied when requantizing an update-MAC accumulator to
    /// the logit format (the routing updates `b_ij`).
    #[inline]
    pub fn update_shift(&self) -> u32 {
        self.update_product_frac() - self.logit_frac
    }

    /// Right-shift from an 8-bit data code to its 6-bit squash-LUT index.
    #[inline]
    pub fn data6_shift(&self) -> u32 {
        self.data_frac - self.data6_frac
    }

    /// Right-shift from the 8-bit norm output to its 5-bit squash-LUT
    /// index.
    #[inline]
    pub fn norm5_shift(&self) -> u32 {
        self.norm_frac - self.norm5_frac
    }

    /// Validates internal consistency (every derived shift non-negative,
    /// all 8-bit formats within 0..=7 fraction bits).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("data_frac", self.data_frac),
            ("weight_frac", self.weight_frac),
            ("coupling_frac", self.coupling_frac),
            ("logit_frac", self.logit_frac),
            ("norm_frac", self.norm_frac),
        ];
        for (name, v) in fields {
            if v > 7 {
                return Err(format!(
                    "{name} = {v} exceeds 7 fraction bits for an 8-bit field"
                ));
            }
        }
        if self.data6_frac > self.data_frac {
            return Err("data6_frac must not exceed data_frac".to_owned());
        }
        if self.norm5_frac > self.norm_frac {
            return Err("norm5_frac must not exceed norm_frac".to_owned());
        }
        if self.update_product_frac() < self.logit_frac {
            return Err("update product narrower than logit format".to_owned());
        }
        if self.exp_frac > 15 {
            return Err("exp_frac must fit a 16-bit unsigned output".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NumericConfig::default().validate().unwrap();
    }

    #[test]
    fn derived_shifts() {
        let cfg = NumericConfig::default();
        assert_eq!(cfg.product_frac(), 11);
        assert_eq!(cfg.coupling_product_frac(), 12);
        assert_eq!(cfg.update_product_frac(), 10);
        assert_eq!(cfg.mac_shift(), 6);
        assert_eq!(cfg.coupling_mac_shift(), 7);
        assert_eq!(cfg.update_shift(), 6);
        assert_eq!(cfg.data6_shift(), 2);
        assert_eq!(cfg.norm5_shift(), 2);
    }

    #[test]
    fn validation_catches_wide_fields() {
        let cfg = NumericConfig {
            data_frac: 9,
            ..NumericConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_inconsistent_lut_indices() {
        let cfg = NumericConfig {
            data6_frac: 6,
            ..NumericConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = NumericConfig {
            norm5_frac: 5,
            ..NumericConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn new_equals_default() {
        assert_eq!(NumericConfig::new(), NumericConfig::default());
    }
}
