//! Hardware lookup tables of the CapsAcc activation unit (Fig. 11d–g).

pub mod exp;
pub mod sqrt;
pub mod square;
pub mod squash;
