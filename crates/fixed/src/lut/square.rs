//! The 12-bit → 8-bit Power-2 lookup table of the norm unit (Fig. 11f).

use crate::config::NumericConfig;
use crate::convert::saturate_to_bits;

/// The square (Power-2) LUT: signed 12-bit input → unsigned 8-bit output.
///
/// Sec. IV-C: "We designed the square operator as a Look Up Table with
/// 12-bit input and 8-bit output." The norm unit feeds each element of
/// the capsule vector through this LUT and accumulates the squares in a
/// register before the square root.
///
/// Input codes are interpreted in the data format (default Q2.5,
/// sign-extended into the 12-bit field); output codes are unsigned with
/// `square_frac` fraction bits (default Q4.4, saturating at 15.9375).
///
/// # Example
///
/// ```
/// use capsacc_fixed::{NumericConfig, SquareLut};
/// let lut = SquareLut::new(NumericConfig::default());
/// // 1.0² = 1.0: Q2.5 code 32 → Q4.4 code 16.
/// assert_eq!(lut.lookup(32), 16);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SquareLut {
    cfg: NumericConfig,
    table: Vec<u8>,
}

impl std::fmt::Debug for SquareLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SquareLut")
            .field("entries", &self.table.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl SquareLut {
    /// Number of entries: 2^12.
    pub const ENTRIES: usize = 1 << 12;

    /// Builds the 4096-entry table for a numeric configuration.
    pub fn new(cfg: NumericConfig) -> Self {
        let mut table = vec![0u8; Self::ENTRIES];
        for raw in -2048i64..2048 {
            let x = raw as f32 / (1u32 << cfg.data_frac) as f32;
            let y = x * x * (1u32 << cfg.square_frac) as f32;
            table[Self::index(raw as i16)] = y.round().min(u8::MAX as f32) as u8;
        }
        Self { cfg, table }
    }

    #[inline]
    fn index(raw12: i16) -> usize {
        debug_assert!((-2048..2048).contains(&raw12));
        usize::from((raw12 as u16) & 0x0fff)
    }

    /// Looks up the square of a 12-bit input code.
    ///
    /// Values outside the signed 12-bit range saturate into it first (the
    /// hardware field simply cannot carry more).
    #[inline]
    pub fn lookup(&self, raw: i16) -> u8 {
        self.table[Self::index(saturate_to_bits(i64::from(raw), 12) as i16)]
    }

    /// The numeric configuration the table was built for.
    #[inline]
    pub fn config(&self) -> NumericConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lut() -> SquareLut {
        SquareLut::new(NumericConfig::default())
    }

    #[test]
    fn table_has_paper_size() {
        assert_eq!(SquareLut::ENTRIES, 4096);
        assert_eq!(lut().table.len(), 4096);
    }

    #[test]
    fn zero_squares_to_zero() {
        assert_eq!(lut().lookup(0), 0);
    }

    #[test]
    fn even_symmetry() {
        let l = lut();
        for raw in 1i16..2048 {
            assert_eq!(l.lookup(raw), l.lookup(-raw), "asymmetry at {raw}");
        }
    }

    #[test]
    fn known_values() {
        let l = lut();
        // 0.5² = 0.25 → Q4.4 code 4.
        assert_eq!(l.lookup(16), 4);
        // 2.0² = 4.0 → Q4.4 code 64.
        assert_eq!(l.lookup(64), 64);
        // 4.0² = 16.0 overflows Q4.4 → saturates at 255.
        assert_eq!(l.lookup(128), 255);
    }

    #[test]
    fn out_of_field_inputs_saturate() {
        let l = lut();
        assert_eq!(l.lookup(5000), l.lookup(2047));
        assert_eq!(l.lookup(-5000), l.lookup(-2048));
    }

    #[test]
    fn capsule_element_range_is_exactly_representable() {
        // Post-squash capsule elements are ≤ 0.5 (|code| ≤ 16 in Q2.5);
        // their squares ≤ 0.25 never saturate.
        let l = lut();
        for raw in -16i16..=16 {
            let exact = (raw as f32 / 32.0).powi(2) * 16.0;
            assert_eq!(l.lookup(raw) as f32, exact.round());
        }
    }

    proptest! {
        #[test]
        fn monotone_in_magnitude(a in 0i16..2047) {
            let l = lut();
            prop_assert!(l.lookup(a) <= l.lookup(a + 1));
        }

        #[test]
        fn error_within_half_lsb_unsaturated(raw in -710i16..710) {
            // Inputs up to |x| < 3.99 keep x² < 15.94 (unsaturated).
            let l = lut();
            let x = raw as f32 / 32.0;
            let exact = x * x * 16.0;
            if exact < 254.5 {
                prop_assert!((l.lookup(raw) as f32 - exact).abs() <= 0.5);
            }
        }
    }
}
