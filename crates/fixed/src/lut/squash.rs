//! The squashing-function lookup table (Fig. 11e).

use crate::config::NumericConfig;
use crate::convert::saturate_to_bits;

/// Exact (floating-point) squashing gain `g(n) = n / (1 + n²)`.
///
/// The squash of a vector `s` is `v = s · g(‖s‖)` — Equation (1) of the
/// paper factored into a per-element multiply by a scalar gain, which is
/// exactly how the hardware LUT realizes it (element value × norm in,
/// squashed element out).
///
/// ```
/// use capsacc_fixed::squash_gain;
/// assert!((squash_gain(1.0) - 0.5).abs() < 1e-6);
/// assert_eq!(squash_gain(0.0), 0.0);
/// ```
#[inline]
pub fn squash_gain(norm: f32) -> f32 {
    norm / (1.0 + norm * norm)
}

/// The single-dimensional squash `y(x) = x² / (1 + x²) · sign(x)` plotted
/// in Fig. 3 of the paper.
///
/// ```
/// use capsacc_fixed::squash_scalar_1d;
/// assert!((squash_scalar_1d(1.0) - 0.5).abs() < 1e-6);
/// assert!(squash_scalar_1d(6.0) > 0.97);
/// ```
#[inline]
pub fn squash_scalar_1d(x: f32) -> f32 {
    x.abs() * x / (1.0 + x * x)
}

/// First derivative of [`squash_scalar_1d`] for `x ≥ 0`:
/// `y'(x) = 2x / (1 + x²)²`, whose maximum the paper reports at
/// `(0.5767, 0.6495)` (analytically `x = 1/√3 ≈ 0.5774`).
///
/// ```
/// use capsacc_fixed::squash_derivative_1d;
/// let peak = squash_derivative_1d(1.0 / 3f32.sqrt());
/// assert!((peak - 0.6495).abs() < 1e-3);
/// ```
#[inline]
pub fn squash_derivative_1d(x: f32) -> f32 {
    let d = 1.0 + x * x;
    2.0 * x / (d * d)
}

/// The squashing LUT: 6-bit data × 5-bit norm → 8-bit output.
///
/// Per Sec. IV-C of the paper: "The LUT takes as input a 6-bit fixed-point
/// data and a 5-bit fixed-point norm to produce an 8-bit output", i.e.
/// 2048 entries. The table stores `round(d · g(n))` in the 8-bit data
/// format, where `d` is the real value of the 6-bit element code and `n`
/// the real value of the 5-bit norm code.
///
/// # Example
///
/// ```
/// use capsacc_fixed::{NumericConfig, SquashLut};
/// let lut = SquashLut::new(NumericConfig::default());
/// // Squashing a zero vector yields zero.
/// assert_eq!(lut.lookup_raw(0, 0), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SquashLut {
    cfg: NumericConfig,
    /// Indexed by `(data6 & 0x3f) << 5 | norm5`.
    table: Vec<i8>,
}

impl std::fmt::Debug for SquashLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SquashLut")
            .field("entries", &self.table.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl SquashLut {
    /// Number of entries: 2^(6+5).
    pub const ENTRIES: usize = 1 << 11;

    /// Builds the table for a numeric configuration.
    pub fn new(cfg: NumericConfig) -> Self {
        let mut table = vec![0i8; Self::ENTRIES];
        for data6 in -32i64..32 {
            for norm5 in 0i64..32 {
                let d = data6 as f32 / (1u32 << cfg.data6_frac) as f32;
                let n = norm5 as f32 / (1u32 << cfg.norm5_frac) as f32;
                let out = d * squash_gain(n);
                let code = (out * (1u32 << cfg.data_frac) as f32).round();
                let code = code.clamp(i8::MIN as f32, i8::MAX as f32) as i8;
                table[Self::index(data6 as i8, norm5 as u8)] = code;
            }
        }
        Self { cfg, table }
    }

    #[inline]
    fn index(data6: i8, norm5: u8) -> usize {
        debug_assert!((-32..32).contains(&data6));
        debug_assert!(norm5 < 32);
        usize::from((data6 as u8) & 0x3f) << 5 | usize::from(norm5)
    }

    /// Raw LUT access with pre-truncated 6-bit data and 5-bit norm codes.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the codes exceed their bit widths.
    #[inline]
    pub fn lookup_raw(&self, data6: i8, norm5: u8) -> i8 {
        self.table[Self::index(data6, norm5)]
    }

    /// Full hardware path: truncates an 8-bit data code and an 8-bit norm
    /// code to their 6-/5-bit LUT indices (arithmetic shift, saturating)
    /// and looks up the squashed 8-bit output.
    ///
    /// ```
    /// use capsacc_fixed::{NumericConfig, SquashLut};
    /// let cfg = NumericConfig::default();
    /// let lut = SquashLut::new(cfg);
    /// // A unit-norm vector element 1.0 (Q2.5 code 32), norm 1.0
    /// // (Q4.4 code 16) squashes to ≈ 0.5.
    /// let out = lut.squash_element(32, 16);
    /// assert!((out as f32 / 32.0 - 0.5).abs() < 0.07);
    /// ```
    #[inline]
    pub fn squash_element(&self, data_raw: i8, norm_raw: u8) -> i8 {
        let data6 = saturate_to_bits(i64::from(data_raw >> self.cfg.data6_shift()), 6) as i8;
        let norm5 = ((norm_raw as u32) >> self.cfg.norm5_shift()).min(31) as u8;
        self.lookup_raw(data6, norm5)
    }

    /// The numeric configuration the table was built for.
    #[inline]
    pub fn config(&self) -> NumericConfig {
        self.cfg
    }

    /// Maximum absolute error (in real-value terms) of the LUT against the
    /// exact squash over its whole input domain. Reported alongside
    /// Fig. 3 in the experiment harness.
    pub fn max_abs_error(&self) -> f32 {
        let mut worst = 0f32;
        for data6 in -32i8..32 {
            for norm5 in 0u8..32 {
                let d = data6 as f32 / (1u32 << self.cfg.data6_frac) as f32;
                let n = norm5 as f32 / (1u32 << self.cfg.norm5_frac) as f32;
                let exact = d * squash_gain(n);
                let got =
                    self.lookup_raw(data6, norm5) as f32 / (1u32 << self.cfg.data_frac) as f32;
                worst = worst.max((exact - got).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lut() -> SquashLut {
        SquashLut::new(NumericConfig::default())
    }

    #[test]
    fn gain_peaks_at_one() {
        // g(n) = n/(1+n²) has maximum 0.5 at n = 1.
        assert!((squash_gain(1.0) - 0.5).abs() < 1e-6);
        assert!(squash_gain(0.5) < 0.5);
        assert!(squash_gain(2.0) < 0.5);
    }

    #[test]
    fn derivative_peak_matches_paper() {
        // Paper Fig. 3: peak at (0.5767, 0.6495).
        let x = 1.0 / 3f32.sqrt();
        assert!((x - 0.5774).abs() < 1e-3);
        assert!((squash_derivative_1d(x) - 0.6495).abs() < 1e-3);
        // It is a maximum: neighbors are below.
        assert!(squash_derivative_1d(x - 0.05) < squash_derivative_1d(x));
        assert!(squash_derivative_1d(x + 0.05) < squash_derivative_1d(x));
    }

    #[test]
    fn scalar_squash_is_bounded_and_monotone() {
        let mut prev = -1.0;
        for i in 0..=600 {
            let x = i as f32 / 100.0;
            let y = squash_scalar_1d(x);
            assert!((0.0..1.0).contains(&y), "y({x}) = {y} out of [0,1)");
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn table_has_paper_size() {
        assert_eq!(SquashLut::ENTRIES, 2048);
        assert_eq!(lut().table.len(), 2048);
    }

    #[test]
    fn zero_norm_squashes_to_zero() {
        let l = lut();
        for data6 in -32i8..32 {
            assert_eq!(l.lookup_raw(data6, 0), 0);
        }
    }

    #[test]
    fn zero_data_squashes_to_zero() {
        let l = lut();
        for norm5 in 0u8..32 {
            assert_eq!(l.lookup_raw(0, norm5), 0);
        }
    }

    #[test]
    fn odd_symmetry_in_data() {
        let l = lut();
        for data6 in 1i8..32 {
            for norm5 in 0u8..32 {
                let pos = l.lookup_raw(data6, norm5) as i32;
                let neg = l.lookup_raw(-data6, norm5) as i32;
                // Rounding of ±x can differ by at most one LSB.
                assert!((pos + neg).abs() <= 1, "asymmetry at d={data6} n={norm5}");
            }
        }
    }

    #[test]
    fn lut_error_is_small() {
        // One output LSB is 1/32; table rounding error stays within it.
        assert!(lut().max_abs_error() <= 1.0 / 32.0);
    }

    #[test]
    fn squash_element_truncation() {
        let l = lut();
        // data code 33 (Q2.5 ≈ 1.03) truncates to data6 = 8 (Q3.3 = 1.0).
        let via_full = l.squash_element(33, 16);
        let via_raw = l.lookup_raw(8, 4);
        assert_eq!(via_full, via_raw);
    }

    #[test]
    fn squash_element_saturates_norm_index() {
        let l = lut();
        // Norm code 255 (Q4.4 = 15.94) exceeds the 5-bit index range and
        // must clamp to 31 rather than wrap.
        let out = l.squash_element(32, 255);
        assert_eq!(out, l.lookup_raw(8, 31));
    }

    proptest! {
        #[test]
        fn output_magnitude_never_exceeds_input(data_raw in any::<i8>(), norm_raw in any::<u8>()) {
            // |v| = |s|·g(n) ≤ |s|·0.5 since g(n) ≤ 1/2. The data6
            // truncation is an arithmetic shift (rounds toward −∞), which
            // can inflate a negative input's magnitude by up to
            // 2^shift − 1 = 3 raw LSBs; the LUT rounding adds half an LSB.
            let l = lut();
            let out = l.squash_element(data_raw, norm_raw) as i32;
            prop_assert!(out.abs() <= ((data_raw as i32).abs() + 3) / 2 + 1);
        }

        #[test]
        fn gain_bounded_by_half(n in 0.0f32..100.0) {
            prop_assert!(squash_gain(n) <= 0.5 + f32::EPSILON);
            prop_assert!(squash_gain(n) >= 0.0);
        }
    }
}
