//! The 8-bit exponential lookup table of the softmax unit (Fig. 11g).

use crate::config::NumericConfig;

/// The exponential LUT: 8-bit input code → 16-bit output code.
///
/// Sec. IV-C: "First, it computes the exponential function (8-bit Look Up
/// Table) and accumulates the sum in a register, followed by division."
/// The softmax unit subtracts the running maximum before the lookup (the
/// standard hardware trick that keeps every exponent non-positive), so
/// only the `x ≤ 0` half of the table is exercised in normal operation;
/// positive inputs saturate.
///
/// Input codes are interpreted in the logit format (default Q3.4); output
/// codes are unsigned with `exp_frac` fraction bits (default Q4.12, so
/// `exp(0) = 4096`).
///
/// # Example
///
/// ```
/// use capsacc_fixed::{ExpLut, NumericConfig};
/// let lut = ExpLut::new(NumericConfig::default());
/// assert_eq!(lut.lookup(0), 4096); // e^0 = 1.0 in Q4.12
/// assert!(lut.lookup(-16) < 4096); // e^-1 < 1
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ExpLut {
    cfg: NumericConfig,
    table: [u16; 256],
}

impl std::fmt::Debug for ExpLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExpLut")
            .field("entries", &self.table.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ExpLut {
    /// Builds the 256-entry table for a numeric configuration.
    pub fn new(cfg: NumericConfig) -> Self {
        let mut table = [0u16; 256];
        for raw in i8::MIN..=i8::MAX {
            let x = raw as f32 / (1u32 << cfg.logit_frac) as f32;
            let y = x.exp() * (1u32 << cfg.exp_frac) as f32;
            table[usize::from(raw as u8)] = y.round().min(u16::MAX as f32) as u16;
        }
        Self { cfg, table }
    }

    /// Looks up `exp(x)` for an 8-bit logit code.
    #[inline]
    pub fn lookup(&self, raw: i8) -> u16 {
        self.table[usize::from(raw as u8)]
    }

    /// Computes a fixed-point softmax over a slice of logit codes,
    /// returning coupling-coefficient codes (unsigned, `coupling_frac`
    /// fraction bits, saturated to the `i8` range so they can ride the
    /// 8-bit datapath).
    ///
    /// This is the complete softmax-unit behaviour: max-subtraction, LUT
    /// exponentials, sum register, divider. The cycle cost (2n for an
    /// n-vector) is modelled by the simulator, not here.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use capsacc_fixed::{ExpLut, NumericConfig};
    /// let lut = ExpLut::new(NumericConfig::default());
    /// let c = lut.softmax(&[0, 0, 0, 0]);
    /// // Uniform logits → uniform coefficients of 1/4 = 32 in Q0.7.
    /// assert_eq!(c, vec![32, 32, 32, 32]);
    /// ```
    pub fn softmax(&self, logits: &[i8]) -> Vec<i8> {
        assert!(!logits.is_empty(), "softmax over an empty vector");
        let max = *logits.iter().max().expect("non-empty");
        let exps: Vec<u32> = logits
            .iter()
            .map(|&b| u32::from(self.lookup(b.saturating_sub(max))))
            .collect();
        let sum: u64 = exps.iter().map(|&e| u64::from(e)).sum();
        exps.iter()
            .map(|&e| {
                // Divider: round-to-nearest c = e / sum in Q0.<coupling_frac>.
                let num = u64::from(e) << self.cfg.coupling_frac;
                let c = (num + sum / 2) / sum;
                c.min(u64::from(i8::MAX as u8)) as i8
            })
            .collect()
    }

    /// The numeric configuration the table was built for.
    #[inline]
    pub fn config(&self) -> NumericConfig {
        self.cfg
    }

    /// Maximum relative error of the LUT on the non-positive half of its
    /// domain (the half exercised after max-subtraction).
    pub fn max_relative_error(&self) -> f32 {
        let mut worst = 0f32;
        for raw in i8::MIN..=0 {
            let x = raw as f32 / (1u32 << self.cfg.logit_frac) as f32;
            let exact = x.exp();
            let got = self.lookup(raw) as f32 / (1u32 << self.cfg.exp_frac) as f32;
            if exact > 1e-3 {
                worst = worst.max((exact - got).abs() / exact);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lut() -> ExpLut {
        ExpLut::new(NumericConfig::default())
    }

    #[test]
    fn exp_zero_is_one() {
        assert_eq!(lut().lookup(0), 1 << 12);
    }

    #[test]
    fn monotone_nondecreasing() {
        let l = lut();
        for raw in i8::MIN..i8::MAX {
            assert!(l.lookup(raw) <= l.lookup(raw + 1), "not monotone at {raw}");
        }
    }

    #[test]
    fn positive_tail_saturates() {
        // exp(7.94) ≈ 2810 → Q4.12 would need 23 bits; saturates at u16::MAX.
        assert_eq!(lut().lookup(i8::MAX), u16::MAX);
    }

    #[test]
    fn negative_tail_underflows_to_zero() {
        // exp(-8) ≈ 3.4e-4 → Q4.12 code round(1.37) = 1.
        assert!(lut().lookup(i8::MIN) <= 1);
    }

    #[test]
    fn relative_error_small_on_used_half() {
        assert!(lut().max_relative_error() < 0.15); // dominated by the tiny tail codes
    }

    #[test]
    fn softmax_uniform() {
        let c = lut().softmax(&[5, 5, 5, 5, 5]);
        // 1/5 = 0.2 → Q0.7 ≈ 26 (25.6 rounds to 26).
        for v in c {
            assert!((25..=26).contains(&v), "got {v}");
        }
    }

    #[test]
    fn softmax_ten_way_uniform_matches_routing_init() {
        // The optimized routing initializes c_ij = 1/10 directly; the
        // softmax of all-zero logits must give the same codes.
        let c = lut().softmax(&[0; 10]);
        for v in &c {
            assert!((12..=13).contains(v), "got {v}"); // 12.8 rounds to 13
        }
    }

    #[test]
    fn softmax_picks_the_peak() {
        let c = lut().softmax(&[0, 0, 64, 0]); // logit 4.0 dominates
        let argmax = c
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(argmax, 2);
        assert!(c[2] > 100); // > 0.78 in Q0.7
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn softmax_empty_panics() {
        lut().softmax(&[]);
    }

    #[test]
    fn softmax_invariant_to_logit_shift() {
        // Softmax(b) == softmax(b + k): max-subtraction guarantees it
        // exactly in fixed point (as long as no saturating_sub clamps).
        let l = lut();
        let a = l.softmax(&[-10, 0, 10, 20]);
        let b = l.softmax(&[-30, -20, -10, 0]);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn softmax_sums_to_about_one(logits in proptest::collection::vec(any::<i8>(), 1..16)) {
            let c = lut().softmax(&logits);
            let sum: i32 = c.iter().map(|&v| v as i32).sum();
            // Q0.7 "one" is 128; rounding each of ≤16 terms can drift by
            // half an LSB each.
            prop_assert!((sum - 128).abs() <= 8, "sum = {sum}");
        }

        #[test]
        fn softmax_outputs_nonnegative(logits in proptest::collection::vec(any::<i8>(), 1..16)) {
            for v in lut().softmax(&logits) {
                prop_assert!(v >= 0);
            }
        }

        #[test]
        fn softmax_preserves_order(logits in proptest::collection::vec(any::<i8>(), 2..10)) {
            let c = lut().softmax(&logits);
            for i in 0..logits.len() {
                for j in 0..logits.len() {
                    if logits[i] > logits[j] {
                        prop_assert!(c[i] >= c[j]);
                    }
                }
            }
        }
    }
}
