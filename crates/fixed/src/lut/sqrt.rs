//! Integer square root — the `^1/2` operator of the norm unit (Fig. 11f).

/// Computes `⌊√x⌋` for a non-negative integer using the digit-by-digit
/// (binary restoring) method — the same iterative structure a hardware
/// sqrt block implements, one bit per cycle.
///
/// # Example
///
/// ```
/// use capsacc_fixed::isqrt;
/// assert_eq!(isqrt(0), 0);
/// assert_eq!(isqrt(15), 3);
/// assert_eq!(isqrt(16), 4);
/// assert_eq!(isqrt(1 << 24), 1 << 12);
/// ```
pub fn isqrt(x: u64) -> u64 {
    if x < 2 {
        return x;
    }
    let mut rem = x;
    let mut root = 0u64;
    // Highest power-of-four at or below x.
    let mut bit = 1u64 << ((63 - x.leading_zeros()) & !1);
    while bit != 0 {
        if rem >= root + bit {
            rem -= root + bit;
            root = (root >> 1) + bit;
        } else {
            root >>= 1;
        }
        bit >>= 2;
    }
    root
}

/// Computes the rounded norm code produced by the norm unit.
///
/// The sum register holds `Σ x_i²` with `square_frac` fraction bits; the
/// norm output carries `norm_frac` fraction bits. In real terms
/// `norm = √(sum_raw / 2^square_frac)`, so the output code is
/// `⌊√(sum_raw · 2^(2·norm_frac − square_frac))⌋`, saturated to 8 bits
/// unsigned.
///
/// # Panics
///
/// Panics if `2 · norm_frac < square_frac` (the shift would be negative;
/// no supported configuration does this).
///
/// # Example
///
/// ```
/// use capsacc_fixed::isqrt;
/// use capsacc_fixed::NumericConfig;
/// let cfg = NumericConfig::default();
/// // sum = 1.0 (Q4.4 code 16) → norm 1.0 (Q4.4 code 16).
/// let code = capsacc_fixed::SquareLut::new(cfg); // table unused here
/// let _ = code;
/// assert_eq!(capsacc_fixed::isqrt(16u64 << 4), 16);
/// ```
pub fn norm_code(sum_raw: u64, square_frac: u32, norm_frac: u32) -> u8 {
    assert!(
        2 * norm_frac >= square_frac,
        "norm format too narrow for the square format"
    );
    let shift = 2 * norm_frac - square_frac;
    isqrt(sum_raw << shift).min(u64::from(u8::MAX)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values() {
        let expect = [0, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 4];
        for (x, &e) in expect.iter().enumerate().map(|(i, e)| (i as u64, e)) {
            assert_eq!(isqrt(x), e, "isqrt({x})");
        }
    }

    #[test]
    fn perfect_squares() {
        for r in 0u64..2000 {
            assert_eq!(isqrt(r * r), r);
            if r > 0 {
                assert_eq!(isqrt(r * r - 1), r - 1);
            }
        }
    }

    #[test]
    fn norm_code_identity_on_unit() {
        // Default config: square Q4.4, norm Q4.4 → shift = 4.
        assert_eq!(norm_code(16, 4, 4), 16); // √1.0 = 1.0
        assert_eq!(norm_code(64, 4, 4), 32); // √4.0 = 2.0
        assert_eq!(norm_code(0, 4, 4), 0);
    }

    #[test]
    fn norm_code_saturates() {
        // 16 elements of 15.94 each: sum_raw = 16·255 = 4080, real 255;
        // √255 ≈ 15.97 → code 255 in Q4.4 (just at the top).
        assert_eq!(norm_code(4080, 4, 4), 255);
        // Force true saturation with a wider sum.
        assert_eq!(norm_code(1 << 16, 4, 4), 255);
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn norm_code_rejects_negative_shift() {
        norm_code(16, 10, 4);
    }

    proptest! {
        #[test]
        fn isqrt_is_floor_sqrt(x in 0u64..(u64::MAX >> 2)) {
            let r = isqrt(x);
            prop_assert!(r * r <= x);
            prop_assert!((r + 1).checked_mul(r + 1).map(|s| s > x).unwrap_or(true));
        }

        #[test]
        fn isqrt_monotone(a in any::<u32>(), b in any::<u32>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(isqrt(lo as u64) <= isqrt(hi as u64));
        }
    }
}
