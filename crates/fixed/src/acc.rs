//! The 25-bit partial-sum accumulator.

use std::fmt;

/// Width of the partial-sum datapath in the paper (Sec. IV-A: "the sum is
/// designed as a 25-bit fixed-point value").
pub const ACC_BITS: u32 = 25;

/// A saturating fixed-point accumulator with a configurable bit width.
///
/// The PE adders, the vertical partial-sum chain of the systolic array and
/// the per-column accumulator units (Fig. 11c) all carry `BITS`-wide
/// two's-complement sums. The fraction width is the sum of the operand
/// fraction widths (e.g. Q2.5 data × Q1.6 weights accumulate with 11
/// fraction bits); the accumulator itself is agnostic to it and simply
/// adds raw integer codes.
///
/// Overflow saturates rather than wraps — a 25-bit accumulator is sized so
/// that saturation never occurs for the paper's workload, and
/// [`Acc::saturation_events`] lets tests verify exactly that.
///
/// # Example
///
/// ```
/// use capsacc_fixed::Acc25;
/// let mut acc = Acc25::new();
/// acc.add_product(1000);
/// acc.add_product(-250);
/// assert_eq!(acc.raw(), 750);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Acc<const BITS: u32> {
    value: i64,
    saturations: u32,
}

/// The paper's 25-bit accumulator.
pub type Acc25 = Acc<ACC_BITS>;

impl<const BITS: u32> Acc<BITS> {
    /// Largest representable raw value (`2^(BITS-1) - 1`).
    pub const MAX_RAW: i64 = (1i64 << (BITS - 1)) - 1;
    /// Smallest representable raw value (`-2^(BITS-1)`).
    pub const MIN_RAW: i64 = -(1i64 << (BITS - 1));

    /// Creates a zeroed accumulator.
    pub const fn new() -> Self {
        Self {
            value: 0,
            saturations: 0,
        }
    }

    /// Creates an accumulator holding `raw`, saturated to the bit width.
    pub fn from_raw(raw: i64) -> Self {
        let mut acc = Self::new();
        acc.value = acc.saturate(raw);
        acc
    }

    /// Current raw value.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.value
    }

    /// Number of additions that saturated since construction. A correctly
    /// sized datapath reports zero for the whole CapsuleNet workload.
    #[inline]
    pub const fn saturation_events(self) -> u32 {
        self.saturations
    }

    #[inline]
    fn saturate(&mut self, v: i64) -> i64 {
        if v > Self::MAX_RAW {
            self.saturations += 1;
            Self::MAX_RAW
        } else if v < Self::MIN_RAW {
            self.saturations += 1;
            Self::MIN_RAW
        } else {
            v
        }
    }

    /// Adds a (possibly widened) product term, saturating on overflow.
    #[inline]
    pub fn add_product(&mut self, product: i64) {
        let sum = self.value + product;
        self.value = self.saturate(sum);
    }

    /// Adds another accumulator of the same width, saturating.
    #[inline]
    pub fn add_acc(&mut self, other: Self) {
        self.add_product(other.value);
        self.saturations += other.saturations;
    }

    /// Resets the value to zero, preserving the saturation counter.
    #[inline]
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Converts to `f32` given the fraction width of the accumulated
    /// products.
    #[inline]
    pub fn to_f32(self, frac_bits: u32) -> f32 {
        self.value as f32 / (1u64 << frac_bits) as f32
    }
}

impl<const BITS: u32> fmt::Debug for Acc<BITS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Acc<{}>({})", BITS, self.value)
    }
}

impl<const BITS: u32> fmt::Display for Acc<BITS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_constants_are_25_bit() {
        assert_eq!(Acc25::MAX_RAW, 16_777_215);
        assert_eq!(Acc25::MIN_RAW, -16_777_216);
    }

    #[test]
    fn accumulate_products() {
        let mut acc = Acc25::new();
        for i in 0..100 {
            acc.add_product(i);
        }
        assert_eq!(acc.raw(), 4950);
        assert_eq!(acc.saturation_events(), 0);
    }

    #[test]
    fn saturates_positive_and_counts() {
        let mut acc = Acc25::from_raw(Acc25::MAX_RAW);
        acc.add_product(1);
        assert_eq!(acc.raw(), Acc25::MAX_RAW);
        assert_eq!(acc.saturation_events(), 1);
    }

    #[test]
    fn saturates_negative() {
        let mut acc = Acc25::from_raw(Acc25::MIN_RAW);
        acc.add_product(-1);
        assert_eq!(acc.raw(), Acc25::MIN_RAW);
        assert_eq!(acc.saturation_events(), 1);
    }

    #[test]
    fn from_raw_saturates_out_of_range() {
        assert_eq!(Acc25::from_raw(i64::MAX / 2).raw(), Acc25::MAX_RAW);
        assert_eq!(Acc25::from_raw(i64::MIN / 2).raw(), Acc25::MIN_RAW);
    }

    #[test]
    fn clear_preserves_saturation_count() {
        let mut acc = Acc25::from_raw(Acc25::MAX_RAW);
        acc.add_product(10);
        acc.clear();
        assert_eq!(acc.raw(), 0);
        assert_eq!(acc.saturation_events(), 1);
    }

    #[test]
    fn add_acc_merges_counters() {
        let mut a = Acc25::from_raw(100);
        let mut b = Acc25::from_raw(Acc25::MAX_RAW);
        b.add_product(5); // saturates
        a.add_acc(b);
        assert_eq!(a.raw(), Acc25::MAX_RAW); // 100 + MAX saturates again
        assert_eq!(a.saturation_events(), 2);
    }

    #[test]
    fn to_f32_uses_fraction_width() {
        let acc = Acc25::from_raw(1 << 11);
        assert_eq!(acc.to_f32(11), 1.0);
        assert_eq!(acc.to_f32(12), 0.5);
    }

    #[test]
    fn worst_case_classcaps_dot_product_never_saturates() {
        // The longest reduction in the network is the ClassCaps matmul:
        // 1152 capsules × 8 elements = 9216 products of two 8-bit values.
        // Worst-case magnitude: 9216 * 128 * 128 = 150,994,944 — that DOES
        // exceed 25 bits, so the architecture relies on the accumulator
        // unit splitting the reduction into per-tile sums (Sec. IV-B).
        // A 16-row tile (the array height) accumulates at most
        // 16 * 128 * 128 = 262,144 ≪ 2^24: no saturation per tile.
        let mut acc = Acc25::new();
        for _ in 0..16 {
            acc.add_product(128 * 128);
        }
        assert_eq!(acc.saturation_events(), 0);
        assert_eq!(acc.raw(), 262_144);
    }

    proptest! {
        #[test]
        fn add_matches_bigint_clamp(a in Acc25::MIN_RAW..=Acc25::MAX_RAW,
                                    p in -(1i64<<16)..(1i64<<16)) {
            let mut acc = Acc25::from_raw(a);
            acc.add_product(p);
            let exact = (a + p).clamp(Acc25::MIN_RAW, Acc25::MAX_RAW);
            prop_assert_eq!(acc.raw(), exact);
        }

        #[test]
        fn value_always_in_range(products in proptest::collection::vec(-(1i64<<20)..(1i64<<20), 0..200)) {
            let mut acc = Acc25::new();
            for p in products {
                acc.add_product(p);
                prop_assert!(acc.raw() <= Acc25::MAX_RAW);
                prop_assert!(acc.raw() >= Acc25::MIN_RAW);
            }
        }
    }
}
