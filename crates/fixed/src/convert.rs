//! Requantization: the 25-bit → 8-bit reduction of the activation unit.

/// Requantizes a wide accumulator value to an 8-bit code by an arithmetic
/// right shift with round-half-up, then saturation.
///
/// This models the reduction the paper describes in Sec. IV-C: "The
/// 25-bits data values coming from the Accumulators are reduced to an
/// 8-bit fixed-point value". The shift amount is the difference between
/// the accumulator fraction width and the destination fraction width and
/// is a programmable control-unit parameter in our model.
///
/// Rounding is round-half-up in the two's-complement domain (add
/// `2^(shift-1)` before shifting), the cheapest faithful hardware
/// rounding; `shift == 0` passes the value through unshifted.
///
/// # Example
///
/// ```
/// use capsacc_fixed::requantize;
/// // 1.0 in Q*.11 is 2048; requantizing to Q2.5 shifts right by 6.
/// assert_eq!(requantize(2048, 6), 32);
/// // Round-half-up: 31.5 in the destination scale becomes 32.
/// assert_eq!(requantize(2048 - 32, 6), 32);
/// // Saturation to 8 bits.
/// assert_eq!(requantize(1 << 20, 6), 127);
/// assert_eq!(requantize(-(1 << 20), 6), -128);
/// ```
#[inline]
pub fn requantize(raw: i64, shift: u32) -> i8 {
    let shifted = if shift == 0 {
        raw
    } else {
        (raw + (1i64 << (shift - 1))) >> shift
    };
    shifted.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8
}

/// Saturates a raw value to a signed field of `bits` width, returning the
/// saturated value. Used to model intermediate datapath fields such as the
/// 12-bit square-LUT input or the 6-bit squash-LUT data input.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 63.
///
/// # Example
///
/// ```
/// use capsacc_fixed::saturate_to_bits;
/// assert_eq!(saturate_to_bits(100, 6), 31);
/// assert_eq!(saturate_to_bits(-100, 6), -32);
/// assert_eq!(saturate_to_bits(7, 6), 7);
/// ```
#[inline]
pub fn saturate_to_bits(raw: i64, bits: u32) -> i64 {
    assert!(bits > 0 && bits < 64, "bit width must be in 1..=63");
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    raw.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shift_zero_is_identity_with_saturation() {
        assert_eq!(requantize(100, 0), 100);
        assert_eq!(requantize(300, 0), 127);
        assert_eq!(requantize(-300, 0), -128);
    }

    #[test]
    fn round_half_up_positive_and_negative() {
        // 3 >> 1 with round-half-up: (3 + 1) >> 1 = 2.
        assert_eq!(requantize(3, 1), 2);
        // -3: (-3 + 1) >> 1 = -1 (rounds toward +inf on ties).
        assert_eq!(requantize(-3, 1), -1);
        assert_eq!(requantize(-4, 1), -2);
        assert_eq!(requantize(5, 1), 3);
    }

    #[test]
    fn typical_mac_requantization() {
        // data Q2.5 * weight Q1.6 accumulates at frac 11; back to Q2.5
        // means shift 6.
        let one = 1i64 << 11;
        assert_eq!(requantize(one, 6), 32);
        assert_eq!(requantize(one / 2, 6), 16);
        assert_eq!(requantize(-one, 6), -32);
    }

    #[test]
    fn saturate_to_bits_limits() {
        assert_eq!(saturate_to_bits(31, 6), 31);
        assert_eq!(saturate_to_bits(32, 6), 31);
        assert_eq!(saturate_to_bits(-32, 6), -32);
        assert_eq!(saturate_to_bits(-33, 6), -32);
        assert_eq!(saturate_to_bits(2047, 12), 2047);
        assert_eq!(saturate_to_bits(2048, 12), 2047);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn saturate_to_bits_rejects_zero_width() {
        saturate_to_bits(1, 0);
    }

    proptest! {
        #[test]
        fn requantize_error_within_half_lsb(raw in -(1i64<<22)..(1i64<<22), shift in 1u32..12) {
            let out = requantize(raw, shift) as i64;
            let exact = raw as f64 / (1u64 << shift) as f64;
            if out > i8::MIN as i64 && out < i8::MAX as i64 {
                prop_assert!((out as f64 - exact).abs() <= 0.5);
            }
        }

        #[test]
        fn requantize_is_monotone(a in -(1i64<<22)..(1i64<<22), b in -(1i64<<22)..(1i64<<22), shift in 0u32..12) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(requantize(lo, shift) <= requantize(hi, shift));
        }

        #[test]
        fn saturate_idempotent(raw in any::<i64>().prop_map(|v| v / 2), bits in 1u32..40) {
            let once = saturate_to_bits(raw, bits);
            prop_assert_eq!(saturate_to_bits(once, bits), once);
        }
    }
}
