//! 8-bit fixed-point values with compile-time fraction widths.

use std::fmt;
use std::str::FromStr;

/// An 8-bit two's-complement fixed-point number with `F` fraction bits.
///
/// The represented real value is `raw / 2^F`, giving a range of
/// `[-2^(7-F), 2^(7-F) - 2^-F]` with resolution `2^-F`. The paper's
/// datapath carries 8-bit data and 8-bit weights (Sec. IV-A); the fraction
/// width is a software-level interpretation that the hardware realizes via
/// programmable shifts in the activation unit.
///
/// Commonly used aliases:
///
/// - [`Data8`] = `Fx8<5>` — Q2.5 activations, range ±4, resolution 1/32.
/// - [`Weight8`] = `Fx8<6>` — Q1.6 weights, range ±2, resolution 1/64.
/// - [`Coupling8`] = `Fx8<7>` — Q0.7 coupling coefficients in `[0, 1)`.
///
/// # Example
///
/// ```
/// use capsacc_fixed::Data8;
/// let a = Data8::from_f32(1.5);
/// let b = Data8::from_f32(-0.25);
/// assert_eq!(a.saturating_add(b).to_f32(), 1.25);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx8<const F: u32>(i8);

/// Q2.5 activation/data values (range ±4, resolution 1/32).
pub type Data8 = Fx8<5>;
/// Q1.6 weight values (range ±2, resolution 1/64).
pub type Weight8 = Fx8<6>;
/// Q0.7 coupling coefficients `c_ij` (range `[-1, 1)`, used in `[0, 1)`).
pub type Coupling8 = Fx8<7>;

impl<const F: u32> Fx8<F> {
    /// Number of fraction bits in this format.
    pub const FRAC_BITS: u32 = F;
    /// Smallest representable value.
    pub const MIN: Self = Self(i8::MIN);
    /// Largest representable value.
    pub const MAX: Self = Self(i8::MAX);
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One, saturated if `F == 7` (where the maximum is `127/128`).
    pub const ONE: Self = Self(if F >= 7 { i8::MAX } else { 1 << F });

    /// Creates a value from its raw two's-complement bit pattern.
    ///
    /// ```
    /// use capsacc_fixed::Data8;
    /// assert_eq!(Data8::from_raw(32).to_f32(), 1.0);
    /// ```
    #[inline]
    pub const fn from_raw(raw: i8) -> Self {
        Self(raw)
    }

    /// Returns the raw two's-complement bit pattern.
    #[inline]
    pub const fn raw(self) -> i8 {
        self.0
    }

    /// Quantizes an `f32`, rounding to nearest and saturating to the
    /// representable range. `NaN` maps to zero, mirroring a hardware
    /// quantizer that never produces an invalid code.
    ///
    /// ```
    /// use capsacc_fixed::Weight8;
    /// // Q1.6 saturates at 127/64 ≈ 1.984.
    /// assert_eq!(Weight8::from_f32(7.3), Weight8::MAX);
    /// ```
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = (x * (1u32 << F) as f32).round();
        let clamped = scaled.clamp(i8::MIN as f32, i8::MAX as f32);
        Self(clamped as i8)
    }

    /// Converts back to `f32` (exact: every code has an `f32` image).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1u32 << F) as f32
    }

    /// Saturating addition in the same format.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction in the same format.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-(-128)` saturates to `127`).
    #[inline]
    pub fn saturating_neg(self) -> Self {
        Self(self.0.checked_neg().unwrap_or(i8::MAX))
    }

    /// Widening multiply with another 8-bit fixed-point value. The result
    /// is an exact 16-bit product whose fraction width is the sum of the
    /// operand fraction widths — this is precisely what the PE multiplier
    /// produces before accumulation (Fig. 11b).
    ///
    /// ```
    /// use capsacc_fixed::{Data8, Weight8};
    /// let d = Data8::from_f32(1.5);
    /// let w = Weight8::from_f32(-0.5);
    /// // Product has 5 + 6 = 11 fraction bits.
    /// assert_eq!(d.widening_mul(w), (-0.75 * (1 << 11) as f32) as i16);
    /// ```
    #[inline]
    pub fn widening_mul<const G: u32>(self, rhs: Fx8<G>) -> i16 {
        self.0 as i16 * rhs.0 as i16
    }

    /// The quantization step of this format (`2^-F`) as `f32`.
    #[inline]
    pub fn resolution() -> f32 {
        1.0 / (1u32 << F) as f32
    }

    /// Rectified linear unit: negative codes clamp to zero. This is the
    /// trivially simple ReLU of the activation unit (Sec. IV-C).
    #[inline]
    pub fn relu(self) -> Self {
        if self.0 < 0 {
            Self::ZERO
        } else {
            self
        }
    }

    /// Absolute value, saturating (`|-128|` saturates to `127`).
    #[inline]
    pub fn saturating_abs(self) -> Self {
        Self(self.0.checked_abs().unwrap_or(i8::MAX))
    }
}

impl<const F: u32> fmt::Debug for Fx8<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx8<{}>({} = {})", F, self.0, self.to_f32())
    }
}

impl<const F: u32> fmt::Display for Fx8<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl<const F: u32> From<Fx8<F>> for f32 {
    fn from(v: Fx8<F>) -> f32 {
        v.to_f32()
    }
}

/// Error returned when parsing an [`Fx8`] from a string fails.
///
/// ```
/// use capsacc_fixed::Data8;
/// let err = "not-a-number".parse::<Data8>().unwrap_err();
/// assert!(err.to_string().contains("invalid"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFxError {
    input: String,
}

impl fmt::Display for ParseFxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fixed-point literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseFxError {}

impl<const F: u32> FromStr for Fx8<F> {
    type Err = ParseFxError;

    /// Parses a decimal literal and quantizes it (round-to-nearest,
    /// saturating).
    ///
    /// # Errors
    ///
    /// Returns [`ParseFxError`] when the input is not a valid decimal
    /// number.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let x: f32 = s.parse().map_err(|_| ParseFxError {
            input: s.to_owned(),
        })?;
        if x.is_nan() {
            return Err(ParseFxError {
                input: s.to_owned(),
            });
        }
        Ok(Self::from_f32(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_exact_codes() {
        for raw in i8::MIN..=i8::MAX {
            let v = Data8::from_raw(raw);
            assert_eq!(Data8::from_f32(v.to_f32()), v);
        }
    }

    #[test]
    fn one_is_saturated_in_q07() {
        assert_eq!(Coupling8::ONE.raw(), 127);
        assert_eq!(Data8::ONE.to_f32(), 1.0);
        assert_eq!(Weight8::ONE.to_f32(), 1.0);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Data8::from_f32(100.0), Data8::MAX);
        assert_eq!(Data8::from_f32(-100.0), Data8::MIN);
        assert_eq!(Data8::from_f32(f32::INFINITY), Data8::MAX);
        assert_eq!(Data8::from_f32(f32::NEG_INFINITY), Data8::MIN);
        assert_eq!(Data8::from_f32(f32::NAN), Data8::ZERO);
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 1/64 is exactly between the Q2.5 codes 0 and 1/32: rounds away
        // from zero in `f32::round` semantics.
        assert_eq!(Data8::from_f32(1.0 / 64.0).raw(), 1);
        assert_eq!(Data8::from_f32(-1.0 / 64.0).raw(), -1);
        assert_eq!(Data8::from_f32(1.01 / 64.0).raw(), 1);
        assert_eq!(Data8::from_f32(0.49 / 32.0).raw(), 0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Data8::from_f32(-1.0).relu(), Data8::ZERO);
        assert_eq!(Data8::from_f32(1.0).relu(), Data8::from_f32(1.0));
        assert_eq!(Data8::ZERO.relu(), Data8::ZERO);
    }

    #[test]
    fn widening_mul_is_exact() {
        let d = Data8::from_raw(-128);
        let w = Weight8::from_raw(-128);
        assert_eq!(d.widening_mul(w), 16384);
        let d = Data8::from_raw(127);
        let w = Weight8::from_raw(-128);
        assert_eq!(d.widening_mul(w), -16256);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Data8::MAX.saturating_add(Data8::from_raw(1)), Data8::MAX);
        assert_eq!(Data8::MIN.saturating_sub(Data8::from_raw(1)), Data8::MIN);
        assert_eq!(Data8::MIN.saturating_neg(), Data8::MAX);
        assert_eq!(Data8::MIN.saturating_abs(), Data8::MAX);
    }

    #[test]
    fn parse_roundtrip_and_error() {
        let v: Data8 = "1.5".parse().unwrap();
        assert_eq!(v.to_f32(), 1.5);
        assert!("abc".parse::<Data8>().is_err());
        assert!("NaN".parse::<Data8>().is_err());
    }

    #[test]
    fn display_shows_real_value() {
        assert_eq!(Data8::from_f32(0.5).to_string(), "0.5");
        assert!(!format!("{:?}", Data8::from_f32(0.5)).is_empty());
    }

    proptest! {
        #[test]
        fn quantization_error_bounded(x in -3.9f32..3.9) {
            let v = Data8::from_f32(x);
            prop_assert!((v.to_f32() - x).abs() <= Data8::resolution() / 2.0 + f32::EPSILON);
        }

        #[test]
        fn widening_mul_matches_float(a in any::<i8>(), b in any::<i8>()) {
            let d = Data8::from_raw(a);
            let w = Weight8::from_raw(b);
            let exact = d.to_f32() * w.to_f32();
            let got = d.widening_mul(w) as f32 / (1u32 << 11) as f32;
            prop_assert_eq!(exact, got);
        }

        #[test]
        fn saturating_add_never_wraps(a in any::<i8>(), b in any::<i8>()) {
            let s = Data8::from_raw(a).saturating_add(Data8::from_raw(b));
            let exact = a as i16 + b as i16;
            prop_assert_eq!(s.raw() as i16, exact.clamp(-128, 127));
        }
    }
}
