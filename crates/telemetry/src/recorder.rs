//! The span recorder: a virtual-time clock plus a stack of open spans.

use crate::metrics::MetricsRegistry;

/// The track (Chrome-trace `tid`) the engine's stack-built span tree
/// lives on. Other subsystems record explicit-interval spans on their
/// own tracks (the serving sink assigns per-worker and per-request
/// tracks above this).
pub const TRACK_ENGINE: u32 = 0;

/// How deep the engine's span tree goes. Levels are ordered: a span
/// tagged at a given level is recorded only when the configured detail
/// is at least that deep, so `Layers` sees three spans per inference
/// while `Tiles` sees every weight-tile load and stream window.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanDetail {
    /// One span per network layer under the inference root.
    Layers,
    /// Plus per-phase spans: matmuls, squash, routing iterations,
    /// staging and memory-stall windows.
    Phases,
    /// Plus per-weight-tile spans with load/stream children and
    /// per-image drain windows. At MNIST scale this is hundreds of
    /// thousands of spans; intended for small design points.
    Tiles,
}

/// Recorder configuration.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TelemetryConfig {
    /// Span-tree depth for the engine track.
    pub detail: SpanDetail,
    /// When true, the functional backend annotates matmul spans with
    /// host nanoseconds spent staging `KTile`s and sweeping rows.
    /// Host times never enter the virtual clock; they ride along as
    /// span args only.
    pub host_timing: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            detail: SpanDetail::Phases,
            host_timing: false,
        }
    }
}

/// What a batch of advanced cycles was spent on. The kind exists so
/// call sites can temporarily *suppress* one class of charges — e.g.
/// ClassCaps accounting excludes the activation-drain cycles of its
/// routing matmuls, so the engine masks [`CycleKind::Activation`]
/// around those calls to keep the span tree summing exactly to
/// `LayerRun` totals.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CycleKind {
    /// Systolic-array busy cycles (weight loads + row streaming).
    Array,
    /// Activation/squash/softmax unit cycles.
    Activation,
    /// Cycles the array waited on the memory hierarchy.
    MemStall,
    /// Accounting-only transfer cycles that appear in step tables but
    /// in no engine counter (e.g. the routing `Load` step). Never
    /// suppressed.
    Io,
}

impl CycleKind {
    fn mask(self) -> u8 {
        match self {
            CycleKind::Array => 1,
            CycleKind::Activation => 2,
            CycleKind::MemStall => 4,
            CycleKind::Io => 0, // unmaskable
        }
    }
}

/// One recorded span: a named `[start, end)` interval of virtual time
/// on a track, with an optional parent (stack-built spans) and numeric
/// args carried into the Chrome-trace export.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Span {
    /// Phase name (e.g. `"matmul"`, `"softmax"`, `"request"`).
    pub name: &'static str,
    /// Track (Chrome-trace `tid`) the span renders on.
    pub track: u32,
    /// Virtual cycle the span opened at.
    pub start: u64,
    /// Virtual cycle the span closed at (`>= start`; zero-length spans
    /// are legal — e.g. a suppressed drain window).
    pub end: u64,
    /// Index of the enclosing span in [`Recorder::spans`], if any.
    pub parent: Option<u32>,
    /// Numeric annotations (`("i", iteration)`, `("req", id)`,
    /// host-nanosecond timings, ...).
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// Span length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Audited widening of a `u32` span index into host index space.
/// (`capsacc-telemetry` is dependency-free, so it cannot share
/// `capsacc_tensor::usize_from`; std offers no `From<u32> for usize`
/// because of 16-bit targets.)
fn span_index(idx: u32) -> usize {
    usize::try_from(idx).expect("span index fits usize")
}

/// A span recorder with its own virtual clock.
///
/// The clock is advanced *explicitly* by instrumentation
/// ([`Recorder::advance`]) at each point the simulation charges
/// cycles, rather than being derived from engine counters — the
/// engine's per-layer accounting is not a simple counter delta (some
/// step cycles exist only in step tables, some activation charges are
/// excluded from layer totals), and the explicit clock plus the
/// [`CycleKind`] suppression mask is what makes span trees sum
/// *exactly* to `LayerRun`/`BatchRun` totals.
///
/// A disabled recorder (the default everywhere) turns every method
/// into a cheap early-return: no allocation, no clock movement, no
/// observable effect of any kind.
#[derive(Clone, PartialEq, Debug)]
pub struct Recorder {
    enabled: bool,
    cfg: TelemetryConfig,
    now: u64,
    suppress: u8,
    stack: Vec<u32>,
    spans: Vec<Span>,
    track_names: Vec<(u32, String)>,
    metrics: MetricsRegistry,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Recorder {
    /// The do-nothing recorder every instrumented component defaults
    /// to.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            cfg: TelemetryConfig::default(),
            now: 0,
            suppress: 0,
            stack: Vec::new(),
            spans: Vec::new(),
            track_names: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// An enabled recorder.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            enabled: true,
            cfg,
            ..Self::disabled()
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether host wall-clock annotation was requested (and recording
    /// is on) — instrumented code reads host clocks only when this
    /// returns true.
    pub fn host_timing(&self) -> bool {
        self.enabled && self.cfg.host_timing
    }

    /// The configured span detail.
    pub fn detail(&self) -> SpanDetail {
        self.cfg.detail
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// All recorded spans, in creation (i.e. open) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn active(&self, level: SpanDetail) -> bool {
        self.enabled && level <= self.cfg.detail
    }

    /// Opens a span at `level` on the engine track. No-op unless
    /// recording is on and the configured detail reaches `level` —
    /// [`Recorder::end`] applies the same gate, so begin/end pairs
    /// stay balanced at every detail setting.
    pub fn begin(&mut self, level: SpanDetail, name: &'static str) {
        if !self.active(level) {
            return;
        }
        self.push_span(name, Vec::new());
    }

    /// [`Recorder::begin`] with one numeric annotation.
    pub fn begin_arg(&mut self, level: SpanDetail, name: &'static str, key: &'static str, v: u64) {
        if !self.active(level) {
            return;
        }
        self.push_span(name, vec![(key, v)]);
    }

    fn push_span(&mut self, name: &'static str, args: Vec<(&'static str, u64)>) {
        let parent = self.stack.last().copied();
        let idx = self.spans.len() as u32;
        self.spans.push(Span {
            name,
            track: TRACK_ENGINE,
            start: self.now,
            end: self.now,
            parent,
            args,
        });
        self.stack.push(idx);
    }

    /// Closes the innermost open span. Gated identically to
    /// [`Recorder::begin`].
    ///
    /// # Panics
    ///
    /// Panics if the gate passes but no span is open (an
    /// instrumentation bug).
    pub fn end(&mut self, level: SpanDetail) {
        if !self.active(level) {
            return;
        }
        let idx = self
            .stack
            .pop()
            .expect("Recorder::end without matching begin");
        self.spans[span_index(idx)].end = self.now;
    }

    /// Appends a numeric annotation to the innermost open span (no-op
    /// when nothing is open or recording is off).
    pub fn annotate(&mut self, key: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        if let Some(&idx) = self.stack.last() {
            self.spans[span_index(idx)].args.push((key, v));
        }
    }

    /// Advances the virtual clock by `cycles`, unless recording is off
    /// or `kind` is currently suppressed.
    pub fn advance(&mut self, kind: CycleKind, cycles: u64) {
        if self.enabled && self.suppress & kind.mask() == 0 {
            self.now += cycles;
        }
    }

    /// Masks a [`CycleKind`] so its [`Recorder::advance`] charges stop
    /// moving the clock until [`Recorder::unsuppress`].
    pub fn suppress(&mut self, kind: CycleKind) {
        self.suppress |= kind.mask();
    }

    /// Clears a [`Recorder::suppress`] mask bit.
    pub fn unsuppress(&mut self, kind: CycleKind) {
        self.suppress &= !kind.mask();
    }

    /// Records an explicit `[start, end)` span on an arbitrary track —
    /// the serving sink builds its request/batch timeline this way
    /// from `LoggedEvent`s. Does not interact with the stack or the
    /// clock.
    pub fn record_span(
        &mut self,
        track: u32,
        name: &'static str,
        start: u64,
        end: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        assert!(start <= end, "record_span: start after end");
        self.spans.push(Span {
            name,
            track,
            start,
            end,
            parent: None,
            args,
        });
    }

    /// Names a track for the Chrome-trace export (emitted as a
    /// `thread_name` metadata event).
    pub fn set_track_name(&mut self, track: u32, name: &str) {
        if !self.enabled {
            return;
        }
        if !self.track_names.iter().any(|(t, _)| *t == track) {
            self.track_names.push((track, name.to_string()));
        }
    }

    /// Registered track names in registration order.
    pub fn track_names(&self) -> &[(u32, String)] {
        &self.track_names
    }

    /// Adds `v` to a named counter.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if self.enabled {
            self.metrics.counter_add(name, v);
        }
    }

    /// Appends a `(cycle, value)` sample to a gauge time series.
    pub fn gauge_sample(&mut self, name: &str, cycle: u64, v: f64) {
        if self.enabled {
            self.metrics.gauge_sample(name, cycle, v);
        }
    }

    /// Records one observation into a histogram.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        if self.enabled {
            self.metrics.hist_record(name, v);
        }
    }

    /// Number of spans currently open (zero after any complete run).
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }
}

/// Validates the stack-built span tree on `track` and returns the
/// summed length of its root spans.
///
/// Checks, for every span on the track: `start <= end`, children lie
/// inside their parent, and — for each parent that *has* children —
/// the children are contiguous and exactly cover the parent (no gaps,
/// no overlaps, first child starts at the parent's start, last child
/// ends at the parent's end). Root spans must be non-overlapping and
/// in order. Fails if any span is still open.
///
/// Zero-length spans are legal at every level (e.g. drain windows
/// whose activation charge is suppressed inside routing matmuls).
pub fn validate_span_tree(rec: &Recorder, track: u32) -> Result<u64, String> {
    if rec.open_spans() != 0 {
        return Err(format!("{} spans still open", rec.open_spans()));
    }
    let spans = rec.spans();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.track != track {
            continue;
        }
        if s.start > s.end {
            return Err(format!("span {i} ({}) ends before it starts", s.name));
        }
        match s.parent {
            Some(p) => {
                let p = span_index(p);
                let parent = &spans[p];
                if parent.track != track {
                    return Err(format!("span {i} ({}) crosses tracks", s.name));
                }
                if s.start < parent.start || s.end > parent.end {
                    return Err(format!(
                        "span {i} ({}) [{}, {}) escapes parent {} ({}) [{}, {})",
                        s.name, s.start, s.end, p, parent.name, parent.start, parent.end
                    ));
                }
                children[p].push(i);
            }
            None => roots.push(i),
        }
    }
    for (p, kids) in children.iter().enumerate() {
        if kids.is_empty() {
            continue;
        }
        let parent = &spans[p];
        let mut cursor = parent.start;
        for &c in kids {
            let child = &spans[c];
            if child.start != cursor {
                return Err(format!(
                    "gap or overlap before span {c} ({}): expected start {}, got {}",
                    child.name, cursor, child.start
                ));
            }
            cursor = child.end;
        }
        if cursor != parent.end {
            return Err(format!(
                "children of span {p} ({}) end at {}, parent ends at {}",
                parent.name, cursor, parent.end
            ));
        }
    }
    let mut total = 0u64;
    let mut cursor = 0u64;
    for &r in &roots {
        let root = &spans[r];
        if root.start < cursor {
            return Err(format!(
                "root span {r} ({}) overlaps the previous root",
                root.name
            ));
        }
        cursor = root.end;
        total += root.cycles();
    }
    Ok(total)
}

#[allow(dead_code)]
const fn assert_send_sync<T: Send + Sync>() {}
#[allow(dead_code)]
const _: () = assert_send_sync::<Recorder>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = Recorder::disabled();
        r.begin(SpanDetail::Layers, "a");
        r.advance(CycleKind::Array, 100);
        r.end(SpanDetail::Layers);
        r.counter_add("c", 1);
        r.record_span(3, "x", 0, 5, Vec::new());
        assert_eq!(r.now(), 0);
        assert!(r.spans().is_empty());
        assert!(r.metrics().is_empty());
    }

    #[test]
    fn detail_gates_symmetrically() {
        let mut r = Recorder::new(TelemetryConfig {
            detail: SpanDetail::Phases,
            host_timing: false,
        });
        r.begin(SpanDetail::Layers, "layer");
        r.begin(SpanDetail::Phases, "phase");
        r.begin(SpanDetail::Tiles, "tile"); // gated out
        r.advance(CycleKind::Array, 7);
        r.end(SpanDetail::Tiles); // gated out
        r.end(SpanDetail::Phases);
        r.end(SpanDetail::Layers);
        assert_eq!(r.spans().len(), 2);
        assert_eq!(validate_span_tree(&r, TRACK_ENGINE), Ok(7));
    }

    #[test]
    fn suppression_masks_one_kind_only() {
        let mut r = Recorder::new(TelemetryConfig::default());
        r.suppress(CycleKind::Activation);
        r.advance(CycleKind::Activation, 10);
        r.advance(CycleKind::Array, 3);
        r.advance(CycleKind::Io, 2);
        r.unsuppress(CycleKind::Activation);
        r.advance(CycleKind::Activation, 1);
        assert_eq!(r.now(), 6);
    }

    #[test]
    fn validator_rejects_gaps_and_escapes() {
        let mut r = Recorder::new(TelemetryConfig {
            detail: SpanDetail::Tiles,
            host_timing: false,
        });
        r.begin(SpanDetail::Layers, "parent");
        r.begin(SpanDetail::Phases, "child");
        r.advance(CycleKind::Array, 4);
        r.end(SpanDetail::Phases);
        r.advance(CycleKind::Array, 1); // gap: advances outside any child
        r.end(SpanDetail::Layers);
        let err = validate_span_tree(&r, TRACK_ENGINE).unwrap_err();
        assert!(err.contains("end at 4"), "{err}");
    }

    #[test]
    fn validator_accepts_zero_length_children() {
        let mut r = Recorder::new(TelemetryConfig {
            detail: SpanDetail::Tiles,
            host_timing: false,
        });
        r.begin(SpanDetail::Layers, "parent");
        r.begin(SpanDetail::Phases, "a");
        r.advance(CycleKind::Array, 4);
        r.end(SpanDetail::Phases);
        r.begin(SpanDetail::Phases, "suppressed");
        r.end(SpanDetail::Phases);
        r.end(SpanDetail::Layers);
        assert_eq!(validate_span_tree(&r, TRACK_ENGINE), Ok(4));
    }

    #[test]
    fn unclosed_span_fails_validation() {
        let mut r = Recorder::new(TelemetryConfig::default());
        r.begin(SpanDetail::Layers, "open");
        assert!(validate_span_tree(&r, TRACK_ENGINE).is_err());
    }

    #[test]
    fn explicit_spans_do_not_touch_the_engine_track() {
        let mut r = Recorder::new(TelemetryConfig::default());
        r.record_span(7, "request", 10, 20, vec![("req", 1)]);
        assert_eq!(validate_span_tree(&r, TRACK_ENGINE), Ok(0));
        assert_eq!(validate_span_tree(&r, 7), Ok(10));
    }
}
