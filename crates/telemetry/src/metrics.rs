//! Typed metrics: counters, gauge time series and histograms.

use std::collections::BTreeMap;

/// Nearest-rank percentile of an ascending slice — the same convention
/// `capsacc-serve`'s `sim::percentile` reports (which delegates here),
/// so bench tables and telemetry dumps agree digit for digit. Returns
/// 0 on an empty slice.
///
/// # Panics
///
/// Panics unless `0 < pct <= 100`.
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    assert!(pct > 0.0 && pct <= 100.0, "percentile out of range");
    if sorted.is_empty() {
        return 0;
    }
    // lint:allow(cast-audit, nearest-rank is defined on the f64 ceil; rank <= len so the cast back to an index is lossless)
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary statistics of one histogram, computed at export time.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Nearest-rank 50th percentile.
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

/// A registry of named metrics. Keys are stored in a `BTreeMap`, so
/// every export iterates in a stable, sorted order regardless of
/// recording order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(u64, f64)>>,
    histograms: BTreeMap<String, Vec<u64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to the named counter (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry_or_insert(name) += v;
    }

    /// Appends a `(cycle, value)` sample to the named gauge series.
    pub fn gauge_sample(&mut self, name: &str, cycle: u64, v: f64) {
        self.gauges.entry_or_insert(name).push((cycle, v));
    }

    /// Records one observation into the named histogram.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        self.histograms.entry_or_insert(name).push(v);
    }

    /// Counter value, zero if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge samples in recording order (empty if never touched).
    pub fn gauge(&self, name: &str) -> &[(u64, f64)] {
        self.gauges.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary of the named histogram (all-zero if never touched).
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms
            .get(name)
            .map(|v| summarize(v))
            .unwrap_or_default()
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &[(u64, f64)])> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// All histogram summaries in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, HistogramSummary)> {
        self.histograms
            .iter()
            .map(|(k, v)| (k.as_str(), summarize(v)))
    }
}

fn summarize(values: &[u64]) -> HistogramSummary {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    HistogramSummary {
        count: u64::try_from(sorted.len()).expect("histogram count fits u64"),
        p50: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
        p99: percentile(&sorted, 99.0),
        max: sorted.last().copied().unwrap_or(0),
    }
}

/// `entry(name.to_string()).or_default()` without allocating when the
/// key already exists.
trait EntryOrInsert<V: Default> {
    fn entry_or_insert(&mut self, name: &str) -> &mut V;
}

impl<V: Default> EntryOrInsert<V> for BTreeMap<String, V> {
    fn entry_or_insert(&mut self, name: &str) -> &mut V {
        if !self.contains_key(name) {
            self.insert(name.to_string(), V::default());
        }
        self.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_serve_convention() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn histogram_summary() {
        let mut m = MetricsRegistry::new();
        for v in [5u64, 1, 9, 3, 7] {
            m.hist_record("h", v);
        }
        let s = m.histogram("h");
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 5);
        assert_eq!(s.max, 9);
        assert_eq!(m.histogram("missing"), HistogramSummary::default());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b", 2);
        m.counter_add("a", 1);
        m.counter_add("b", 3);
        m.gauge_sample("g", 10, 0.5);
        assert_eq!(m.counter("b"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), &[(10, 0.5)]);
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]); // sorted export order
    }
}
