//! Deterministic, virtual-time-first observability for the CapsAcc
//! stack.
//!
//! Three pillars, all keyed to *simulated* cycles rather than host
//! time:
//!
//! - **Span tracing** ([`Recorder`]): nested spans over the engine's
//!   virtual clock (inference → layer → matmul → tile → load/stream
//!   phases), explicit-interval spans for serving timelines, and
//!   optional host wall-clock annotations so simulated and host
//!   hotspots can be compared side by side.
//! - **Metrics** ([`MetricsRegistry`]): typed counters, gauge time
//!   series and histograms with the same nearest-rank
//!   [`percentile`] convention the serving simulator reports.
//! - **Exporters** ([`chrome_trace_json`], [`metrics_json`],
//!   [`metrics_csv`]): Chrome-trace (Perfetto) JSON for span trees and
//!   machine-readable metrics dumps, plus [`validate_json`] — a
//!   dependency-free JSON checker the CI asserts exports against.
//!
//! The non-negotiable invariant, following the `TraceLevel` precedent
//! in `capsacc-core`: recording **off** is the default and is
//! byte-invisible to every simulated result, and recording **on**
//! never perturbs outputs, cycles or traffic. The recorder is plain
//! owned data (no interior mutability, no host clocks of its own), so
//! enabling it only ever *observes* the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod recorder;

pub use export::{chrome_trace_json, metrics_csv, metrics_json, validate_json};
pub use metrics::{percentile, HistogramSummary, MetricsRegistry};
pub use recorder::{
    validate_span_tree, CycleKind, Recorder, Span, SpanDetail, TelemetryConfig, TRACK_ENGINE,
};
