//! Exporters: Chrome-trace JSON for span trees, JSON/CSV metrics
//! dumps, and a dependency-free JSON validity checker.

use crate::recorder::Recorder;
use std::fmt::Write as _;

/// Renders the recorder's spans as Chrome-trace (Perfetto) JSON:
/// `{"traceEvents": [...]}` with one complete (`"ph": "X"`) event per
/// span — `ts`/`dur` are simulated cycles (nominally microseconds to
/// the viewer) — preceded by `thread_name` metadata for every named
/// track. Output is deterministic: events appear in recording order.
pub fn chrome_trace_json(rec: &Recorder) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, ev: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(ev);
    };
    let mut named: Vec<(u32, &str)> = rec
        .track_names()
        .iter()
        .map(|(t, n)| (*t, n.as_str()))
        .collect();
    if !named.iter().any(|(t, _)| *t == crate::TRACK_ENGINE)
        && rec.spans().iter().any(|s| s.track == crate::TRACK_ENGINE)
    {
        named.insert(0, (crate::TRACK_ENGINE, "engine"));
    }
    for (track, name) in named {
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {track}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_string(name)
            ),
        );
    }
    for s in rec.spans() {
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push_str(", ");
            }
            let _ = write!(args, "{}: {v}", json_string(k));
        }
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                 \"name\": {}, \"args\": {{{args}}}}}",
                s.track,
                s.start,
                s.cycles(),
                json_string(s.name)
            ),
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the metrics registry as JSON with sorted keys:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn metrics_json(rec: &Recorder) -> String {
    let m = rec.metrics();
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, v) in m.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {v}", json_string(name));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, samples) in m.gauges() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: [", json_string(name));
        for (i, (cycle, v)) in samples.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{cycle}, {}]", json_f64(*v));
        }
        out.push(']');
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, h) in m.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            json_string(name),
            h.count,
            h.p50,
            h.p95,
            h.p99,
            h.max
        );
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

/// Renders the metrics registry as CSV with a fixed
/// `kind,name,key,value` header. Counters use an empty key, gauge rows
/// carry their sample cycle, histograms emit one row per summary stat.
pub fn metrics_csv(rec: &Recorder) -> String {
    let m = rec.metrics();
    let mut out = String::from("kind,name,key,value\n");
    for (name, v) in m.counters() {
        let _ = writeln!(out, "counter,{name},,{v}");
    }
    for (name, samples) in m.gauges() {
        for (cycle, v) in samples {
            let _ = writeln!(out, "gauge,{name},{cycle},{}", json_f64(*v));
        }
    }
    for (name, h) in m.histograms() {
        let _ = writeln!(out, "histogram,{name},count,{}", h.count);
        let _ = writeln!(out, "histogram,{name},p50,{}", h.p50);
        let _ = writeln!(out, "histogram,{name},p95,{}", h.p95);
        let _ = writeln!(out, "histogram,{name},p99,{}", h.p99);
        let _ = writeln!(out, "histogram,{name},max,{}", h.max);
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "non-finite metric value");
    format!("{v}")
}

/// Checks that `s` is one complete, syntactically valid JSON value —
/// the in-binary assert `exp_profile` runs over every export (no JSON
/// library is vendored, so exporters are hand-rolled and this is the
/// independent check against malformed output).
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at offset {pos}")),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while pos_digit(b, *pos) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

fn pos_digit(b: &[u8], pos: usize) -> bool {
    b.get(pos).is_some_and(u8::is_ascii_digit)
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CycleKind, SpanDetail, TelemetryConfig};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new(TelemetryConfig::default());
        r.begin(SpanDetail::Layers, "inference");
        r.begin_arg(SpanDetail::Phases, "matmul", "i", 1);
        r.advance(CycleKind::Array, 12);
        r.annotate("host_ns", 340);
        r.end(SpanDetail::Phases);
        r.end(SpanDetail::Layers);
        r.record_span(5, "request", 0, 9, vec![("req", 3)]);
        r.set_track_name(5, "requests");
        r.counter_add("mem.calls", 2);
        r.gauge_sample("queue", 100, 1.5);
        r.hist_record("lat", 4);
        r.hist_record("lat", 8);
        r
    }

    #[test]
    fn exports_are_valid_json() {
        let r = sample_recorder();
        let trace = chrome_trace_json(&r);
        validate_json(&trace).expect("chrome trace parses");
        assert!(trace.contains("\"name\": \"matmul\""));
        assert!(trace.contains("\"dur\": 12"));
        assert!(trace.contains("\"host_ns\": 340"));
        assert!(trace.contains("thread_name"));
        let metrics = metrics_json(&r);
        validate_json(&metrics).expect("metrics json parses");
        assert!(metrics.contains("\"mem.calls\": 2"));
        assert!(metrics.contains("[100, 1.5]"));
        assert!(metrics.contains("\"p50\": 4"));
    }

    #[test]
    fn empty_recorder_exports_parse() {
        let r = Recorder::new(TelemetryConfig::default());
        validate_json(&chrome_trace_json(&r)).unwrap();
        validate_json(&metrics_json(&r)).unwrap();
    }

    #[test]
    fn csv_has_fixed_header_and_rows() {
        let csv = metrics_csv(&sample_recorder());
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,key,value");
        assert!(lines.contains(&"counter,mem.calls,,2"));
        assert!(lines.contains(&"gauge,queue,100,1.5"));
        assert!(lines.contains(&"histogram,lat,p50,4"));
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2,]",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "{\"a\" 1}",
            "nulle",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad:?}");
        }
        for good in [
            "null",
            "-1.5e-3",
            "[]",
            "{}",
            "{\"a\": [1, {\"b\": \"c\\n\"}, true, false, null]}",
            "  42  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
