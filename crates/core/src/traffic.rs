//! Memory and buffer traffic accounting.
//!
//! The paper's data-reuse claims are memory-traffic claims ("avoids
//! extensive load and store operations on the on-chip memory, by reusing
//! the data when possible") — these counters make them measurable and
//! ablatable.

use std::fmt;

/// The storage structures of Fig. 10.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemoryKind {
    /// On-chip Data Memory.
    DataMemory,
    /// On-chip Weight Memory.
    WeightMemory,
    /// Data Buffer between Data Memory and the array.
    DataBuffer,
    /// Routing Buffer holding `c_ij`, `b_ij` and `v_j` during routing.
    RoutingBuffer,
    /// Weight Buffer between Weight Memory and the array.
    WeightBuffer,
    /// Off-chip DRAM behind the on-chip hierarchy (weights fetched
    /// through the prefetcher, input images staged per batch). The only
    /// off-chip structure; everything above is on chip.
    Dram,
}

impl MemoryKind {
    /// All kinds, in display order (on-chip structures first).
    pub const ALL: [MemoryKind; 6] = [
        MemoryKind::DataMemory,
        MemoryKind::WeightMemory,
        MemoryKind::DataBuffer,
        MemoryKind::RoutingBuffer,
        MemoryKind::WeightBuffer,
        MemoryKind::Dram,
    ];

    /// Whether this structure is on chip.
    pub fn is_onchip(&self) -> bool {
        !matches!(self, MemoryKind::Dram)
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryKind::DataMemory => "Data Memory",
            MemoryKind::WeightMemory => "Weight Memory",
            MemoryKind::DataBuffer => "Data Buffer",
            MemoryKind::RoutingBuffer => "Routing Buffer",
            MemoryKind::WeightBuffer => "Weight Buffer",
            MemoryKind::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// Byte-granular read/write counters for one storage structure.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct TrafficCounter {
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl TrafficCounter {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Traffic counters for all six storage structures (five on-chip plus
/// DRAM).
///
/// # Example
///
/// ```
/// use capsacc_core::{MemoryKind, TrafficReport};
/// let mut t = TrafficReport::default();
/// t.read(MemoryKind::DataMemory, 128);
/// t.write(MemoryKind::RoutingBuffer, 64);
/// assert_eq!(t.counter(MemoryKind::DataMemory).read_bytes, 128);
/// assert_eq!(t.total_bytes(), 192);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TrafficReport {
    counters: [TrafficCounter; 6],
}

impl TrafficReport {
    fn index(kind: MemoryKind) -> usize {
        MemoryKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind present in ALL")
    }

    /// Records a read of `bytes` from `kind`.
    pub fn read(&mut self, kind: MemoryKind, bytes: u64) {
        self.counters[Self::index(kind)].read_bytes += bytes;
    }

    /// Records a write of `bytes` to `kind`.
    pub fn write(&mut self, kind: MemoryKind, bytes: u64) {
        self.counters[Self::index(kind)].write_bytes += bytes;
    }

    /// The counter for one storage structure.
    pub fn counter(&self, kind: MemoryKind) -> TrafficCounter {
        self.counters[Self::index(kind)]
    }

    /// Total bytes moved across all structures (on-chip and off-chip).
    pub fn total_bytes(&self) -> u64 {
        self.counters.iter().map(TrafficCounter::total).sum()
    }

    /// Bytes moved across the on-chip structures only.
    pub fn onchip_bytes(&self) -> u64 {
        MemoryKind::ALL
            .iter()
            .filter(|k| k.is_onchip())
            .map(|&k| self.counter(k).total())
            .sum()
    }

    /// Bytes moved across the off-chip (DRAM) channel.
    pub fn offchip_bytes(&self) -> u64 {
        self.counter(MemoryKind::Dram).total()
    }

    /// Amortized off-chip bytes per image for a report covering `batch`
    /// images — the DRAM-side counterpart of
    /// [`TrafficReport::bytes_per_image`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn offchip_bytes_per_image(&self, batch: u64) -> f64 {
        self.bytes_per_image(MemoryKind::Dram, batch)
    }

    /// Returns the difference `self − earlier`, counter by counter: the
    /// traffic that occurred after `earlier` was snapshotted from the
    /// same counter stream.
    ///
    /// # Panics
    ///
    /// Panics if any counter of `earlier` exceeds its counterpart in
    /// `self` (`earlier` is not a prior snapshot).
    pub fn since(&self, earlier: &TrafficReport) -> TrafficReport {
        let mut out = TrafficReport::default();
        for ((o, a), b) in out
            .counters
            .iter_mut()
            .zip(&self.counters)
            .zip(&earlier.counters)
        {
            o.read_bytes = a
                .read_bytes
                .checked_sub(b.read_bytes)
                .expect("snapshot is not a prior state");
            o.write_bytes = a
                .write_bytes
                .checked_sub(b.write_bytes)
                .expect("snapshot is not a prior state");
        }
        out
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &TrafficReport) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            a.read_bytes += b.read_bytes;
            a.write_bytes += b.write_bytes;
        }
    }

    /// Amortized bytes (read + write) per image for one storage
    /// structure, for a report that covers a batch of `batch` images.
    ///
    /// This is the metric the batched schedule improves: weight-side
    /// counters shrink per image as the batch grows, data-side counters
    /// stay flat.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn bytes_per_image(&self, kind: MemoryKind, batch: u64) -> f64 {
        assert!(batch > 0, "batch must be non-zero");
        self.counter(kind).total() as f64 / batch as f64
    }

    /// Amortized total bytes per image across all structures for a
    /// report covering `batch` images.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn total_bytes_per_image(&self, batch: u64) -> f64 {
        assert!(batch > 0, "batch must be non-zero");
        self.total_bytes() as f64 / batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_independent() {
        let mut t = TrafficReport::default();
        t.read(MemoryKind::DataMemory, 10);
        t.read(MemoryKind::WeightMemory, 20);
        t.write(MemoryKind::DataBuffer, 5);
        assert_eq!(t.counter(MemoryKind::DataMemory).read_bytes, 10);
        assert_eq!(t.counter(MemoryKind::WeightMemory).read_bytes, 20);
        assert_eq!(t.counter(MemoryKind::DataBuffer).write_bytes, 5);
        assert_eq!(t.counter(MemoryKind::RoutingBuffer).total(), 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = TrafficReport::default();
        a.read(MemoryKind::WeightBuffer, 7);
        let mut b = TrafficReport::default();
        b.read(MemoryKind::WeightBuffer, 3);
        b.write(MemoryKind::WeightBuffer, 2);
        a.merge(&b);
        let c = a.counter(MemoryKind::WeightBuffer);
        assert_eq!((c.read_bytes, c.write_bytes), (10, 2));
        assert_eq!(a.total_bytes(), 12);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemoryKind::DataBuffer.to_string(), "Data Buffer");
        assert_eq!(MemoryKind::Dram.to_string(), "DRAM");
        assert_eq!(MemoryKind::ALL.len(), 6);
    }

    #[test]
    fn onchip_offchip_split() {
        let mut t = TrafficReport::default();
        t.read(MemoryKind::DataMemory, 100);
        t.read(MemoryKind::Dram, 30);
        t.write(MemoryKind::Dram, 10);
        assert_eq!(t.onchip_bytes(), 100);
        assert_eq!(t.offchip_bytes(), 40);
        assert_eq!(t.total_bytes(), 140);
        assert_eq!(t.offchip_bytes_per_image(4), 10.0);
        assert!(MemoryKind::WeightBuffer.is_onchip());
        assert!(!MemoryKind::Dram.is_onchip());
    }
}
